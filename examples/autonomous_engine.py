"""Scenario: an autonomous query engine week.

Replays a week of recurring jobs through the full engine-layer stack:
CloudViews reuse, Phoebe checkpointing, and guarded optimizer steering —
reporting the savings each autonomy feature contributes on top of the
plain engine (the life-of-a-query story from Viewpoint 2).

Run:  python examples/autonomous_engine.py
"""

import numpy as np

from repro.core.checkpoint import CheckpointOptimizer, StagePredictor
from repro.core.cloudviews import CloudViews
from repro.core.steering import SteeringService
from repro.engine import (
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    TrueCardinalityModel,
    compile_stages,
)
from repro.workloads import ScopeWorkloadGenerator

WAVES = dict(max_stage_seconds=2.0, max_stage_bytes=128e6)


def main() -> None:
    workload = ScopeWorkloadGenerator(rng=1).generate(n_days=10)
    truth = TrueCardinalityModel(workload.catalog, seed=5)
    default = DefaultCardinalityEstimator(workload.catalog)
    true_cost = DefaultCostModel(workload.catalog, truth)
    est_cost = DefaultCostModel(workload.catalog, default)
    optimizer = Optimizer(workload.catalog)

    print("=== CloudViews: computation reuse, one day ===")
    day_jobs = [(j.job_id, j.plan) for j in workload.by_day(5)]
    views = CloudViews(workload.catalog, est_cost)
    reuse = views.run_day(day_jobs, truth)
    print(f"  views selected        {reuse.n_views}")
    print(f"  latency improvement   {reuse.latency_improvement:.1%}  (paper: 34%)")

    print("\n=== Phoebe: checkpoint optimization ===")
    executor = ClusterExecutor(n_machines=16, rng=0)
    observations = []
    for job in workload.jobs:
        if job.day >= 3:
            continue
        plan = optimizer.optimize(job.plan).plan
        graph = compile_stages(plan, est_cost, truth=true_cost, **WAVES)
        report = executor.run(graph)
        for stage, run in zip(graph.stages, report.runs):
            observations.append((stage, run.duration, stage.true_bytes()))
    predictor = StagePredictor().fit(observations)
    chooser = CheckpointOptimizer(predictor=predictor, budget_fraction=0.8)
    rng = np.random.default_rng(7)
    restart_base, restart_ck, temp_base, temp_ck = [], [], [], []
    for job in workload.jobs:
        if job.day != 5 or job.plan.size < 5:
            continue
        plan = optimizer.optimize(job.plan).plan
        graph = compile_stages(plan, est_cost, truth=true_cost, **WAVES)
        checkpoints = chooser.select(graph).checkpoints
        base = ClusterExecutor(n_machines=16, rng=1).run(graph)
        ck = ClusterExecutor(n_machines=16, rng=1).run(graph, checkpoints=checkpoints)
        t = base.runtime * rng.uniform(0.3, 0.95)
        ex = ClusterExecutor(rng=1)
        restart_base.append(ex.restart_work_seconds(graph, base, t))
        restart_ck.append(ex.restart_work_seconds(graph, ck, t))
        temp_base.append(base.peak_temp_bytes)
        temp_ck.append(ck.peak_temp_bytes)
    print(f"  restart speedup       {1 - np.sum(restart_ck)/np.sum(restart_base):.1%}  (paper: 68%)")
    print(f"  hotspot temp freed    {1 - np.sum(temp_ck)/np.sum(temp_base):.1%}  (paper: >70%)")

    print("\n=== Steering: guarded rule hints over a month ===")
    # Steering learns per recurring template; give it a month of history.
    steering_workload = ScopeWorkloadGenerator(rng=0).generate(n_days=30)
    steering_truth = TrueCardinalityModel(steering_workload.catalog, seed=5)
    steering_cost = DefaultCostModel(steering_workload.catalog, steering_truth)
    steering = SteeringService(
        Optimizer(steering_workload.catalog),
        lambda p: steering_cost.cost(p).total,
        exploration_rate=1.0,
        validation_trials=2,
        rng=0,
    )
    jobs = [
        (j.job_id, j.plan) for j in steering_workload.jobs if j.is_recurring
    ]
    report = steering.run(jobs)
    print(f"  total cost improvement {report.improvement:.1%}")
    print(f"  adoptions / rollbacks  {report.adoptions} / {report.rollbacks}")
    print(f"  regressions            {report.regression_fraction():.1%} of jobs")


if __name__ == "__main__":
    main()
