"""Scenario: the whole fleet on one control plane.

Runs the paper's core services as feedback pipelines on the shared
fabric (Section 5's destination: one scheduler, one model lifecycle,
one failure story, one telemetry substrate), checkpoints the run at a
day boundary, resumes it from the snapshot, and shows that the resumed
run finishes byte-identically — then injects a stage fault and shows
the fleet degrading instead of aborting.

Run:  python examples/fabric_control_plane.py
"""

import tempfile
from pathlib import Path

from repro.fabric import (
    CheckpointStore,
    ControlPlane,
    FaultInjector,
    FleetConfig,
    build_fleet,
)
from repro.obs import ObservabilityRuntime
from repro.telemetry import Metric

DAYS = 7
CHECKPOINT_AT = 3


def main() -> None:
    print("=== One fabric, every service ===")
    obs = ObservabilityRuntime()
    plane = ControlPlane(obs=obs)
    build_fleet(plane, FleetConfig(days=DAYS))
    for binding in plane.bindings:
        stages = ", ".join(name for name, _ in binding.driver.stages())
        print(f"  {binding.name:<12} {stages}")

    print(f"\n=== Run {CHECKPOINT_AT} days, checkpoint daily, resume ===")
    store = CheckpointStore(Path(tempfile.mkdtemp()) / "store")
    for _ in range(CHECKPOINT_AT):
        plane.run_days(1)
        result = store.save(plane)  # base at day 1, deltas after
        print(
            f"  day {plane.day}: {result.kind:<5} frame,"
            f" {result.bytes_written} bytes"
            f" ({len(result.saved)} saved, {len(result.clean)} clean)"
        )

    restored = CheckpointStore.load(store.path, obs=ObservabilityRuntime())
    restored.run_days(DAYS - CHECKPOINT_AT)
    plane.run_days(DAYS - CHECKPOINT_AT)  # the uninterrupted twin
    identical = restored.report_bytes() == plane.report_bytes()
    print(f"  resumed report byte-identical to uninterrupted: {identical}")

    print("\n=== Model lifecycle (one registry, guardrail-gated) ===")
    summary = plane.lifecycle.summary()
    for action, count in sorted(summary["actions"].items()):
        print(f"  {action:<9} {count}")
    print(f"  serving: {', '.join(sorted(summary['serving']))}")

    print("\n=== Inject a fault; the fleet degrades, never aborts ===")
    injector = FaultInjector()
    injector.inject("seagull", "recommend", day=1, times=5)
    faulty = ControlPlane(injector=injector)
    build_fleet(faulty, FleetConfig(days=2))
    faulty.run_days(2)
    print(faulty.render_health())

    print("\n=== Fabric health in the telemetry store ===")
    obs.flush()
    for kind in ("stage_ok", "stage_retry", "stage_degraded"):
        points = (
            obs.query()
            .metric(Metric.EVENT_COUNT)
            .where(layer="fabric", kind=kind)
            .points()
        )
        print(f"  {kind:<15} {len(points)} points")


if __name__ == "__main__":
    main()
