"""Scenario: the feedback loop and infrastructure tuning in action.

Demonstrates Insight 3 (monitor -> retrain -> flight -> promote ->
rollback) on a drifting workload, then the MLOS-style configuration
tuner and KEA workload balancing — the paper's infrastructure-layer
loop closing end to end.

Run:  python examples/feedback_and_tuning.py
"""

import numpy as np

from repro.core.feedback import FeedbackLoop
from repro.core.kea import MachineBehaviorModels, WorkloadBalancer
from repro.core.mlos import ModelGuidedTuner, RandomSearchTuner, redis_vm_benchmark
from repro.infra import SkuFleetConfig
from repro.ml import LinearRegression, ModelRegistry
from repro.telemetry import TelemetryStore
from repro.workloads import MachineFleetSimulator
from repro.workloads.machines import DEFAULT_SKUS


def main() -> None:
    print("=== Insight 3: the feedback loop on a drifting workload ===")
    registry = ModelRegistry(rng=0)
    rng = np.random.default_rng(0)
    x0 = rng.normal(size=(50, 1))
    version = registry.register(
        "latency-model",
        LinearRegression().fit(x0, 2 * x0[:, 0] + rng.normal(scale=0.1, size=50)),
    )
    registry.promote("latency-model", version)
    loop = FeedbackLoop(
        registry,
        "latency-model",
        retrain=lambda x, y: LinearRegression().fit(x, y),
    )
    for _ in range(150):  # stable regime
        x = rng.normal(size=1)
        loop.observe(x, 2 * x[0] + rng.normal(scale=0.1))
    for _ in range(500):  # the workload drifts
        x = rng.normal(size=1)
        loop.observe(x, -1 * x[0] + rng.normal(scale=0.1))
    print(f"  loop actions: {loop.report().actions}")
    final = registry.production("latency-model").model
    print(f"  serving model slope: {final.coef_[0]:+.2f} (drifted truth: -1.00)")

    print("\n=== MLOS: tuning the Redis VM configuration ===")
    space, objective, optimum = redis_vm_benchmark(rng=0)
    default_score = float(np.mean([objective(space.default()) for _ in range(5)]))
    random_best = RandomSearchTuner(space, rng=1).tune(objective, 60).best_score
    guided = ModelGuidedTuner(space, rng=1).tune(objective, 60)
    print(f"  default config   {default_score:7.1f}")
    print(f"  random search    {random_best:7.1f}")
    print(f"  model-guided     {guided.best_score:7.1f}  (noiseless optimum ~{optimum:.0f})")
    print(f"  best config      {space.as_dict(guided.best_config)}")

    print("\n=== KEA: balancing a heterogeneous Cosmos-like fleet ===")
    store = TelemetryStore()
    MachineFleetSimulator(n_machines_per_sku=8, rng=0).collect(store, n_steps=40)
    models = MachineBehaviorModels().fit(store)
    balancer = WorkloadBalancer(models)
    result = balancer.recommend_caps(target_cpu=75)
    print(f"  recommended caps {result.caps}")
    skus = {s.name: s for s in DEFAULT_SKUS}
    tuned = balancer.build_fleet(skus, 8, result)
    static = [SkuFleetConfig(s, 8, 28) for s in DEFAULT_SKUS]
    demands = list(np.random.default_rng(1).integers(400, 650, 15))
    for label, fleet in (("static", static), ("KEA", tuned)):
        metrics = WorkloadBalancer.evaluate(fleet, demands)
        print(f"  {label:7s} cpu-imbalance={metrics['mean_imbalance']:5.2f}  "
              f"overload={metrics['overload_fraction']:.1%}")


if __name__ == "__main__":
    main()
