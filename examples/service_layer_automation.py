"""Scenario: service-layer automation for a fleet of customers.

Walks the Section 4.3 services: Seagull backup scheduling across database
servers, Doppler SKU recommendation for a migration wave, and global-to-
individual auto-tuning of recurring Spark applications — ending with the
granularity comparison behind Insight 2.

Run:  python examples/service_layer_automation.py
"""

import numpy as np

from repro.core.autotune import ApplicationTuner, benchmark_suite
from repro.core.doppler import SkuRecommender, recommendation_accuracy
from repro.core.granularity import GranularPredictor, heterogeneous_population
from repro.core.seagull import ForecastWindowPolicy, PreviousDayPolicy, evaluate_policy
from repro.workloads import (
    UsagePopulationConfig,
    generate_customers,
    generate_population,
)


def main() -> None:
    print("=== Seagull: backup windows for database servers ===")
    population = generate_population(
        UsagePopulationConfig(n_tenants=50, n_days=42), rng=0
    )
    servers = [t for t in population if t.is_predictable]
    days = range(29, 41)
    heuristic = evaluate_policy(servers, PreviousDayPolicy(), days)
    ml = evaluate_policy(servers, ForecastWindowPolicy(), days)
    print(f"  previous-day heuristic {heuristic:.1%}  (paper: 96%)")
    print(f"  ML forecast            {ml:.1%}  (paper: 99%)")

    print("\n=== Doppler: SKU recommendation for a migration wave ===")
    historical = generate_customers(400, rng=0)
    migrating = generate_customers(150, rng=1)
    recommender = SkuRecommender(rng=0).observe(historical)
    accuracy = recommendation_accuracy(recommender, migrating)
    print(f"  recommendation accuracy {accuracy:.1%}  (paper: >95%)")
    sample = recommender.recommend(migrating[0])
    print(f"  example: {sample.customer_id} -> {sample.sku.name} "
          f"(${sample.sku.price}/mo, segment {sample.segment})")

    print("\n=== AutoToken-style Spark auto-tuning ===")
    suite = benchmark_suite(60, rng=0)
    tuner = ApplicationTuner(rng=0).fit_global(suite[:40])
    first_run, after_tuning = [], []
    for app in suite[40:]:
        optimal = app.runtime(app.optimal_executors())
        trace = tuner.tune(app, n_runs=12)
        first_run.append(trace.runtimes[0] / optimal - 1)
        after_tuning.append(trace.best_runtime / optimal - 1)
    print(f"  regret at warm start   {np.mean(first_run):.1%}")
    print(f"  regret after tuning    {np.mean(after_tuning):.1%}")

    print("\n=== Insight 2: one size does not fit all ===")
    entities = heterogeneous_population(n_entities=30, samples_per_entity=20, rng=0)
    predictor = GranularPredictor(rng=0).fit(entities)
    report = predictor.evaluate(entities)
    print(f"  global model MSE       {report.global_mse:.2f}")
    print(f"  segment models MSE     {report.segment_mse:.2f}")
    print(f"  individual models MSE  {report.individual_mse:.2f}")
    print(f"  automatic selection    {report.selected_mse:.2f} "
          f"(choices: {report.selection_counts})")


if __name__ == "__main__":
    main()
