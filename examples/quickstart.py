"""Quickstart: one tour through all three layers of autonomy.

Generates a SCOPE-like workload, analyzes it with Peregrine, trains
cardinality micromodels from runtime feedback, and closes with an
infrastructure-layer decision (Moneyball pause/resume) — the same
end-to-end story Section 4 of the paper tells.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.cardinality import LearnedCardinalityModel, MicromodelTrainer
from repro.core.moneyball import PredictabilityClassifier, evaluate_policies, policy_tradeoff
from repro.core.peregrine import WorkloadFeedback, WorkloadRepository, analyze
from repro.engine import DefaultCardinalityEstimator, TrueCardinalityModel
from repro.infra import ServerlessSimulator
from repro.ml import q_error
from repro.workloads import (
    ScopeWorkloadGenerator,
    UsagePopulationConfig,
    generate_population,
)


def main() -> None:
    print("=== 1. Workload analysis (query engine layer) ===")
    workload = ScopeWorkloadGenerator(rng=0).generate(n_days=10)
    repo = WorkloadRepository().ingest(workload)
    stats = analyze(repo)
    for name, value in stats.summary_rows():
        print(f"  {name:26s} {value:8.3f}")

    print("\n=== 2. Learned cardinality from workload feedback ===")
    truth = TrueCardinalityModel(workload.catalog, seed=5)
    default = DefaultCardinalityEstimator(workload.catalog)
    feedback = WorkloadFeedback()
    representatives = {}
    for record in repo.records:
        if record.day < 8:
            feedback.observe_job(record, truth)
        for sig, node in record.subexpression_templates.items():
            representatives.setdefault(sig, node)
        representatives.setdefault(record.template, record.plan)
    report = MicromodelTrainer(default).train(feedback, representatives)
    learned = LearnedCardinalityModel.from_report(default, report)
    holdout = [r for r in repo.records if r.day >= 8]
    q_def, q_lrn = [], []
    for record in holdout:
        actual = np.array([truth.estimate(record.plan)])
        q_def.append(q_error(actual, np.array([default.estimate(record.plan)]))[0])
        q_lrn.append(q_error(actual, np.array([learned.estimate(record.plan)]))[0])
    print(f"  micromodels kept      {len(report.kept)} / {report.n_candidates}")
    print(f"  median q-error        default={np.median(q_def):.2f}  learned={np.median(q_lrn):.2f}")
    print(f"  micromodel coverage   {learned.coverage:.0%}")

    print("\n=== 3. Moneyball pause/resume (infrastructure layer) ===")
    tenants = generate_population(
        UsagePopulationConfig(n_tenants=60, n_days=42), rng=0
    )
    classifier = PredictabilityClassifier()
    print(f"  predictable tenants   {classifier.predictable_fraction(tenants):.0%}"
          f"  (paper: 77%)")
    simulator = ServerlessSimulator()
    for name, reports in evaluate_policies(tenants, simulator).items():
        point = policy_tradeoff(reports, name)
        print(f"  {name:12s} cold-start rate={point.qos_penalty:.3f}"
              f"  billed-hours/active-hour={point.cost:.2f}")


if __name__ == "__main__":
    main()
