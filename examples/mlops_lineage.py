"""Scenario: the System-for-ML backbone (Direction 2 + Manageability).

Walks one model through the full MLOps surface the paper calls for:
provenance recording (Vamsa [34]), portable serialization and the
generic model container [44], registry flighting, and the lineage
incident report an on-call engineer would pull during a regression.

Run:  python examples/mlops_lineage.py
"""

import numpy as np

from repro.ml import LineageTracker, LinearRegression, ModelRegistry
from repro.ml.serialize import ModelContainer


def main() -> None:
    rng = np.random.default_rng(0)
    tracker = LineageTracker()
    registry = ModelRegistry(rng=0)

    print("=== 1. Record the pipeline's provenance ===")
    raw = tracker.record(
        "dataset", "machine-telemetry-week27", source="telemetry-store"
    )
    features = tracker.record(
        "featureset", "containers-vs-cpu", [raw], operation="featurize"
    )
    x = rng.uniform(0, 40, size=(200, 1))
    y = 5.0 + 2.3 * x[:, 0] + rng.normal(scale=2.0, size=200)
    model = LinearRegression().fit(x, y)
    model_artifact = tracker.record(
        "model", "cpu-model-gen5", [features], operation="train", algo="ols"
    )
    print(f"  recorded {len(tracker)} artifacts")

    print("\n=== 2. Package into the generic container ===")
    container = ModelContainer(
        model, n_features=1, name="cpu-model-gen5",
        metadata={"slope": round(float(model.coef_[0]), 3)},
    )
    payload = container.to_json()
    print(f"  container JSON: {len(payload)} bytes, portable to any host")
    hosted = ModelContainer.from_json(payload)
    print(f"  hosted prediction at 20 containers: {hosted.predict([20.0])[0]:.1f}% cpu")

    print("\n=== 3. Register, deploy, and track the deployment ===")
    version = registry.register("cpu-model", container, metadata={"sku": "gen5"})
    registry.promote("cpu-model", version)
    deployment = tracker.record(
        "deployment", f"cpu-model@v{version}", [model_artifact], operation="deploy"
    )
    tracker.record("metric", "cpu-prediction-error", [deployment], operation="monitor")
    print(f"  serving version: {registry.production('cpu-model').version}")

    print("\n=== 4. The incident question: where did this model come from? ===")
    print(tracker.incident_report(model_artifact))


if __name__ == "__main__":
    main()
