"""Scale harness: streaming million-job worlds, measured and gated.

The paper's services run against Cosmos-scale telemetry — hundreds of
thousands of recurring jobs per day.  This harness proves the columnar
data path holds up at that scale and writes the numbers to
``BENCH_scale.json`` so regressions are visible:

1. **columnar_ingest** — one generated day per scale (10k / 100k / 1M
   jobs), flattened to a :class:`~repro.core.peregrine.JobBatch`
   (signature work happens here, once per unique plan) and bulk-appended
   into a fresh :class:`WorkloadRepository`.  Records jobs/sec for each
   stage; the columnar append must sustain >= 500k jobs/sec.
2. **stream_vs_eager** — `stream_days()` must replay the eager
   generator job-for-job at the same seed (the tentpole equivalence
   gate, also pinned in tests/workloads/test_stream.py).
3. **scale_ticks** — the peregrine pipeline loop (generate the day,
   batch-ingest, re-analyze) day after day at 100k jobs/day under a
   256 MB chunk budget with disk spill, recording per-day tick latency
   and resident set size.  The flat-RSS gate: the last day's RSS must
   be within 15% of day 5's (quick mode: of the previous day's).

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke

``--quick`` trims to 3 ticked days and drops the 1M ingest point —
the CI ``scale-smoke`` job runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.peregrine import JobBatch, WorkloadRepository, analyze  # noqa: E402
from repro.workloads.scope import (  # noqa: E402
    ScopeWorkloadConfig,
    ScopeWorkloadGenerator,
)

INGEST_GATE_JOBS_PER_SEC = 500_000
RSS_FLATNESS = 1.15


def _rss_mb() -> float:
    """Current resident set size in MiB (Linux /proc, else peak)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 2**20
    except (OSError, ValueError, IndexError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def bench_columnar_ingest(scales: list[int]) -> dict:
    """Generate, batchify, and bulk-append one day at each scale."""
    points = []
    for jobs_per_day in scales:
        config = ScopeWorkloadConfig.for_scale(jobs_per_day)
        generator = ScopeWorkloadGenerator(rng=0, config=config)
        t0 = time.perf_counter()
        jobs = generator.day_jobs(0)
        t1 = time.perf_counter()
        batch = JobBatch.from_jobs(jobs)
        t2 = time.perf_counter()
        repo = WorkloadRepository()
        repo.ingest_batch(batch)
        t3 = time.perf_counter()
        n = len(jobs)
        points.append(
            {
                "jobs_per_day": jobs_per_day,
                "n_jobs": n,
                "generate_jobs_per_sec": round(n / (t1 - t0)),
                "batchify_jobs_per_sec": round(n / (t2 - t1)),
                "ingest_jobs_per_sec": round(n / (t3 - t2)),
            }
        )
        del repo, batch, jobs
    best = max(p["ingest_jobs_per_sec"] for p in points)
    return {
        "points": points,
        "best_ingest_jobs_per_sec": best,
        "gate_jobs_per_sec": INGEST_GATE_JOBS_PER_SEC,
        "ingest_gate_met": best >= INGEST_GATE_JOBS_PER_SEC,
    }


def bench_stream_vs_eager(n_days: int = 3) -> dict:
    """The pinned equivalence: streaming replays the eager generator."""
    config = ScopeWorkloadConfig(n_recurring_templates=80)
    eager = ScopeWorkloadGenerator(rng=17, config=config).generate(
        n_days=n_days
    )
    streamed = [
        job
        for day in ScopeWorkloadGenerator(rng=17, config=config).stream_days(
            n_days
        )
        for job in day
    ]
    return {
        "n_days": n_days,
        "n_jobs": len(streamed),
        "bit_identical": list(eager.jobs) == streamed,
    }


def bench_scale_ticks(
    jobs_per_day: int, n_days: int, budget_mb: int = 256
) -> dict:
    """Day-after-day peregrine loop: ingest + analyze, RSS tracked."""
    config = ScopeWorkloadConfig.for_scale(jobs_per_day)
    generator = ScopeWorkloadGenerator(rng=1, config=config)
    days = []
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as spill:
        repo = WorkloadRepository(
            memory_budget_bytes=budget_mb * 2**20, spill_dir=spill
        )
        for day in range(n_days):
            t0 = time.perf_counter()
            jobs = generator.day_jobs(day)
            repo.ingest_batch(JobBatch.from_jobs(jobs))
            del jobs
            analyze(repo)
            tick_seconds = time.perf_counter() - t0
            days.append(
                {
                    "day": day,
                    "tick_seconds": round(tick_seconds, 4),
                    "rss_mb": round(_rss_mb(), 1),
                }
            )
        stats = repo.chunk_stats()
    # Acceptance: day-30 RSS within 15% of day-5 (index 4); quick runs
    # compare the last day against the first steady-state day (the
    # budget admits two ~120 MB hot chunks, so eviction starts on the
    # third day).
    baseline_at = 4 if len(days) > 5 else max(0, len(days) - 2)
    baseline = days[baseline_at]["rss_mb"]
    final = days[-1]["rss_mb"]
    return {
        "jobs_per_day": jobs_per_day,
        "n_days": n_days,
        "memory_budget_mb": budget_mb,
        "days": days,
        "chunk_stats": {
            k: stats[k]
            for k in ("jobs", "days", "hot_chunks", "spilled_chunks",
                      "spills", "loads")
        },
        "baseline_day": baseline_at,
        "baseline_rss_mb": baseline,
        "final_rss_mb": final,
        "rss_growth": round(final / baseline, 4) if baseline else None,
        "flat_rss": final <= RSS_FLATNESS * baseline,
        "rss_flatness_threshold": RSS_FLATNESS,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 3 ticked days, no 1M ingest point",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scale.json",
    )
    args = parser.parse_args(argv)

    scales = [10_000, 100_000] if args.quick else [10_000, 100_000, 1_000_000]
    tick_days = 4 if args.quick else 30

    results = {
        "columnar_ingest": bench_columnar_ingest(scales),
        "stream_vs_eager": bench_stream_vs_eager(),
        "scale_ticks": bench_scale_ticks(100_000, tick_days),
    }
    payload = {
        "bench": "scale",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"== scale bench ({'quick' if args.quick else 'full'}) ==")
    for point in results["columnar_ingest"]["points"]:
        print(
            f"{'columnar_ingest':<18} {point['n_jobs']:>9,} jobs:"
            f" gen {point['generate_jobs_per_sec']:>9,}/s"
            f"  batchify {point['batchify_jobs_per_sec']:>9,}/s"
            f"  ingest {point['ingest_jobs_per_sec']:>11,}/s"
        )
    eq = results["stream_vs_eager"]
    print(
        f"{'stream_vs_eager':<18} {eq['n_jobs']:,} jobs over"
        f" {eq['n_days']} days:"
        f" {'bit-identical' if eq['bit_identical'] else 'DIVERGED'}"
    )
    ticks = results["scale_ticks"]
    print(
        f"{'scale_ticks':<18} {ticks['jobs_per_day']:,} jobs/day x"
        f" {ticks['n_days']} days:"
        f" day {ticks['baseline_day']} RSS {ticks['baseline_rss_mb']:.0f} MiB"
        f" -> final {ticks['final_rss_mb']:.0f} MiB"
        f" ({ticks['rss_growth']:.2f}x,"
        f" {'flat' if ticks['flat_rss'] else 'GROWING'};"
        f" {ticks['chunk_stats']['spills']} spills)"
    )
    print(f"peak RSS: {payload['peak_rss_mb']:.0f} MiB")
    print(f"\nwritten: {args.out}")

    ok = (
        results["columnar_ingest"]["ingest_gate_met"]
        and eq["bit_identical"]
        and ticks["flat_rss"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
