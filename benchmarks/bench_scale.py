"""Scale harness: streaming million-job worlds, measured and gated.

The paper's services run against Cosmos-scale telemetry — hundreds of
thousands of recurring jobs per day.  This harness proves the columnar
data path holds up at that scale and writes the numbers to
``BENCH_scale.json`` so regressions are visible:

1. **columnar_ingest** — one generated day per scale (10k / 100k / 1M
   jobs), through *both* world-building paths: the fused
   :meth:`ScopeWorkloadGenerator.day_batch` (vectorized, straight into
   :class:`~repro.core.peregrine.JobBatch` columns) and the legacy
   ``day_jobs`` + ``from_jobs`` pair it replaced.  The fused path's
   sustained (warm day-1) rate must beat three times the pre-fusion
   baseline (80k jobs/s generate + 32k jobs/s batchify, i.e. ~22.9k
   jobs/s end to end) at the largest scale, and the columnar append
   must sustain >= 500k jobs/sec.
2. **stream_vs_eager** — `stream_days()` must replay the eager
   generator job-for-job at the same seed (the tentpole equivalence
   gate, also pinned in tests/workloads/test_stream.py).
3. **scale_ticks** — the peregrine pipeline loop (fused-generate the
   day, batch-ingest, re-analyze) day after day at 100k jobs/day under
   a 256 MB chunk budget with disk spill, recording a per-day stage
   breakdown (generate / batchify / ingest / analyze / other seconds),
   tick latency, and resident set size.  Two gates: bounded RSS (last
   day within 1.5x of day 5 — the remaining slope is ~20 B/job of
   resident index/template metadata, not world data; see
   ``TICKS_RSS_FLATNESS``) and flat ticks (steady-state mean of the
   last 5 tick latencies within 1.5x the first 5 — re-analysis must
   not creep with history length).
4. **tick_1m** (full runs only) — the real fleet at a million jobs a
   day: the in-process equivalent of ``repro fabric --days 3
   --jobs-per-day 1000000`` (core fleet, streaming source, overlap
   prefetch on the persistent pool), wall time and RSS per day, with
   the same flat-RSS gate.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke

``--quick`` trims to 4 ticked days and drops the 1M points — the CI
``scale-smoke`` job runs it on every push.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.peregrine import JobBatch, WorkloadRepository, analyze  # noqa: E402
from repro.workloads.scope import (  # noqa: E402
    ScopeWorkloadConfig,
    ScopeWorkloadGenerator,
)

INGEST_GATE_JOBS_PER_SEC = 500_000
RSS_FLATNESS = 1.15
#: The ticked-days loop gets its own RSS bound.  The legacy loop
#: measured flatness against a ~780 MiB allocator plateau (the per-day
#: 100k-object job list pushed the heap high-water far above live data,
#: so O(history) metadata growth hid in the slack).  The fused loop
#: runs ~150 MiB lighter in absolute terms, which exposes the real
#: resident slope — ~20 B/job of lookup-index + template metadata, not
#: world data (chunks still spill; tick_1m holds the strict 1.15 bound
#: at 10x the scale).
TICKS_RSS_FLATNESS = 1.5
TICK_FLATNESS = 1.5
#: Pre-fusion throughput on this harness's reference box: the two-stage
#: day build ran ~80k jobs/s of generation into ~32k jobs/s of
#: batchify.  End to end that is their harmonic combination (~22.9k
#: jobs/s); the fused path must clear three times that.
BASELINE_GENERATE_JOBS_PER_SEC = 80_000
BASELINE_BATCHIFY_JOBS_PER_SEC = 32_000
FUSED_SPEEDUP_GATE = 3.0
#: The absolute fused gate is judged at the million-job point (fixed
#: per-day costs drown the throughput at smaller scales); runs without
#: that point gate on beating the measured legacy path instead.
FUSED_GATE_SCALE = 1_000_000
FUSED_QUICK_SPEEDUP = 1.2


def _baseline_fused_jobs_per_sec() -> float:
    """End-to-end jobs/s of the pre-fusion generate+batchify pipeline."""
    return 1.0 / (
        1.0 / BASELINE_GENERATE_JOBS_PER_SEC
        + 1.0 / BASELINE_BATCHIFY_JOBS_PER_SEC
    )


def _rss_mb() -> float:
    """Current resident set size in MiB (Linux /proc, else peak)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 2**20
    except (OSError, ValueError, IndexError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def bench_columnar_ingest(scales: list[int]) -> dict:
    """One day at each scale through the fused and legacy world paths."""
    points = []
    for jobs_per_day in scales:
        config = ScopeWorkloadConfig.for_scale(jobs_per_day)

        # Fused path: generate straight into columns, then bulk-append.
        # Day 0 is the cold point (one-time template metadata + first
        # 1M-scale allocations); day 1 on the same generator is the
        # sustained per-day rate a multi-day run actually pays.
        fused_gen = ScopeWorkloadGenerator(rng=0, config=config)
        t0 = time.perf_counter()
        batch = fused_gen.day_batch(0)
        t1 = time.perf_counter()
        repo = WorkloadRepository()
        repo.ingest_batch(batch)
        t2 = time.perf_counter()
        n = len(batch)
        fused_cold_seconds = t1 - t0
        ingest_seconds = t2 - t1
        del repo, batch
        gc.collect()
        t2b = time.perf_counter()
        warm_batch = fused_gen.day_batch(1)
        fused_seconds = time.perf_counter() - t2b
        n_warm = len(warm_batch)
        del warm_batch, fused_gen
        gc.collect()

        # Legacy path: materialize the job list, then flatten it.
        legacy_gen = ScopeWorkloadGenerator(rng=0, config=config)
        t3 = time.perf_counter()
        jobs = legacy_gen.day_jobs(0)
        t4 = time.perf_counter()
        legacy_batch = JobBatch.from_jobs(jobs)
        t5 = time.perf_counter()
        assert len(legacy_batch) == n
        generate_seconds = t4 - t3
        batchify_seconds = t5 - t4
        del jobs, legacy_batch, legacy_gen
        gc.collect()

        legacy_seconds = generate_seconds + batchify_seconds
        cold_rate = n / fused_cold_seconds
        points.append(
            {
                "jobs_per_day": jobs_per_day,
                "n_jobs": n,
                "fused_jobs_per_sec": round(n_warm / fused_seconds),
                "fused_cold_jobs_per_sec": round(cold_rate),
                "generate_jobs_per_sec": round(n / generate_seconds),
                "batchify_jobs_per_sec": round(n / batchify_seconds),
                "legacy_jobs_per_sec": round(n / legacy_seconds),
                "ingest_jobs_per_sec": round(n / ingest_seconds),
                # cold vs cold: both sides' day 0 on a fresh generator
                "fused_speedup_vs_legacy": round(
                    legacy_seconds / fused_cold_seconds, 2
                ),
            }
        )
    best_ingest = max(p["ingest_jobs_per_sec"] for p in points)
    # The fusion gate: at the million-job point, three times the
    # *fixed* pre-fusion baseline (so the gate does not soften when
    # today's legacy path happens to run slow); quick runs without that
    # point must still beat the measured legacy path at their largest
    # scale.
    at_scale = points[-1]
    fused_gate = FUSED_SPEEDUP_GATE * _baseline_fused_jobs_per_sec()
    if at_scale["jobs_per_day"] >= FUSED_GATE_SCALE:
        gate_kind = "3x_pre_fusion_baseline_at_1m"
        gate_met = at_scale["fused_jobs_per_sec"] >= fused_gate
    else:
        gate_kind = "quick_speedup_vs_legacy"
        gate_met = at_scale["fused_speedup_vs_legacy"] >= FUSED_QUICK_SPEEDUP
    return {
        "points": points,
        "best_ingest_jobs_per_sec": best_ingest,
        "gate_jobs_per_sec": INGEST_GATE_JOBS_PER_SEC,
        "ingest_gate_met": best_ingest >= INGEST_GATE_JOBS_PER_SEC,
        "baseline_generate_jobs_per_sec": BASELINE_GENERATE_JOBS_PER_SEC,
        "baseline_batchify_jobs_per_sec": BASELINE_BATCHIFY_JOBS_PER_SEC,
        "baseline_fused_jobs_per_sec": round(_baseline_fused_jobs_per_sec()),
        "fused_gate_jobs_per_sec": round(fused_gate),
        "fused_at_scale_jobs_per_sec": at_scale["fused_jobs_per_sec"],
        "fused_gate_kind": gate_kind,
        "fused_gate_met": gate_met,
    }


def bench_stream_vs_eager(n_days: int = 3) -> dict:
    """The pinned equivalence: streaming replays the eager generator."""
    config = ScopeWorkloadConfig(n_recurring_templates=80)
    eager = ScopeWorkloadGenerator(rng=17, config=config).generate(
        n_days=n_days
    )
    streamed = [
        job
        for day in ScopeWorkloadGenerator(rng=17, config=config).stream_days(
            n_days
        )
        for job in day
    ]
    return {
        "n_days": n_days,
        "n_jobs": len(streamed),
        "bit_identical": list(eager.jobs) == streamed,
    }


def _flatness(
    days: list[dict], key: str, start: int = 0
) -> tuple[int, float | None]:
    """(window, mean-of-last-k / mean-of-first-k-from-``start``).

    ``start`` skips the pre-steady-state days: the first couple of days
    at scale run under budget (no chunk eviction yet), so comparing the
    tail against them would measure the one-time onset of spill I/O,
    not drift with history length.
    """
    k = min(5, (len(days) - start) // 2)
    if k < 1:
        return 0, None
    first = sum(d[key] for d in days[start : start + k]) / k
    last = sum(d[key] for d in days[-k:]) / k
    return k, (round(last / first, 4) if first else None)


def bench_scale_ticks(
    jobs_per_day: int, n_days: int, budget_mb: int = 256
) -> dict:
    """Day-after-day peregrine loop: fused generate, ingest, analyze."""
    config = ScopeWorkloadConfig.for_scale(jobs_per_day)
    generator = ScopeWorkloadGenerator(rng=1, config=config)
    days = []
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as spill:
        repo = WorkloadRepository(
            memory_budget_bytes=budget_mb * 2**20, spill_dir=spill
        )
        for day in range(n_days):
            t0 = time.perf_counter()
            batch = generator.day_batch(day)
            t1 = time.perf_counter()
            repo.ingest_batch(batch)
            t2 = time.perf_counter()
            analyze(repo)
            t3 = time.perf_counter()
            del batch
            gc.collect()
            tick_seconds = time.perf_counter() - t0
            stage_sum = t3 - t0
            days.append(
                {
                    "day": day,
                    "tick_seconds": round(tick_seconds, 4),
                    # Fused generation writes columns directly, so the
                    # old batchify stage is gone by construction.
                    "generate_seconds": round(t1 - t0, 4),
                    "batchify_seconds": 0.0,
                    "ingest_seconds": round(t2 - t1, 4),
                    "analyze_seconds": round(t3 - t2, 4),
                    "other_seconds": round(tick_seconds - stage_sum, 4),
                    "rss_mb": round(_rss_mb(), 1),
                }
            )
        stats = repo.chunk_stats()
    # Acceptance: day-30 RSS within 15% of day-5 (index 4); quick runs
    # compare the last day against the first steady-state day (the
    # budget admits two ~120 MB hot chunks, so eviction starts on the
    # third day).
    baseline_at = 4 if len(days) > 5 else max(0, len(days) - 2)
    baseline = days[baseline_at]["rss_mb"]
    final = days[-1]["rss_mb"]
    # Acceptance: re-analysis rides the memoized whole-history block,
    # so tick latency must stay flat as the repository's history grows
    # (measured from the same steady-state day as the RSS gate).
    window, tick_growth = _flatness(days, "tick_seconds", start=baseline_at)
    return {
        "jobs_per_day": jobs_per_day,
        "n_days": n_days,
        "memory_budget_mb": budget_mb,
        "days": days,
        "chunk_stats": {
            k: stats[k]
            for k in ("jobs", "days", "hot_chunks", "spilled_chunks",
                      "spills", "loads")
        },
        "baseline_day": baseline_at,
        "baseline_rss_mb": baseline,
        "final_rss_mb": final,
        "rss_growth": round(final / baseline, 4) if baseline else None,
        "flat_rss": final <= TICKS_RSS_FLATNESS * baseline,
        "rss_flatness_threshold": TICKS_RSS_FLATNESS,
        "tick_window_days": window,
        "tick_growth": tick_growth,
        "tick_flat": tick_growth is not None
        and tick_growth <= TICK_FLATNESS,
        "tick_flatness_threshold": TICK_FLATNESS,
    }


def bench_tick_1m(n_days: int = 3, jobs_per_day: int = 1_000_000) -> dict:
    """The whole fleet at a million jobs a day, one day at a time.

    In-process equivalent of ``repro fabric --days 3 --jobs-per-day
    1000000``: core fleet on the control plane, streaming source with
    overlap prefetch, 256 MB chunk budget spilling to scratch.  Gated
    on the same RSS flatness as ``scale_ticks``.
    """
    from repro.fabric import ControlPlane, FleetConfig, build_fleet

    days = []
    with tempfile.TemporaryDirectory(prefix="bench-tick1m-") as spill:
        config = FleetConfig(
            seed=0,
            days=n_days,
            jobs_per_day=jobs_per_day,
            repo_memory_budget_mb=256,
            repo_spill_dir=spill,
        )
        with ControlPlane() as plane:
            build_fleet(plane, config)
            t_start = time.perf_counter()
            for day in range(n_days):
                t0 = time.perf_counter()
                plane.run_days(1)
                days.append(
                    {
                        "day": day,
                        "wall_seconds": round(
                            time.perf_counter() - t0, 2
                        ),
                        "rss_mb": round(_rss_mb(), 1),
                    }
                )
            wall_seconds = time.perf_counter() - t_start
            source = next(
                (
                    b.driver.jobs_by_day
                    for b in plane.bindings
                    if hasattr(b.driver, "jobs_by_day")
                    and hasattr(b.driver.jobs_by_day, "prefetch_hits")
                ),
                None,
            )
            prefetch = (
                {
                    "overlap_enabled": source.overlap_enabled(),
                    "prefetch_hits": source.prefetch_hits,
                    "prefetch_misses": source.prefetch_misses,
                }
                if source is not None
                else None
            )
    baseline_at = max(0, len(days) - 2)
    baseline = days[baseline_at]["rss_mb"]
    final = days[-1]["rss_mb"]
    return {
        "command": (
            f"PYTHONPATH=src python -m repro.cli fabric"
            f" --days {n_days} --jobs-per-day {jobs_per_day}"
        ),
        "n_days": n_days,
        "jobs_per_day": jobs_per_day,
        "days": days,
        "wall_seconds": round(wall_seconds, 2),
        "jobs_per_sec": round(n_days * jobs_per_day / wall_seconds),
        "prefetch": prefetch,
        "baseline_day": baseline_at,
        "baseline_rss_mb": baseline,
        "final_rss_mb": final,
        "rss_growth": round(final / baseline, 4) if baseline else None,
        "flat_rss": final <= RSS_FLATNESS * baseline,
        "rss_flatness_threshold": RSS_FLATNESS,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 4 ticked days, no 1M points",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scale.json",
    )
    args = parser.parse_args(argv)

    scales = [10_000, 100_000] if args.quick else [10_000, 100_000, 1_000_000]
    tick_days = 4 if args.quick else 30

    results = {
        "columnar_ingest": bench_columnar_ingest(scales),
        "stream_vs_eager": bench_stream_vs_eager(),
        "scale_ticks": bench_scale_ticks(100_000, tick_days),
    }
    if not args.quick:
        results["tick_1m"] = bench_tick_1m()
    payload = {
        "bench": "scale",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"== scale bench ({'quick' if args.quick else 'full'}) ==")
    ingest = results["columnar_ingest"]
    for point in ingest["points"]:
        print(
            f"{'columnar_ingest':<18} {point['n_jobs']:>9,} jobs:"
            f" fused {point['fused_jobs_per_sec']:>8,}/s warm"
            f" / {point['fused_cold_jobs_per_sec']:>8,}/s cold"
            f" (legacy {point['legacy_jobs_per_sec']:>7,}/s,"
            f" {point['fused_speedup_vs_legacy']:.1f}x)"
            f"  ingest {point['ingest_jobs_per_sec']:>11,}/s"
        )
    print(
        f"{'fused_gate':<18} {ingest['fused_at_scale_jobs_per_sec']:,}/s"
        f" at scale, gate {ingest['fused_gate_jobs_per_sec']:,}/s"
        f" ({ingest['fused_gate_kind']}):"
        f" {'met' if ingest['fused_gate_met'] else 'MISSED'}"
    )
    eq = results["stream_vs_eager"]
    print(
        f"{'stream_vs_eager':<18} {eq['n_jobs']:,} jobs over"
        f" {eq['n_days']} days:"
        f" {'bit-identical' if eq['bit_identical'] else 'DIVERGED'}"
    )
    ticks = results["scale_ticks"]
    print(
        f"{'scale_ticks':<18} {ticks['jobs_per_day']:,} jobs/day x"
        f" {ticks['n_days']} days:"
        f" day {ticks['baseline_day']} RSS {ticks['baseline_rss_mb']:.0f} MiB"
        f" -> final {ticks['final_rss_mb']:.0f} MiB"
        f" ({ticks['rss_growth']:.2f}x,"
        f" {'flat' if ticks['flat_rss'] else 'GROWING'};"
        f" {ticks['chunk_stats']['spills']} spills)"
    )
    print(
        f"{'tick_flatness':<18} last-{ticks['tick_window_days']} vs"
        f" first-{ticks['tick_window_days']} tick mean:"
        f" {ticks['tick_growth']:.2f}x"
        f" (gate {ticks['tick_flatness_threshold']:.1f}x):"
        f" {'flat' if ticks['tick_flat'] else 'DRIFTING'}"
    )
    ok = (
        ingest["ingest_gate_met"]
        and ingest["fused_gate_met"]
        and eq["bit_identical"]
        and ticks["flat_rss"]
        and ticks["tick_flat"]
    )
    if not args.quick:
        tick1m = results["tick_1m"]
        hits = (
            f" {tick1m['prefetch']['prefetch_hits']} prefetch hits;"
            if tick1m["prefetch"]
            else ""
        )
        print(
            f"{'tick_1m':<18} {tick1m['jobs_per_day']:,} jobs/day x"
            f" {tick1m['n_days']} days in {tick1m['wall_seconds']:.0f}s"
            f" ({tick1m['jobs_per_sec']:,} jobs/s;{hits}"
            f" final RSS {tick1m['final_rss_mb']:.0f} MiB,"
            f" {tick1m['rss_growth']:.2f}x,"
            f" {'flat' if tick1m['flat_rss'] else 'GROWING'})"
        )
        ok = ok and tick1m["flat_rss"]
    print(f"peak RSS: {payload['peak_rss_mb']:.0f} MiB")
    print(f"\nwritten: {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
