"""E18 (extension, Direction 3): joint vs sequential component tuning.

Two teams own two coupled knobs of the execution pipeline — wave sizing
(execution team) and checkpoint budget (reliability team).  The paper's
claim: "sequentially optimizing each individual component is unlikely to
yield optimal overall performance"; synchronized joint tuning does
better (or at worst ties, when the knobs happen to decouple).
"""

from conftest import note, print_table

from repro.core.joint import (
    ParameterGrid,
    checkpoint_wave_objective,
    joint_optimize,
    sequential_optimize,
)


def run_e18(world):
    objective = checkpoint_wave_objective(world, n_jobs=6)
    grid = ParameterGrid(
        {
            "max_stage_seconds": (4.0, 2.0, 1.0),
            "budget_fraction": (0.2, 0.5, 0.8),
        }
    )
    sequential = sequential_optimize(
        objective, grid, order=["max_stage_seconds", "budget_fraction"]
    )
    joint = joint_optimize(objective, grid)
    defaults_score = objective(grid.defaults())
    return defaults_score, sequential, joint


def bench_e18_joint_optimization(benchmark, world):
    defaults_score, sequential, joint = benchmark.pedantic(
        run_e18, args=(world,), rounds=1, iterations=1
    )
    rows = [
        ("team defaults", "-", f"{defaults_score:.2f}", "-"),
        (
            "sequential (one pass each)",
            str(sequential.config),
            f"{sequential.objective:.2f}",
            sequential.evaluations,
        ),
        (
            "joint (coordinate descent)",
            str(joint.config),
            f"{joint.objective:.2f}",
            joint.evaluations,
        ),
    ]
    print_table(
        "E18 — joint vs sequential tuning of coupled pipeline knobs",
        rows,
        ("schedule", "chosen config", "combined objective", "evaluations"),
    )
    note(
        f"joint improves on sequential by "
        f"{1 - joint.objective / sequential.objective:.1%} "
        f"(and on defaults by {1 - joint.objective / defaults_score:.1%})"
    )
    assert joint.objective <= sequential.objective + 1e-9
    assert joint.objective < defaults_score
