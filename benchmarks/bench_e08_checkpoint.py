"""E8: Phoebe frees >70% of hotspot temp and restarts ~68% faster with
minimal runtime impact [52].
"""

import numpy as np
from conftest import print_table

from repro.core.checkpoint import CheckpointOptimizer, StagePredictor
from repro.engine import ClusterExecutor, compile_stages

WAVES = dict(max_stage_seconds=2.0, max_stage_bytes=128e6)


def run_e08(world):
    executor = ClusterExecutor(n_machines=16, rng=0)
    observations = []
    for job in world["workload"].jobs:
        if job.day >= 6:
            continue
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(
            plan, world["est_cost"], truth=world["true_cost"], **WAVES
        )
        report = executor.run(graph)
        for stage, run in zip(graph.stages, report.runs):
            observations.append((stage, run.duration, stage.true_bytes()))
    predictor = StagePredictor().fit(observations)
    chooser = CheckpointOptimizer(predictor=predictor, budget_fraction=0.8)

    rng = np.random.default_rng(7)
    restart = {"none": [], "phoebe": []}
    temp = {"none": [], "phoebe": []}
    runtime = {"none": [], "phoebe": []}
    for job in world["workload"].jobs:
        if job.day < 6 or job.plan.size < 5:
            continue
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(
            plan, world["est_cost"], truth=world["true_cost"], **WAVES
        )
        checkpoints = chooser.select(graph).checkpoints
        base = ClusterExecutor(n_machines=16, rng=1).run(graph)
        with_ck = ClusterExecutor(n_machines=16, rng=1).run(
            graph, checkpoints=checkpoints
        )
        t = base.runtime * rng.uniform(0.3, 0.95)
        ex = ClusterExecutor(rng=1)
        restart["none"].append(ex.restart_work_seconds(graph, base, t))
        restart["phoebe"].append(ex.restart_work_seconds(graph, with_ck, t))
        temp["none"].append(base.peak_temp_bytes)
        temp["phoebe"].append(with_ck.peak_temp_bytes)
        runtime["none"].append(base.runtime)
        runtime["phoebe"].append(with_ck.runtime)
    return restart, temp, runtime


def bench_e08_phoebe_checkpointing(benchmark, world):
    restart, temp, runtime = benchmark.pedantic(
        run_e08, args=(world,), rounds=1, iterations=1
    )
    restart_saving = 1 - np.sum(restart["phoebe"]) / np.sum(restart["none"])
    temp_saving = 1 - np.sum(temp["phoebe"]) / np.sum(temp["none"])
    overhead = np.sum(runtime["phoebe"]) / np.sum(runtime["none"]) - 1
    rows = [
        ("hotspot temp freed", f"{temp_saving:.1%}", ">70%"),
        ("restart speedup", f"{restart_saving:.1%}", "68%"),
        ("runtime overhead", f"{overhead:.1%}", "minimal"),
    ]
    print_table("E8 — Phoebe checkpoint optimizer", rows, ("metric", "measured", "paper"))
    assert temp_saving > 0.5
    assert restart_saving > 0.35
    assert overhead < 0.10
