"""E10: pipeline optimization — pipeline-aware statistics and pushing
common subexpressions to producers [8, 14].
"""

from conftest import print_table

from repro.core.pipeline import PipelineOptimizer


def run_e10(world):
    optimizer = PipelineOptimizer(world["workload"], world["truth"])
    return [optimizer.optimize_day(day) for day in range(2, 8)]


def bench_e10_pipeline_optimizer(benchmark, world):
    reports = benchmark.pedantic(run_e10, args=(world,), rounds=1, iterations=1)
    rows = [
        (
            f"day {i + 2}",
            r.n_pipelines,
            r.n_pushdowns,
            f"{r.cost_reduction:.2%}",
            f"{r.stale_scan_q_error:.1f}",
            f"{r.pipeline_aware_q_error:.2f}",
        )
        for i, r in enumerate(reports)
    ]
    print_table(
        "E10 — pipeline optimization (per day)",
        rows,
        ("day", "pipelines", "pushdowns", "pipeline cost cut",
         "scan q (stale)", "scan q (aware)"),
    )
    assert all(r.cost_reduction >= -1e-6 for r in reports)
    assert all(
        r.pipeline_aware_q_error <= r.stale_scan_q_error for r in reports
    )
    assert any(r.n_pushdowns > 0 for r in reports)
