"""E2: proactive pool provisioning reduces cluster-creation wait (§4.1).

Shape to reproduce: the forecast policy cuts mean and tail latency far
below on-demand cold starts, at bounded idle cost — "optimizing both
COGS and performance".
"""

from conftest import note, print_table

from repro.core.poolserver import compare_policies
from repro.workloads import generate_demand


def run_e02():
    trace = generate_demand(n_days=21, spike_probability=0.01, rng=0)
    return compare_policies(trace)


def bench_e02_pool_provisioning(benchmark):
    comparison = benchmark.pedantic(run_e02, rounds=1, iterations=1)
    rows = []
    for name, (report, _) in comparison.items():
        rows.append(
            (
                name,
                f"{report.mean_latency:.1f}s",
                f"{report.percentile(95):.0f}s",
                f"{report.hit_rate:.1%}",
                f"{report.warm_idle_hours:.0f}h",
            )
        )
    print_table(
        "E2 — cluster pool provisioning",
        rows,
        ("policy", "mean wait", "p95 wait", "warm hit rate", "idle cost"),
    )
    forecast = comparison["forecast"][0]
    on_demand = comparison["on_demand"][0]
    note(
        f"forecast vs on-demand mean wait: "
        f"{on_demand.mean_latency / forecast.mean_latency:.1f}x faster"
    )
    assert forecast.mean_latency < 0.25 * on_demand.mean_latency
    assert forecast.hit_rate > 0.9
