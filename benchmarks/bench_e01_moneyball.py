"""E1: Moneyball — 77% of serverless usage is predictable [41].

Measures the predictable tenant fraction the classifier finds and the
policy comparison showing the ML policy beating reactive baselines on
both cost and cold starts simultaneously.
"""

from conftest import note, print_table

from repro.core.moneyball import (
    PredictabilityClassifier,
    evaluate_policies,
    policy_tradeoff,
)
from repro.infra import ServerlessSimulator
from repro.workloads import UsagePopulationConfig, generate_population


def run_e01():
    tenants = generate_population(
        UsagePopulationConfig(n_tenants=80, n_days=42), rng=0
    )
    classifier = PredictabilityClassifier()
    simulator = ServerlessSimulator()
    results = evaluate_policies(tenants, simulator, classifier)
    return classifier.predictable_fraction(tenants), {
        name: policy_tradeoff(reports, name)
        for name, reports in results.items()
    }


def bench_e01_moneyball(benchmark):
    fraction, tradeoffs = benchmark.pedantic(run_e01, rounds=1, iterations=1)
    rows = [
        (name, f"{p.qos_penalty:.4f}", f"{p.cost:.3f}")
        for name, p in tradeoffs.items()
    ]
    print_table(
        "E1 — Moneyball pause/resume",
        rows,
        ("policy", "cold-starts/active-hr", "billed/active-hr"),
    )
    note(f"predictable usage: measured {fraction:.1%} | paper 77%")
    ml = tradeoffs["moneyball"]
    reactive = tradeoffs["reactive_4"]
    note(
        "moneyball vs reactive_4: "
        f"{1 - ml.qos_penalty / max(reactive.qos_penalty, 1e-9):.0%} fewer cold starts, "
        f"{1 - ml.cost / reactive.cost:.0%} lower cost"
    )
    assert 0.70 <= fraction <= 0.85
    assert ml.qos_penalty < reactive.qos_penalty
    assert ml.cost < reactive.cost
