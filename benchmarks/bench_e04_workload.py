"""E4: the workload statistics the paper quotes for SCOPE (§4.2).

Paper: >60% of jobs recurring; nearly 40% of daily jobs share common
subexpressions with at least one other job; 70% of daily jobs have
inter-job dependencies.
"""

from conftest import print_table

from repro.core.peregrine import WorkloadRepository, analyze

PAPER = {
    "recurring_fraction": ">0.60",
    "shared_subexpr_fraction": "~0.40",
    "dependency_fraction": "0.70",
}


def bench_e04_workload_statistics(benchmark, world):
    repo = WorkloadRepository().ingest(world["workload"])
    stats = benchmark.pedantic(analyze, args=(repo,), rounds=1, iterations=1)
    rows = [
        (name, f"{value:.3f}", PAPER.get(name, "-"))
        for name, value in stats.summary_rows()
    ]
    print_table(
        "E4 — workload structure statistics",
        rows,
        ("metric", "measured", "paper"),
    )
    assert stats.recurring_job_fraction > 0.60
    assert 0.25 <= stats.shared_subexpression_fraction <= 0.60
    assert 0.60 <= stats.dependency_fraction <= 0.80
