"""Shared fixtures and table printing for the experiment benchmarks.

Every ``bench_*`` module regenerates one of the paper's figures or
quantitative claims (see DESIGN.md's experiment index) and prints the
rows the paper reports next to our measured values.  Absolute numbers
are not expected to match a production testbed; the *shape* — who wins,
by roughly what factor — is the reproduction target.
"""


import pytest

from repro.engine import (
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Optimizer,
    TrueCardinalityModel,
)
from repro.workloads import ScopeWorkloadGenerator


@pytest.fixture(scope="session")
def world():
    """The shared SCOPE-like workload world for engine-layer benches."""
    generator = ScopeWorkloadGenerator(rng=0)
    workload = generator.generate(n_days=10)
    truth = TrueCardinalityModel(workload.catalog, seed=5)
    default = DefaultCardinalityEstimator(workload.catalog)
    return {
        "workload": workload,
        "catalog": workload.catalog,
        "truth": truth,
        "default": default,
        "true_cost": DefaultCostModel(workload.catalog, truth),
        "est_cost": DefaultCostModel(workload.catalog, default),
        "optimizer": Optimizer(workload.catalog),
    }


#: Rendered experiment tables, emitted in the terminal summary so they
#: survive pytest's fd-level output capture and land in bench_output.txt.
_RENDERED: list[str] = []


def print_table(title: str, rows: list[tuple], headers: tuple[str, ...]) -> None:
    """Fixed-width experiment table, paper value next to measured."""
    lines = [f"", f"== {title} =="]
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    _RENDERED.append("\n".join(lines))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every experiment table after the run (uncaptured)."""
    if not _RENDERED:
        return
    terminalreporter.section("experiment tables (paper vs measured)")
    for block in _RENDERED:
        for line in block.splitlines():
            terminalreporter.write_line(line)


def fmt(value: float, kind: str = "ratio") -> str:
    if kind == "pct":
        return f"{value:.1%}"
    if kind == "x":
        return f"{value:.2f}x"
    return f"{value:.3f}"


def note(message: str) -> None:
    """One-line remark below the most recent table."""
    _RENDERED.append(message)
