"""E16: Insight 3 — the feedback loop prevents sustained regression.

A workload drift hits a deployed model; with the loop the serving error
recovers (retrain + flight + promote), without it the error stays high.
"""

import numpy as np
from conftest import note, print_table

from repro.core.feedback import FeedbackLoop
from repro.ml import LinearRegression, ModelRegistry


def _stream(loop_or_model, n_stable, n_drifted, rng, use_loop):
    errors = []
    for step in range(n_stable + n_drifted):
        x = rng.normal(size=1)
        slope = 2.0 if step < n_stable else -1.0
        actual = slope * x[0] + rng.normal(scale=0.1)
        if use_loop:
            prediction = loop_or_model.observe(x, actual)
        else:
            prediction = float(loop_or_model.predict(np.atleast_2d(x))[0])
        errors.append(abs(prediction - actual))
    return np.array(errors)


def run_e16():
    def build():
        registry = ModelRegistry(rng=0)
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(50, 1))
        y0 = 2 * x0[:, 0] + rng.normal(scale=0.1, size=50)
        version = registry.register("m", LinearRegression().fit(x0, y0))
        registry.promote("m", version)
        return registry, rng

    registry, rng = build()
    loop = FeedbackLoop(
        registry, "m", retrain=lambda x, y: LinearRegression().fit(x, y)
    )
    with_loop = _stream(loop, 150, 500, rng, use_loop=True)

    registry2, rng2 = build()
    frozen = registry2.production("m").model
    without_loop = _stream(frozen, 150, 500, rng2, use_loop=False)
    return with_loop, without_loop, loop.report().actions


def bench_e16_feedback_loop(benchmark):
    with_loop, without_loop, actions = benchmark.pedantic(
        run_e16, rounds=1, iterations=1
    )
    tail = slice(-200, None)  # after the loop had time to react
    rows = [
        ("frozen model", f"{np.mean(without_loop[:150]):.3f}",
         f"{np.mean(without_loop[tail]):.3f}"),
        ("with feedback loop", f"{np.mean(with_loop[:150]):.3f}",
         f"{np.mean(with_loop[tail]):.3f}"),
    ]
    print_table(
        "E16 — mean absolute serving error before/after workload drift",
        rows,
        ("deployment", "pre-drift", "post-drift steady state"),
    )
    note(f"loop actions: {actions}")
    assert "promote" in actions
    assert np.mean(with_loop[tail]) < 0.3 * np.mean(without_loop[tail])
