"""Substrate perf harness: telemetry ingestion + plan-signature hashing.

Every autonomous service rides on two shared substrates — the telemetry
store (Direction 2) and subexpression signatures (Peregrine/CloudViews,
Section 4.2) — so their per-point and per-node costs multiply across all
experiments.  This harness measures both hot paths against faithful
re-implementations of the pre-columnar / pre-memoization code and writes
the numbers to ``BENCH_substrate.json`` so regressions are visible.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_substrate.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_substrate.py --quick    # CI smoke

Benchmarks:

1. **bulk_ingest_sorted** — ingest N dimensioned points in timestamp
   order: one ``record_many`` batch vs the legacy per-point
   ``bisect``-insert loop.
2. **bulk_ingest_shuffled** — the same points in arrival (shuffled)
   order: append + lazy sort-on-read vs legacy mid-list inserts (the
   quadratic case, so the legacy side is size-capped).
3. **query_windows** — random range scans, dimension-filtered scans and
   binned aggregates over the ingested store.
4. **signature_trace** — the workload-repository analysis (full-plan
   strict+template signatures plus both subexpression maps) over a
   SCOPE-like recurring-job trace (the E4/E9 shape): memoized one-pass
   hashing vs the legacy hash-per-call tree walk.
5. **cloudviews_day** — the full CloudViews day (candidates, greedy
   selection, per-job matching and rewriting, true-cost accounting):
   the inverted strict-signature index vs the legacy pairwise
   node-equality flow, asserted byte-identical, instrumented with
   :mod:`repro.obs` spans so the rollup shows where the time goes.
6. **parallel_scaling** — the sharded analyses (CloudViews candidate
   enumeration + Peregrine repository analysis) at 1/2/4 persistent-pool
   workers, outputs asserted identical across worker counts.  Honest
   numbers only: ``cpu_count`` is recorded at the top of the payload,
   and on a single-core machine the timings are **skipped**
   (``skipped_single_core: true``) with only the serial-vs-pool
   equivalence check run.
7. **pool_reuse** — cold pool spawn vs warm dispatch latency on the
   persistent :class:`~repro.parallel.WorkerPool`: the factor that
   spawn-per-call used to cost every fan-out.
8. **tracing_overhead** — the optimize -> compile -> execute hot path
   driven uninstrumented vs bound to an :mod:`repro.obs` runtime
   (spans + event replay + store flush included): the overhead fraction
   must stay under 10%.
9. **checkpoint_delta** — the fabric checkpoint write path: the full
   ``@1`` single pickle vs an ``@2`` delta frame, measured every day of
   a steady-state fleet run with one explicit ``store.save`` per day.
   The final-day delta must be >= 5x smaller and faster to write.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import sys
from collections import defaultdict
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.cloudviews import CloudViews  # noqa: E402
from repro.core.cloudviews.reuse import (  # noqa: E402
    WRITE_COST_PER_BYTE,
    ReuseReport,
    ViewCandidate,
    _ViewAwareTruth,
)
from repro.core.peregrine import WorkloadRepository, analyze  # noqa: E402
from repro.engine import (  # noqa: E402
    ClusterExecutor,
    DefaultCardinalityEstimator,
    DefaultCostModel,
    Expression,
    Optimizer,
    Scan,
    TableDef,
    TrueCardinalityModel,
    compile_stages,
    signatures,
)
from repro.engine.expr import replace_subexpression  # noqa: E402
from repro.engine.signatures import enumerate_all_signatures  # noqa: E402
from repro.obs import ObservabilityRuntime  # noqa: E402
from repro.telemetry import Metric, TelemetryStore  # noqa: E402
from repro.telemetry.timing import SectionProfiler, Stopwatch  # noqa: E402
from repro.workloads import ScopeWorkloadGenerator  # noqa: E402

#: Jobs emitted per generated day by ScopeWorkloadGenerator(rng=0).
_JOBS_PER_DAY = 46


# -- legacy baselines (the pre-change implementations, verbatim shape) --------
class LegacyListStore:
    """The old store: per-metric sorted lists, one ``insert`` per point."""

    def __init__(self) -> None:
        self._points: dict[Metric, list] = defaultdict(list)
        self._timestamps: dict[Metric, list[float]] = defaultdict(list)

    def record(self, metric, timestamp, value, dimensions=None) -> None:
        if not np.isfinite(value):
            raise ValueError(f"non-finite telemetry value for {metric}")
        frozen = tuple(sorted(dimensions.items())) if dimensions else ()
        point = (float(timestamp), float(value), frozen)
        stamps = self._timestamps[metric]
        idx = bisect.bisect_right(stamps, point[0])
        stamps.insert(idx, point[0])
        self._points[metric].insert(idx, point)

    def points(self, metric, start=None, end=None, dimensions=None) -> list:
        stamps = self._timestamps.get(metric, [])
        all_points = self._points.get(metric, [])
        lo = 0 if start is None else bisect.bisect_left(stamps, start)
        hi = len(stamps) if end is None else bisect.bisect_right(stamps, end)
        selected = all_points[lo:hi]
        if dimensions:
            wanted = dimensions.items()
            selected = [
                p
                for p in selected
                if all(
                    next((v for k2, v in p[2] if k2 == k), None) == v
                    for k, v in wanted
                )
            ]
        return selected

    def series(self, metric, start=None, end=None, dimensions=None):
        pts = self.points(metric, start, end, dimensions)
        if not pts:
            return np.array([]), np.array([])
        return np.array([p[0] for p in pts]), np.array([p[1] for p in pts])

    def aggregate(self, metric, bin_width, agg="mean", start=None, end=None,
                  dimensions=None):
        ts, vs = self.series(metric, start, end, dimensions)
        if ts.size == 0:
            return np.array([]), np.array([])
        bins = np.floor(ts / bin_width) * bin_width
        out_t, out_v = [], []
        fn = {"mean": np.mean, "sum": np.sum, "max": np.max}[agg]
        for b in np.unique(bins):
            mask = bins == b
            out_t.append(b)
            out_v.append(float(fn(vs[mask])))
        return np.array(out_t), np.array(out_v)


def _legacy_describe(node: Expression, mask_literals: bool) -> str:
    from repro.engine import Aggregate, Filter, Join, Project, Scan, Union

    if isinstance(node, Scan):
        return f"Scan:{node.table}"
    if isinstance(node, Filter):
        parts = []
        for p in node.predicates:
            value = "?" if mask_literals else f"{p.value!r}"
            parts.append(f"{p.column}{p.op}{value}")
        return f"Filter:{'&'.join(parts)}"
    if isinstance(node, Project):
        return f"Project:{','.join(node.columns)}"
    if isinstance(node, Join):
        return f"Join:{node.left_key}={node.right_key}"
    if isinstance(node, Aggregate):
        return f"Aggregate:{','.join(node.group_by)}"
    if isinstance(node, Union):
        return "Union"
    raise TypeError(type(node).__name__)


def _legacy_hash_tree(node: Expression, mask_literals: bool) -> str:
    child_hashes = "|".join(
        _legacy_hash_tree(child, mask_literals) for child in node.children
    )
    payload = f"{_legacy_describe(node, mask_literals)}({child_hashes})"
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def _legacy_analyze(plans: list[Expression]) -> int:
    """The pre-change repository ingest: four independent hash walks."""
    n_signatures = 0
    for plan in plans:
        _legacy_hash_tree(plan, True)
        _legacy_hash_tree(plan, False)
        strict_map: dict[str, Expression] = {}
        template_map: dict[str, Expression] = {}
        for node in plan.walk():
            strict_map.setdefault(_legacy_hash_tree(node, False), node)
        for node in plan.walk():
            template_map.setdefault(_legacy_hash_tree(node, True), node)
        n_signatures += len(strict_map) + len(template_map)
    return n_signatures


def _memoized_analyze(plans: list[Expression]) -> int:
    n_signatures = 0
    for plan in plans:
        strict_map, template_map = enumerate_all_signatures(plan)
        signatures(plan)
        n_signatures += len(strict_map) + len(template_map)
    return n_signatures


# -- benchmark data -----------------------------------------------------------
def _make_points(n_points: int, rng: np.random.Generator):
    """Timestamps, values and cycling machine/SKU dimension dicts."""
    timestamps = np.arange(n_points, dtype=float) * 0.1
    values = rng.uniform(0.0, 100.0, size=n_points)
    skus = ("gen4", "gen5", "gen6")
    machines = [
        {"machine": f"m{i:03d}", "sku": skus[i % len(skus)]} for i in range(90)
    ]
    dims = [machines[i % len(machines)] for i in range(n_points)]
    return timestamps, values, dims


def measure_bulk_ingest_sorted(n_points: int, profiler: SectionProfiler) -> dict:
    ts, vs, dims = _make_points(n_points, np.random.default_rng(0))

    legacy = LegacyListStore()
    with profiler.section("ingest_sorted/legacy"):
        for t, v, d in zip(ts, vs, dims):
            legacy.record(Metric.CPU_UTILIZATION, t, v, d)
    legacy_s = profiler.seconds("ingest_sorted/legacy")

    store = TelemetryStore()
    with profiler.section("ingest_sorted/columnar"):
        store.record_many(Metric.CPU_UTILIZATION, ts, vs, dims)
    new_s = profiler.seconds("ingest_sorted/columnar")
    assert len(store) == n_points
    return {
        "n_points": n_points,
        "legacy_seconds": legacy_s,
        "legacy_points_per_s": n_points / legacy_s,
        "new_seconds": new_s,
        "new_points_per_s": n_points / new_s,
        "speedup": legacy_s / new_s,
    }


def measure_bulk_ingest_shuffled(n_points: int, profiler: SectionProfiler) -> dict:
    # Mid-list inserts make the legacy path quadratic, so cap its size and
    # compare throughput at the capped size (generous to the baseline).
    n_legacy = min(n_points, 100_000)
    rng = np.random.default_rng(1)
    ts, vs, dims = _make_points(n_points, rng)
    order = rng.permutation(n_points)
    ts, vs = ts[order], vs[order]
    dims = [dims[i] for i in order]

    legacy = LegacyListStore()
    with profiler.section("ingest_shuffled/legacy"):
        for i in range(n_legacy):
            legacy.record(Metric.CPU_UTILIZATION, ts[i], vs[i], dims[i])
    legacy_s = profiler.seconds("ingest_shuffled/legacy")

    store = TelemetryStore()
    with profiler.section("ingest_shuffled/columnar"):
        store.record_many(Metric.CPU_UTILIZATION, ts, vs, dims)
        # Make the columnar side pay its deferred sort inside the clock.
        store.series(Metric.CPU_UTILIZATION, start=0.0, end=1.0)
    new_s = profiler.seconds("ingest_shuffled/columnar")
    legacy_rate = n_legacy / legacy_s
    new_rate = n_points / new_s
    return {
        "n_points": n_points,
        "n_points_legacy": n_legacy,
        "legacy_seconds": legacy_s,
        "legacy_points_per_s": legacy_rate,
        "new_seconds": new_s,
        "new_points_per_s": new_rate,
        "speedup": new_rate / legacy_rate,
    }


def measure_query_windows(
    n_points: int, n_queries: int, profiler: SectionProfiler
) -> dict:
    ts, vs, dims = _make_points(n_points, np.random.default_rng(2))
    store = TelemetryStore()
    store.record_many(Metric.CPU_UTILIZATION, ts, vs, dims)
    legacy = LegacyListStore()
    for t, v, d in zip(ts, vs, dims):
        legacy.record(Metric.CPU_UTILIZATION, t, v, d)

    span = float(ts[-1])
    rng = np.random.default_rng(3)
    starts = rng.uniform(0, span * 0.9, size=n_queries)
    widths = rng.uniform(span * 0.01, span * 0.1, size=n_queries)
    machines = [f"m{int(i):03d}" for i in rng.integers(0, 90, size=n_queries)]

    def _run(backend) -> None:
        for s, w, m in zip(starts, widths, machines):
            backend.series(Metric.CPU_UTILIZATION, start=s, end=s + w)
            backend.series(
                Metric.CPU_UTILIZATION,
                start=s,
                end=s + w,
                dimensions={"machine": m},
            )
            backend.aggregate(
                Metric.CPU_UTILIZATION, bin_width=w / 10, agg="mean",
                start=s, end=s + w,
            )

    with profiler.section("query_windows/legacy"):
        _run(legacy)
    with profiler.section("query_windows/columnar"):
        _run(store)
    legacy_s = profiler.seconds("query_windows/legacy")
    new_s = profiler.seconds("query_windows/columnar")
    return {
        "n_points": n_points,
        "n_queries": n_queries * 3,
        "legacy_seconds": legacy_s,
        "new_seconds": new_s,
        "speedup": legacy_s / new_s,
    }


def measure_signature_trace(n_jobs: int, profiler: SectionProfiler) -> dict:
    n_days = max(1, round(n_jobs / _JOBS_PER_DAY))
    with profiler.section("signature_trace/generate"):
        workload = ScopeWorkloadGenerator(rng=0).generate(n_days=n_days)
    plans = [job.plan for job in workload.jobs]

    with profiler.section("signature_trace/legacy"):
        legacy_count = _legacy_analyze(plans)
    with profiler.section("signature_trace/memoized"):
        new_count = _memoized_analyze(plans)
    assert new_count == legacy_count
    legacy_s = profiler.seconds("signature_trace/legacy")
    new_s = profiler.seconds("signature_trace/memoized")
    return {
        "n_jobs": len(plans),
        "n_signatures": new_count,
        "legacy_seconds": legacy_s,
        "legacy_jobs_per_s": len(plans) / legacy_s,
        "new_seconds": new_s,
        "new_jobs_per_s": len(plans) / new_s,
        "speedup": legacy_s / new_s,
    }


# -- legacy CloudViews (the pre-index pairwise flow, verbatim shape) ----------
class LegacyCloudViews(CloudViews):
    """The pre-change day flow: node-equality walks instead of indexes.

    Candidate enumeration mutates one shared owners dict per node (no
    sharding), containment is ``any(node == inner ...)`` over a full
    walk, matching re-walks every plan against every selected view, and
    rewriting runs one full ``replace_subexpression`` pass per view.
    """

    def candidates(self, jobs, workers: int = 1):
        owners: dict[str, ViewCandidate] = {}
        for job_id, plan in jobs:
            seen: set[str] = set()
            for node in plan.walk():
                sig = signatures(node).strict
                if sig in seen:
                    continue
                seen.add(sig)
                if node.size < self.min_size:
                    continue
                existing = owners.get(sig)
                if existing is None:
                    owners[sig] = ViewCandidate(
                        signature=sig,
                        expression=node,
                        job_ids=[job_id],
                        estimated_cost=self.est.cost(node).total,
                        estimated_bytes=self.est.output_bytes(node),
                    )
                elif job_id not in existing.job_ids:
                    existing.job_ids.append(job_id)
        return [
            c
            for c in owners.values()
            if c.occurrences >= self.min_occurrences and c.utility > 0
        ]

    def select(self, jobs, workers: int = 1):
        pool = sorted(
            self.candidates(jobs),
            key=lambda c: -c.utility / max(c.estimated_bytes, 1.0),
        )
        selected: list[ViewCandidate] = []
        spent = 0.0
        for candidate in pool:
            if len(selected) >= self.max_views:
                break
            if spent + candidate.estimated_bytes > self.budget_bytes:
                continue
            contained = any(
                self._contains(chosen.expression, candidate.expression)
                for chosen in selected
            )
            if contained:
                continue
            selected.append(candidate)
            spent += candidate.estimated_bytes
        return selected

    @staticmethod
    def _contains(outer: Expression, inner: Expression) -> bool:
        return any(node == inner for node in outer.walk())

    def _matches(self, plan, candidate) -> bool:
        if candidate.group is None:
            return self._contains(plan, candidate.expression)
        from repro.core.cloudviews.containment import rewrite_with_containment

        return rewrite_with_containment(plan, candidate.group) != plan

    def _apply(self, plan, candidate):
        if candidate.group is None:
            return self.rewrite(plan, [candidate])
        from repro.core.cloudviews.containment import rewrite_with_containment

        return rewrite_with_containment(plan, candidate.group)

    def rewrite(self, plan, selected):
        for candidate in sorted(selected, key=lambda c: -c.expression.size):
            plan = replace_subexpression(
                plan, candidate.expression, Scan(candidate.view_table)
            )
        return plan

    def run_day(self, jobs, true_cardinality, containment: bool = False,
                workers: int = 1) -> ReuseReport:
        selected = self.select(jobs)
        if containment:
            selected = self._add_containment_candidates(jobs, selected)
        truth = DefaultCostModel(self.catalog, true_cardinality)
        baseline = sum(truth.cost(plan).total for _, plan in jobs)

        day_catalog = self.catalog.clone()
        definitions: dict[str, Expression] = {}
        for candidate in selected:
            rows = max(1.0, true_cardinality.estimate(candidate.expression))
            true_bytes = truth.output_bytes(candidate.expression)
            day_catalog.add(
                TableDef(
                    name=candidate.view_table,
                    n_rows=int(rows),
                    columns=self._VIEW_COLUMNS,
                    row_bytes=max(1, int(true_bytes / rows)),
                )
            )
            definitions[candidate.view_table] = candidate.expression
        day_truth = _ViewAwareTruth(true_cardinality, definitions)
        day_cost = DefaultCostModel(day_catalog, day_truth)

        materialized: set[str] = set()
        reuse_total = 0.0
        for job_id, plan in jobs:
            pending = [
                c
                for c in selected
                if c.signature not in materialized and self._matches(plan, c)
            ]
            ready = [c for c in selected if c.signature in materialized]
            rewritten = plan
            for candidate in sorted(ready, key=lambda c: -c.expression.size):
                rewritten = self._apply(rewritten, candidate)
            cost = day_cost.cost(rewritten).total
            for candidate in pending:
                cost += WRITE_COST_PER_BYTE * day_cost.output_bytes(
                    candidate.expression
                )
                materialized.add(candidate.signature)
            reuse_total += cost
        return ReuseReport(
            n_jobs=len(jobs),
            n_views=len(selected),
            baseline_latency=baseline,
            reuse_latency=reuse_total,
            baseline_processing=baseline,
            reuse_processing=reuse_total,
            views=selected,
        )


def _report_key(report: ReuseReport) -> tuple:
    """Everything a ReuseReport says, as a comparable value."""
    return (
        report.n_jobs,
        report.n_views,
        report.baseline_latency,
        report.reuse_latency,
        report.baseline_processing,
        report.reuse_processing,
        tuple(
            (v.signature, tuple(v.job_ids), v.estimated_cost, v.estimated_bytes)
            for v in report.views
        ),
    )


def measure_cloudviews_day(n_jobs: int, profiler: SectionProfiler) -> dict:
    n_days = max(1, round(n_jobs / _JOBS_PER_DAY))
    with profiler.section("cloudviews_day/generate"):
        workload = ScopeWorkloadGenerator(rng=0).generate(n_days=n_days)
    jobs = [(job.job_id, job.plan) for job in workload.jobs]
    # Warm the signature memos so neither side is charged first-hash costs.
    for _, plan in jobs:
        enumerate_all_signatures(plan)
    est = DefaultCostModel(
        workload.catalog, DefaultCardinalityEstimator(workload.catalog)
    )
    truth = TrueCardinalityModel(workload.catalog, seed=5)

    # Legacy pairwise matching scales with jobs x views x nodes; run it
    # at full size (capped at 10k jobs) for an honest same-size
    # comparison, and fall back to per-job throughput if a larger run
    # ever trims the legacy side.
    n_legacy = min(len(jobs), 10_000)
    legacy = LegacyCloudViews(workload.catalog, est)
    with profiler.section("cloudviews_day/legacy"):
        legacy_report = legacy.run_day(jobs[:n_legacy], truth)

    obs = ObservabilityRuntime()
    indexed = CloudViews(workload.catalog, est, obs=obs)
    with profiler.section("cloudviews_day/indexed"):
        report = indexed.run_day(jobs, truth)

    # The indexed flow must reproduce the legacy report byte for byte
    # (checked untimed, at the size the legacy side actually ran).
    if n_legacy == len(jobs):
        assert _report_key(report) == _report_key(legacy_report)
    else:
        indexed_small = CloudViews(workload.catalog, est).run_day(
            jobs[:n_legacy], truth
        )
        assert _report_key(indexed_small) == _report_key(legacy_report)

    legacy_s = profiler.seconds("cloudviews_day/legacy")
    new_s = profiler.seconds("cloudviews_day/indexed")
    legacy_rate = n_legacy / legacy_s
    new_rate = len(jobs) / new_s
    span_seconds: dict[str, float] = defaultdict(float)
    for span in obs.tracer.spans:
        span_seconds[span.name] += span.wall_seconds
    return {
        "n_jobs": len(jobs),
        "n_jobs_legacy": n_legacy,
        "n_views": report.n_views,
        "latency_improvement": report.latency_improvement,
        "legacy_seconds": legacy_s,
        "legacy_jobs_per_s": legacy_rate,
        "new_seconds": new_s,
        "new_jobs_per_s": new_rate,
        "speedup": new_rate / legacy_rate,
        "identical_reports": True,
        "span_seconds": dict(sorted(span_seconds.items())),
    }


def measure_parallel_scaling(
    n_jobs: int,
    profiler: SectionProfiler,
    workers_axis: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """CloudViews enumeration + Peregrine analysis across worker counts.

    Every worker count must produce identical outputs (the substrate's
    core contract); the timings show whatever scaling the machine's
    cores actually allow.  On a single-core machine timings would be
    pure theater, so the measurement is **skipped**: the result carries
    ``skipped_single_core: true`` and only the equivalence check runs
    (worker-count identity is a correctness property, not a perf one,
    so it holds on any core count).  The shard publication is done once
    per worker axis via :meth:`CloudViews.day_context`, matching how a
    fabric day amortizes it across dispatches.
    """
    import os

    cpu_count = os.cpu_count() or 1
    n_days = max(1, round(n_jobs / _JOBS_PER_DAY))
    workload = ScopeWorkloadGenerator(rng=0).generate(n_days=n_days)
    jobs = [(job.job_id, job.plan) for job in workload.jobs]
    for _, plan in jobs:
        enumerate_all_signatures(plan)
    est = DefaultCostModel(
        workload.catalog, DefaultCardinalityEstimator(workload.catalog)
    )
    cloudviews = CloudViews(workload.catalog, est)
    repo = WorkloadRepository().ingest(workload)

    def _cand_key(cands) -> list:
        return [
            (c.signature, tuple(c.job_ids), c.estimated_cost, c.estimated_bytes)
            for c in cands
        ]

    if cpu_count <= 1:
        # No honest scaling numbers exist here; verify the contract
        # (serial and a real 2-worker pool agree bit-for-bit) and say
        # loudly that timing was skipped.
        with profiler.section("parallel_scaling/equivalence"):
            serial = (_cand_key(cloudviews.candidates(jobs, workers=1)),
                      analyze(repo, workers=1))
            with cloudviews.day_context(jobs):
                pooled = (_cand_key(cloudviews.candidates(jobs, workers=2)),
                          analyze(repo, workers=2))
        assert pooled == serial, "workers=2 diverged from serial"
        return {
            "skipped_single_core": True,
            "cpu_count": cpu_count,
            "n_jobs": len(jobs),
            "n_candidates": len(serial[0]),
            "workers": list(workers_axis),
            "identical_across_workers": True,
        }

    candidate_seconds: dict[str, float] = {}
    analyze_seconds: dict[str, float] = {}
    baseline_candidates = None
    baseline_stats = None
    with cloudviews.day_context(jobs):
        for w in workers_axis:
            with profiler.section(f"parallel_scaling/candidates_w{w}"):
                cands = cloudviews.candidates(jobs, workers=w)
            with profiler.section(f"parallel_scaling/analyze_w{w}"):
                stats = analyze(repo, workers=w)
            candidate_seconds[str(w)] = profiler.seconds(
                f"parallel_scaling/candidates_w{w}"
            )
            analyze_seconds[str(w)] = profiler.seconds(
                f"parallel_scaling/analyze_w{w}"
            )
            cand_key = _cand_key(cands)
            if baseline_candidates is None:
                baseline_candidates, baseline_stats = cand_key, stats
            else:
                assert cand_key == baseline_candidates, f"workers={w} diverged"
                assert stats == baseline_stats, f"workers={w} diverged"
    base_total = candidate_seconds["1"] + analyze_seconds["1"]
    speedups = {
        str(w): base_total
        / (candidate_seconds[str(w)] + analyze_seconds[str(w)])
        for w in workers_axis
    }
    return {
        "skipped_single_core": False,
        "cpu_count": cpu_count,
        "n_jobs": len(jobs),
        "n_candidates": len(baseline_candidates),
        "workers": list(workers_axis),
        "candidate_seconds": candidate_seconds,
        "analyze_seconds": analyze_seconds,
        "speedup_vs_serial": speedups,
        "identical_across_workers": True,
    }


def _pool_probe(x: int) -> int:
    """Module-level probe for pool_reuse (tiny fixed work per item)."""
    return x * x


def measure_pool_reuse(profiler: SectionProfiler, reps: int = 5) -> dict:
    """Cold pool spawn vs warm dispatch on the persistent pool.

    The whole point of the persistent :class:`~repro.parallel.WorkerPool`
    is that spawn is paid once: the first dispatch carries worker
    startup, every later one rides the living processes.  This measures
    both on a fresh pool — ``warm_seconds`` is the min over ``reps``
    dispatches of a small fixed batch (explicit chunksize, so the
    autotuner can't route it serial), and ``cold_over_warm`` is the
    factor spawn-per-call used to cost.  Valid on any core count:
    dispatch latency, not scaling, is what's measured.
    """
    from repro.parallel import WorkerPool, pmap

    batch = list(range(64))
    pool = WorkerPool()
    try:
        with profiler.section("pool_reuse/cold"):
            clock = Stopwatch().start()
            expected = pmap(_pool_probe, batch, workers=2, chunksize=16,
                            pool=pool)
            cold_s = clock.stop()
        warm_s = float("inf")
        for _ in range(reps):
            with profiler.section("pool_reuse/warm"):
                clock = Stopwatch().start()
                got = pmap(_pool_probe, batch, workers=2, chunksize=16,
                           pool=pool)
                warm_s = min(warm_s, clock.stop())
            assert got == expected
        stats = pool.stats()
    finally:
        pool.shutdown()
    return {
        "n_items": len(batch),
        "reps": reps,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "spawn_seconds": stats["spawn_seconds"],
        "cold_over_warm": cold_s / warm_s if warm_s > 0 else float("inf"),
        "dispatches": stats["dispatches"],
        "generation": stats["generation"],
    }


#: Acceptance bound on relative tracing overhead.
TRACING_OVERHEAD_THRESHOLD = 0.10


def measure_tracing_overhead(
    n_jobs: int, profiler: SectionProfiler, repeats: int = 5
) -> dict:
    """Optimize/compile/execute every plan: uninstrumented vs traced.

    The traced side pays for everything observability adds — span entry
    and exit (two stopwatches each), execution-report replay into the
    event log, and the final flush into the TelemetryStore.

    Measurement design, tuned for noisy shared machines where CPU
    contention comes in phases lasting well under one rep:

    - Each rep *interleaves* the two sides chunk by chunk (~50 jobs at
      a time), so baseline and traced sample the same contention phases
      and their ratio cancels common-mode slowdowns.
    - The reported overhead is the **minimum paired ratio** across
      reps: contention inflates a ratio's variance, so the cleanest rep
      is the one closest to the machine-independent truth.
    - The cyclic collector is disabled inside the timed region (with a
      full collect before each rep): GC pauses fire on whichever side
      happens to cross a global allocation threshold, charging it with
      garbage the other side produced.  pyperf does the same by
      default.
    """
    import gc

    n_days = max(1, round(n_jobs / _JOBS_PER_DAY))
    workload = ScopeWorkloadGenerator(rng=0).generate(n_days=n_days)
    plans = [job.plan for job in workload.jobs]
    catalog = workload.catalog
    cost = DefaultCostModel(catalog, DefaultCardinalityEstimator(catalog))
    chunk_size = 50

    def _drive_chunk(optimizer, executor, chunk) -> None:
        for plan in chunk:
            optimized = optimizer.optimize(plan).plan
            graph = compile_stages(optimized, cost)
            executor.run(graph)

    def _rep(obs: ObservabilityRuntime) -> tuple[float, float]:
        """One interleaved rep; returns (baseline_seconds, traced_seconds)."""
        base_opt = Optimizer(catalog)
        base_exec = ClusterExecutor(rng=0)
        traced_opt = Optimizer(catalog, obs=obs)
        traced_exec = ClusterExecutor(rng=0, obs=obs)
        base_total = traced_total = 0.0
        gc.collect()
        gc.disable()
        try:
            for i in range(0, len(plans), chunk_size):
                chunk = plans[i : i + chunk_size]
                with profiler.section("tracing_overhead/baseline"):
                    clock = Stopwatch().start()
                    _drive_chunk(base_opt, base_exec, chunk)
                    base_total += clock.stop()
                with profiler.section("tracing_overhead/traced"):
                    clock = Stopwatch().start()
                    _drive_chunk(traced_opt, traced_exec, chunk)
                    traced_total += clock.stop()
            with profiler.section("tracing_overhead/traced"):
                clock = Stopwatch().start()
                obs.flush()
                traced_total += clock.stop()
        finally:
            gc.enable()
        return base_total, traced_total

    _rep(ObservabilityRuntime())  # warm caches: neither side pays first-run costs
    baseline_runs: list[float] = []
    traced_runs: list[float] = []
    obs = ObservabilityRuntime()
    for _ in range(repeats):
        obs = ObservabilityRuntime()
        base_s, traced_s = _rep(obs)
        baseline_runs.append(base_s)
        traced_runs.append(traced_s)
    ratios = [t / b for b, t in zip(baseline_runs, traced_runs)]
    best = min(range(repeats), key=lambda i: ratios[i])
    baseline_s = baseline_runs[best]
    traced_s = traced_runs[best]
    overhead = ratios[best] - 1.0
    return {
        "n_jobs": len(plans),
        "repeats": repeats,
        "baseline_seconds": baseline_s,
        "traced_seconds": traced_s,
        "baseline_runs": baseline_runs,
        "traced_runs": traced_runs,
        "spans": len(obs.tracer.spans),
        "events": len(obs.events),
        "overhead_fraction": overhead,
        "threshold": TRACING_OVERHEAD_THRESHOLD,
        "within_threshold": overhead < TRACING_OVERHEAD_THRESHOLD,
    }


def measure_checkpoint_delta(run_days: int, profiler: SectionProfiler) -> dict:
    """Full ``@1`` pickle vs ``@2`` delta frame on the standard fleet.

    The bench world is the standard ``FleetConfig(days=7)`` fleet run
    for ``run_days`` days with one explicit ``store.save(plane)`` per
    day — a base frame at day 1, deltas after.  (Deliberately *not*
    ``attach_store``: that persists after every tick, so a daily save
    would find every service already clean and measure nothing.)  Once
    the 7-day workload horizon has passed, most drivers stop mutating:
    the delta frame carries only the genuinely dirty services, with
    references into their declared ``frozen_attrs`` input worlds
    replaced by symbolic tokens, while the ``@1`` snapshot re-pickles
    the whole fleet every day.  Size ratios use the final day's frames;
    time ratios use the minimum over the steady-state tail (scheduler
    jitter on a shared machine would make one-sample timings theater).
    The restored chain must reproduce the live fleet byte for byte.
    """
    import shutil
    import tempfile

    from repro.fabric import (
        CheckpointStore,
        ControlPlane,
        FleetConfig,
        build_fleet,
    )
    from repro.fabric.store import checkpoint_bytes_v1

    plane = ControlPlane()
    build_fleet(plane, FleetConfig(days=7))
    workdir = Path(tempfile.mkdtemp(prefix="bench_ckpt_"))
    store = CheckpointStore(workdir / "store")
    days: list[dict] = []
    try:
        for _ in range(run_days):
            plane.run_days(1)
            # Full @1 first: it reads dirty flags without clearing them,
            # so the @2 save that follows sees the same day's changes.
            with profiler.section("checkpoint_delta/full_v1"):
                clock = Stopwatch().start()
                full_blob = checkpoint_bytes_v1(plane)
                full_s = clock.stop()
            with profiler.section("checkpoint_delta/delta_v2"):
                clock = Stopwatch().start()
                result = store.save(plane)
                delta_s = clock.stop()
            days.append(
                {
                    "day": plane.day,
                    "kind": result.kind,
                    "full_bytes": len(full_blob),
                    "full_seconds": full_s,
                    "delta_bytes": result.bytes_written,
                    "delta_seconds": delta_s,
                    "services_saved": len(result.saved),
                    "services_clean": len(result.clean),
                }
            )
        restored = CheckpointStore.load(store.path)
        assert restored.report_bytes() == plane.report_bytes(), (
            "restored fleet diverged from the live one"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    first, last = days[0], days[-1]
    steady = [d for d in days if d["kind"] == "delta"][-5:]
    steady_full_s = min(d["full_seconds"] for d in steady)
    steady_delta_s = min(d["delta_seconds"] for d in steady)
    size_ratio = last["full_bytes"] / max(last["delta_bytes"], 1)
    time_ratio = steady_full_s / max(steady_delta_s, 1e-12)
    return {
        "world_days": 7,
        "run_days": run_days,
        "day_1": first,
        "day_last": last,
        "steady_full_seconds": steady_full_s,
        "steady_delta_seconds": steady_delta_s,
        "size_ratio": size_ratio,
        "time_ratio": time_ratio,
        "delta_5x_smaller": size_ratio >= 5.0,
        "delta_faster": time_ratio > 1.0,
        "resume_identical": True,
        "days": days,
    }


def run(n_points: int, n_jobs: int, n_queries: int, ckpt_days: int) -> dict:
    import os

    profiler = SectionProfiler()
    total = Stopwatch().start()
    results = {
        "bulk_ingest_sorted": measure_bulk_ingest_sorted(n_points, profiler),
        "bulk_ingest_shuffled": measure_bulk_ingest_shuffled(n_points, profiler),
        "query_windows": measure_query_windows(n_points, n_queries, profiler),
        "signature_trace": measure_signature_trace(n_jobs, profiler),
        "cloudviews_day": measure_cloudviews_day(n_jobs, profiler),
        "parallel_scaling": measure_parallel_scaling(n_jobs, profiler),
        "pool_reuse": measure_pool_reuse(profiler),
        "tracing_overhead": measure_tracing_overhead(n_jobs, profiler),
        "checkpoint_delta": measure_checkpoint_delta(ckpt_days, profiler),
    }
    return {
        "config": {
            "n_points": n_points,
            "n_jobs": n_jobs,
            "n_queries": n_queries,
            "ckpt_days": ckpt_days,
        },
        "cpu_count": os.cpu_count(),
        "results": results,
        "sections": profiler.report(),
        "total_seconds": total.stop(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=1_000_000,
                        help="points for the ingestion/query benchmarks")
    parser.add_argument("--jobs", type=int, default=10_000,
                        help="jobs in the signature trace")
    parser.add_argument("--queries", type=int, default=200,
                        help="window-query rounds (x3 queries each)")
    parser.add_argument("--ckpt-days", type=int, default=30,
                        help="fleet days for the checkpoint_delta benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_substrate.json")
    args = parser.parse_args(argv)
    if min(args.points, args.jobs, args.queries) < 1:
        parser.error("--points, --jobs, and --queries must be positive")
    if args.ckpt_days < 9:
        # Steady state needs the 7-day workload horizon behind it plus a
        # delta tail to time; shorter runs would gate on a base frame.
        parser.error("--ckpt-days must be >= 9")
    if args.quick:
        args.points = min(args.points, 50_000)
        args.jobs = min(args.jobs, 500)
        args.queries = min(args.queries, 30)
        args.ckpt_days = min(args.ckpt_days, 12)

    payload = run(args.points, args.jobs, args.queries, args.ckpt_days)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"== substrate perf (points={args.points:,}, jobs={args.jobs:,},"
        f" cpu_count={payload['cpu_count']}) =="
    )
    for name, row in payload["results"].items():
        if name in ("tracing_overhead", "parallel_scaling", "pool_reuse",
                    "checkpoint_delta"):
            continue
        print(
            f"{name:<22} legacy {row['legacy_seconds']:>8.3f}s"
            f"  new {row['new_seconds']:>8.3f}s"
            f"  speedup {row['speedup']:>8.1f}x"
        )
    scaling = payload["results"]["parallel_scaling"]
    if scaling["skipped_single_core"]:
        print(
            f"{'parallel_scaling':<22} SKIPPED (single core;"
            " equivalence verified, no timing theater)"
        )
    else:
        per_worker = "  ".join(
            f"w{w} {scaling['speedup_vs_serial'][str(w)]:.2f}x"
            for w in scaling["workers"]
        )
        print(
            f"{'parallel_scaling':<22} {per_worker}"
            f"  (cpu_count={scaling['cpu_count']})"
        )
    reuse = payload["results"]["pool_reuse"]
    print(
        f"{'pool_reuse':<22} cold {reuse['cold_seconds']*1e3:>7.1f}ms"
        f"  warm {reuse['warm_seconds']*1e3:>7.1f}ms"
        f"  cold/warm {reuse['cold_over_warm']:>6.1f}x"
        f"  (spawn {reuse['spawn_seconds']*1e3:.1f}ms)"
    )
    ckpt = payload["results"]["checkpoint_delta"]
    last = ckpt["day_last"]
    print(
        f"{'checkpoint_delta':<22} day {last['day']}:"
        f" full {last['full_bytes']:,}B/{ckpt['steady_full_seconds']*1e3:.1f}ms"
        f"  delta {last['delta_bytes']:,}B/{ckpt['steady_delta_seconds']*1e3:.1f}ms"
        f"  {ckpt['size_ratio']:.1f}x smaller, {ckpt['time_ratio']:.1f}x faster"
    )
    overhead = payload["results"]["tracing_overhead"]
    verdict = "OK" if overhead["within_threshold"] else "OVER BUDGET"
    print(
        f"{'tracing_overhead':<22} baseline {overhead['baseline_seconds']:>6.3f}s"
        f"  traced {overhead['traced_seconds']:>6.3f}s"
        f"  overhead {overhead['overhead_fraction']:>7.1%}"
        f" (threshold {overhead['threshold']:.0%}: {verdict})"
    )
    print(f"\nwritten: {args.out}")
    ok = (
        overhead["within_threshold"]
        and ckpt["delta_5x_smaller"]
        and ckpt["delta_faster"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
