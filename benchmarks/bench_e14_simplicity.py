"""E14: Insight 1 — simplicity rules.

"The common pattern across all our engagements is that simple heuristics
tend to overrule ML and simple ML models, like linear models and
tree-based models, tend to overrule complex deep learning models."

On the repo's own runtime-prediction task (recurring jobs, the
production regime), the ladder runs from a zero-training heuristic —
predict the template's previous observed runtime, the exact analogue of
Seagull's previous-day rule — through linear and tree models to boosted
ensembles.  The claim: the heuristic and small trees are competitive
with the heaviest model at a fraction (or none) of the training cost.
"""

import time

import numpy as np
from conftest import note, print_table

from repro.engine import ClusterExecutor, compile_stages, template_signature
from repro.core.costmodel import job_cost_features
from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    RandomForestRegressor,
    mape,
)


class PreviousRunHeuristic:
    """Predict each template's most recent observed runtime."""

    def fit(self, templates, runtimes):
        self._last = {}
        for template, runtime in zip(templates, runtimes):
            self._last[template] = runtime
        self._fallback = float(np.median(runtimes))
        return self

    def predict(self, templates):
        return np.array(
            [self._last.get(t, self._fallback) for t in templates]
        )


def run_e14(world):
    executor = ClusterExecutor(n_machines=16, rng=0)
    features, targets, templates = [], [], []
    for job in world["workload"].jobs[:300]:
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(plan, world["est_cost"], truth=world["true_cost"])
        report = executor.run(graph)
        features.append(job_cost_features(plan, world["est_cost"]))
        targets.append(report.runtime)
        templates.append(template_signature(plan))
    x = np.vstack(features)
    y = np.array(targets)
    log_y = np.log1p(y)
    split = int(0.75 * len(y))
    # Evaluate on the *recurring* test jobs (templates seen in training):
    # the production regime the paper's heuristics live in.  Ad-hoc
    # one-offs have no previous run, for anyone.
    seen = set(templates[:split])
    recurring = np.array([t in seen for t in templates[split:]])
    y_test = y[split:][recurring]
    out = {"recurring_fraction": float(recurring.mean())}

    start = time.perf_counter()
    heuristic = PreviousRunHeuristic().fit(templates[:split], y[:split])
    heuristic_time = time.perf_counter() - start
    heuristic_pred = heuristic.predict(
        [t for t, r in zip(templates[split:], recurring) if r]
    )
    out["previous-run heuristic"] = (
        mape(y_test, heuristic_pred), heuristic_time
    )

    models = {
        "linear regression": LinearRegression(),
        "decision tree (d4)": DecisionTreeRegressor(max_depth=4),
        "random forest (20)": RandomForestRegressor(n_trees=20, rng=0),
        "gbm (60 trees)": GradientBoostingRegressor(n_trees=60, rng=0),
    }
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(x[:split], log_y[:split])
        train_seconds = time.perf_counter() - start
        predicted = np.maximum(
            0.1, np.expm1(model.predict(x[split:][recurring]))
        )
        out[name] = (mape(y_test, predicted), train_seconds)
    return out


def bench_e14_simplicity_rules(benchmark, world):
    out = benchmark.pedantic(run_e14, args=(world,), rounds=1, iterations=1)
    recurring_fraction = out.pop("recurring_fraction")
    baseline_time = out["gbm (60 trees)"][1]
    rows = [
        (name, f"{err:.1%}", f"{seconds*1e3:.1f}ms",
         f"{baseline_time/max(seconds, 1e-9):.0f}x")
        for name, (err, seconds) in out.items()
    ]
    print_table(
        "E14 — Insight 1: heuristics and simple models vs complex models",
        rows,
        ("predictor", "MAPE", "train time", "speedup vs GBM"),
    )
    heuristic_err = out["previous-run heuristic"][0]
    complex_err = out["gbm (60 trees)"][0]
    note(
        f"recurring test jobs: {recurring_fraction:.0%}; the zero-training "
        f"heuristic is within {heuristic_err / max(complex_err, 1e-9):.1f}x "
        f"of the 60-tree GBM on them"
    )
    # The heuristic overrules (or matches) the heavy model...
    assert heuristic_err < 1.5 * max(complex_err, 0.05)
    # ...and every simple option trains orders of magnitude faster.
    assert out["previous-run heuristic"][1] < 0.05 * baseline_time
    assert out["linear regression"][1] < 0.05 * baseline_time
