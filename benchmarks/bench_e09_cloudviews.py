"""E9: CloudViews computation reuse — 34% latency / 37% processing [21].

Runs view selection + rewriting day by day.  Two modes per day:

- *syntactic* — strict-signature matching only (baseline CloudViews), and
- *+containment* — the paper's extension "from the syntactically
  equivalent subexpressions ... to semantically equivalent and contained
  subexpressions", serving drifted-bound instances from one weakest-bound
  view through compensating filters.
"""

import numpy as np
from conftest import note, print_table

from repro.core.cloudviews import CloudViews


def run_e09(world):
    out = []
    for day in range(2, 8):
        jobs = [(j.job_id, j.plan) for j in world["workload"].by_day(day)]
        views = CloudViews(world["catalog"], world["est_cost"])
        plain = views.run_day(jobs, world["truth"])
        contained = views.run_day(jobs, world["truth"], containment=True)
        out.append((day, plain, contained))
    return out


def bench_e09_cloudviews(benchmark, world):
    reports = benchmark.pedantic(run_e09, args=(world,), rounds=1, iterations=1)
    rows = [
        (
            f"day {day}",
            plain.n_views,
            f"{plain.latency_improvement:.1%}",
            contained.n_views,
            f"{contained.latency_improvement:.1%}",
        )
        for day, plain, contained in reports
    ]
    plain_mean = float(
        np.mean([p.latency_improvement for _, p, _ in reports])
    )
    contained_mean = float(
        np.mean([c.latency_improvement for _, _, c in reports])
    )
    rows.append(("mean", "-", f"{plain_mean:.1%}", "-", f"{contained_mean:.1%}"))
    rows.append(("paper", "-", "34% latency / 37% processing", "-", "-"))
    print_table(
        "E9 — CloudViews reuse: syntactic vs +containment",
        rows,
        ("day", "views", "latency improvement",
         "views (+containment)", "latency improvement (+containment)"),
    )
    note(
        f"containment extension adds "
        f"{contained_mean - plain_mean:+.1%} mean latency improvement"
    )
    assert plain_mean > 0.10
    assert contained_mean >= plain_mean
    assert all(p.latency_improvement >= 0 for _, p, _ in reports)
