"""Figure 1: linear models predict machine behaviour (KEA [53]).

Regenerates the two scatter-plus-fit panels of the paper's Figure 1 as
tables: CPU utilization vs running containers and task execution time vs
CPU utilization, with fitted slope/intercept/R^2 against the simulator's
ground truth per SKU.
"""

from conftest import print_table

from repro.core.kea import MachineBehaviorModels
from repro.telemetry import TelemetryStore
from repro.workloads import MachineFleetSimulator
from repro.workloads.machines import DEFAULT_SKUS


def run_f1() -> MachineBehaviorModels:
    store = TelemetryStore()
    MachineFleetSimulator(n_machines_per_sku=10, noise=2.0, rng=0).collect(
        store, n_steps=50
    )
    return MachineBehaviorModels().fit(store)


def bench_f1_machine_behavior_models(benchmark):
    models = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    truth = {s.name: s for s in DEFAULT_SKUS}
    rows = []
    for sku in models.skus():
        cpu = models.cpu_models[sku]
        task = models.task_models[sku]
        rows.append(
            (
                sku,
                f"{cpu.slope:.2f} (true {truth[sku].cpu_per_container:.2f})",
                f"{cpu.r2:.3f}",
                f"{task.slope:.2f} (true {truth[sku].task_seconds_per_cpu:.2f})",
                f"{task.r2:.3f}",
            )
        )
    print_table(
        "Figure 1 — machine behaviour models (fit vs ground truth)",
        rows,
        ("sku", "cpu/container slope", "R^2", "task-sec/cpu slope", "R^2"),
    )
    assert all(m.r2 > 0.9 for m in models.cpu_models.values())
