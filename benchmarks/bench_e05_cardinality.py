"""E5: per-template cardinality micromodels beat the default estimator [49].

Includes the keep-only-improving ablation: pruning retains a fraction of
candidates without giving up the accuracy win.
"""

import numpy as np
from conftest import note, print_table

from repro.core.cardinality import LearnedCardinalityModel, MicromodelTrainer
from repro.core.peregrine import WorkloadFeedback, WorkloadRepository
from repro.ml import q_error


def run_e05(world):
    repo = WorkloadRepository().ingest(world["workload"])
    feedback = WorkloadFeedback()
    representatives = {}
    for record in repo.records:
        if record.day < 8:
            feedback.observe_job(record, world["truth"])
        for sig, node in record.subexpression_templates.items():
            representatives.setdefault(sig, node)
        representatives.setdefault(record.template, record.plan)
    pruned_report = MicromodelTrainer(world["default"]).train(
        feedback, representatives
    )
    keep_all_report = MicromodelTrainer(world["default"], keep_all=True).train(
        feedback, representatives
    )
    holdout = [r for r in repo.records if r.day >= 8]

    def q_stats(model):
        errors = []
        for record in holdout:
            actual = np.array([world["truth"].estimate(record.plan)])
            errors.append(
                q_error(actual, np.array([model.estimate(record.plan)]))[0]
            )
        return float(np.median(errors)), float(np.mean(errors))

    pruned = LearnedCardinalityModel.from_report(world["default"], pruned_report)
    keep_all = LearnedCardinalityModel.from_report(world["default"], keep_all_report)
    return {
        "default": q_stats(world["default"]),
        "micromodels (pruned)": q_stats(pruned),
        "micromodels (keep-all)": q_stats(keep_all),
        "n_pruned": len(pruned_report.kept),
        "n_keep_all": len(keep_all_report.kept),
        "n_candidates": pruned_report.n_candidates,
    }


def bench_e05_cardinality_micromodels(benchmark, world):
    out = benchmark.pedantic(run_e05, args=(world,), rounds=1, iterations=1)
    rows = [
        (name, f"{out[name][0]:.2f}", f"{out[name][1]:.2f}")
        for name in ("default", "micromodels (pruned)", "micromodels (keep-all)")
    ]
    print_table(
        "E5 — cardinality q-error on held-out days",
        rows,
        ("estimator", "median q", "mean q"),
    )
    note(
        f"models kept: pruned {out['n_pruned']} / keep-all {out['n_keep_all']}"
        f" (of {out['n_candidates']} candidates)"
    )
    assert out["micromodels (pruned)"][0] <= out["default"][0]
    assert out["micromodels (pruned)"][1] < out["default"][1]
    assert out["n_pruned"] < out["n_keep_all"]
