"""E12: Doppler SKU recommendation accuracy >95% [6].

Includes the Insight-2 ablation: segment-wise right-sizing factors vs a
single global factor.
"""

from conftest import print_table

from repro.core.doppler import SkuRecommender, recommendation_accuracy
from repro.workloads import generate_customers


def run_e12():
    historical = generate_customers(500, rng=0)
    migrating = generate_customers(250, rng=1)
    segmented = SkuRecommender(n_segments=5, rng=0).observe(historical)
    global_only = SkuRecommender(n_segments=1, rng=0).observe(historical)
    return {
        "segments + price-perf curve": (
            recommendation_accuracy(segmented, migrating, within_one_tier=False),
            recommendation_accuracy(segmented, migrating),
        ),
        "single global factor": (
            recommendation_accuracy(global_only, migrating, within_one_tier=False),
            recommendation_accuracy(global_only, migrating),
        ),
    }


def bench_e12_doppler(benchmark):
    accuracies = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    rows = [
        (name, f"{exact:.1%}", f"{tier:.1%}")
        for name, (exact, tier) in accuracies.items()
    ]
    rows.append(("paper", "-", ">95%"))
    print_table(
        "E12 — SKU recommendation accuracy",
        rows,
        ("recommender", "exact", "within one tier"),
    )
    seg_exact, seg_tier = accuracies["segments + price-perf curve"]
    glob_exact, _ = accuracies["single global factor"]
    assert seg_tier > 0.9
    assert seg_exact >= glob_exact
