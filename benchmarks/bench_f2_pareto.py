"""Figure 2: the QoS-vs-cost Pareto curve, shifted by ML.

Sweeps reactive pause policies (the manual knob family) to trace the
baseline Pareto curve, then adds Moneyball's forecast policy at several
conservativeness levels and measures how far the frontier moves toward
the origin.
"""

from conftest import note, print_table

from repro.core.moneyball import (
    ForecastPausePolicy,
    PredictabilityClassifier,
    policy_tradeoff,
)
from repro.core.pareto import frontier_shift, pareto_frontier
from repro.infra import ReactiveIdlePolicy, ServerlessSimulator
from repro.workloads import UsagePopulationConfig, generate_population


def run_f2():
    tenants = generate_population(
        UsagePopulationConfig(n_tenants=60, n_days=42), rng=0
    )
    simulator = ServerlessSimulator()
    classifier = PredictabilityClassifier()
    baseline_points = []
    for idle_hours in (1, 2, 4, 8, 16):
        reports = [
            simulator.run(
                t, ReactiveIdlePolicy(idle_hours, simulator.activity_threshold)
            )
            for t in tenants
        ]
        baseline_points.append(
            policy_tradeoff(reports, f"reactive_{idle_hours}")
        )
    ml_points = []
    for margin in (1, 2, 4):
        reports = []
        for t in tenants:
            if classifier.is_predictable(t):
                policy = ForecastPausePolicy(
                    activity_threshold=simulator.activity_threshold,
                    pause_margin=margin,
                )
            else:
                policy = ReactiveIdlePolicy(4, simulator.activity_threshold)
            reports.append(simulator.run(t, policy))
        ml_points.append(policy_tradeoff(reports, f"moneyball_m{margin}"))
    return baseline_points, ml_points


def bench_f2_pareto_curve(benchmark):
    baseline, ml = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    rows = [
        (p.label, f"{p.qos_penalty:.4f}", f"{p.cost:.3f}")
        for p in baseline + ml
    ]
    print_table(
        "Figure 2 — QoS (cold starts/active hour) vs cost (billed/active hour)",
        rows,
        ("policy", "qos_penalty", "cost"),
    )
    shift = frontier_shift(baseline, baseline + ml)
    note(f"frontier shift toward origin with ML: {shift:.1%}")
    frontier = pareto_frontier(baseline + ml)
    ml_on_frontier = [p.label for p in frontier if p.label.startswith("moneyball")]
    note(f"ML points on the combined frontier: {ml_on_frontier}")
    assert ml_on_frontier, "ML policies must reach the frontier"
