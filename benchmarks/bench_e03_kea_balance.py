"""E3: KEA balancing removes hotspots a static config creates [53].

Shape to reproduce: model-derived per-SKU container caps equalize CPU
utilization across hardware generations, cutting imbalance and overload
relative to one-cap-fits-all.
"""

import numpy as np
from conftest import note, print_table

from repro.core.kea import MachineBehaviorModels, WorkloadBalancer
from repro.infra import SkuFleetConfig
from repro.telemetry import TelemetryStore
from repro.workloads import MachineFleetSimulator
from repro.workloads.machines import DEFAULT_SKUS


def run_e03():
    store = TelemetryStore()
    MachineFleetSimulator(n_machines_per_sku=8, rng=0).collect(store, n_steps=40)
    models = MachineBehaviorModels().fit(store)
    balancer = WorkloadBalancer(models)
    result = balancer.recommend_caps(target_cpu=75)
    skus = {s.name: s for s in DEFAULT_SKUS}
    tuned = balancer.build_fleet(skus, 8, result)
    static = [SkuFleetConfig(s, 8, 28) for s in DEFAULT_SKUS]
    demands = list(np.random.default_rng(1).integers(400, 650, 20))
    return (
        result,
        WorkloadBalancer.evaluate(static, demands),
        WorkloadBalancer.evaluate(tuned, demands),
    )


def bench_e03_kea_balancing(benchmark):
    result, static, tuned = benchmark.pedantic(run_e03, rounds=1, iterations=1)
    rows = [
        ("static (28 everywhere)", f"{static['mean_cpu']:.1f}",
         f"{static['mean_imbalance']:.2f}", f"{static['overload_fraction']:.1%}"),
        (f"KEA caps {result.caps}", f"{tuned['mean_cpu']:.1f}",
         f"{tuned['mean_imbalance']:.2f}", f"{tuned['overload_fraction']:.1%}"),
    ]
    print_table(
        "E3 — workload balancing via tuned per-SKU container caps",
        rows,
        ("config", "mean cpu", "cpu imbalance (std)", "overload"),
    )
    note(
        f"imbalance reduction: "
        f"{1 - tuned['mean_imbalance'] / static['mean_imbalance']:.0%}"
    )
    assert tuned["mean_imbalance"] < 0.5 * static["mean_imbalance"]
    assert tuned["overload_fraction"] <= static["overload_fraction"]
