"""E11: Seagull backup windows — ML 99% vs previous-day heuristic 96% [40]."""

from conftest import print_table

from repro.core.seagull import (
    ForecastWindowPolicy,
    PreviousDayPolicy,
    evaluate_policy,
)
from repro.core.seagull.scheduler import PreviousWeekPolicy
from repro.workloads import UsagePopulationConfig, generate_population


def run_e11():
    population = generate_population(
        UsagePopulationConfig(n_tenants=60, n_days=42), rng=0
    )
    servers = [t for t in population if t.is_predictable]
    days = range(29, 41)
    return {
        "previous-day heuristic": evaluate_policy(servers, PreviousDayPolicy(), days),
        "previous-week heuristic": evaluate_policy(servers, PreviousWeekPolicy(), days),
        "ML forecast (Holt-Winters)": evaluate_policy(
            servers, ForecastWindowPolicy(), days
        ),
    }


def bench_e11_seagull_backup_windows(benchmark):
    accuracies = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    paper = {
        "previous-day heuristic": "96%",
        "previous-week heuristic": "-",
        "ML forecast (Holt-Winters)": "99%",
    }
    rows = [
        (name, f"{acc:.1%}", paper[name]) for name, acc in accuracies.items()
    ]
    print_table(
        "E11 — low-load backup window accuracy",
        rows,
        ("policy", "measured", "paper"),
    )
    assert accuracies["ML forecast (Holt-Winters)"] >= accuracies[
        "previous-day heuristic"
    ]
    assert accuracies["ML forecast (Holt-Winters)"] > 0.97
    assert accuracies["previous-day heuristic"] > 0.90
