"""E17: MLOS-style tuning beats the default VM configuration [9]."""

import numpy as np
from conftest import print_table

from repro.core.mlos import (
    ModelGuidedTuner,
    RandomSearchTuner,
    redis_vm_benchmark,
)


def run_e17():
    space, objective, optimum = redis_vm_benchmark(noise=0.5, rng=0)
    default_score = float(np.mean([objective(space.default()) for _ in range(10)]))
    random_result = RandomSearchTuner(space, rng=1).tune(objective, budget=60)
    guided_result = ModelGuidedTuner(space, rng=1).tune(objective, budget=60)
    return default_score, random_result, guided_result, optimum


def bench_e17_mlos_tuning(benchmark):
    default, random_result, guided, optimum = benchmark.pedantic(
        run_e17, rounds=1, iterations=1
    )
    rows = [
        ("default config", f"{default:.1f}", "-"),
        ("random search (60 evals)", f"{random_result.best_score:.1f}",
         f"{random_result.best_score / default - 1:.0%}"),
        ("model-guided (60 evals)", f"{guided.best_score:.1f}",
         f"{guided.best_score / default - 1:.0%}"),
        ("noiseless optimum", f"{optimum:.1f}", "-"),
    ]
    print_table(
        "E17 — Redis-VM throughput under configuration tuning",
        rows,
        ("configuration", "throughput", "vs default"),
    )
    assert guided.best_score > default * 1.3
    assert guided.best_score >= random_result.best_score
