"""E7: guarded steering improves plans without regressions [35, 51].

Includes the small-incremental-steps ablation: capping steering at 2
flips from the default versus allowing unconstrained drift.
"""

import numpy as np
from conftest import print_table

from repro.core.steering import SteeringService


def run_e07(world):
    # Three epochs over the 10-day stream ~ a month of recurring history:
    # per-template validation needs several trials before adopting.
    base = [
        (j.job_id, j.plan) for j in world["workload"].jobs if j.is_recurring
    ]
    jobs = base + [
        (f"{job_id}-e{epoch}", plan)
        for epoch in (2, 3)
        for job_id, plan in base
    ]
    true_cost = lambda plan: world["true_cost"].cost(plan).total  # noqa: E731

    def run(max_steps):
        service = SteeringService(
            world["optimizer"],
            true_cost,
            exploration_rate=1.0,
            validation_trials=2,
            max_steps=max_steps,
            rng=0,
        )
        return service.run(jobs)

    return run(max_steps=2), run(max_steps=len(jobs))


def bench_e07_steering(benchmark, world):
    guarded, unconstrained = benchmark.pedantic(
        run_e07, args=(world,), rounds=1, iterations=1
    )
    rows = []
    for label, report in (
        ("incremental (<=2 flips)", guarded),
        ("unconstrained", unconstrained),
    ):
        quarters = np.array_split([o.improvement for o in report.outcomes], 4)
        rows.append(
            (
                label,
                f"{report.improvement:.1%}",
                f"{report.regression_fraction():.1%}",
                report.adoptions,
                report.rollbacks,
                report.max_steps_from_default(),
                f"{float(np.mean(quarters[-1])):.1%}",
            )
        )
    print_table(
        "E7 — rule-hint steering over recurring jobs",
        rows,
        ("mode", "total improvement", "regressions", "adoptions",
         "rollbacks", "max flips", "last-quarter improvement"),
    )
    assert guarded.improvement > 0.0
    assert guarded.regression_fraction() == 0.0
    assert guarded.max_steps_from_default() <= 2
