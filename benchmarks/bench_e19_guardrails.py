"""E19 (extension, Direction 4): RAI guardrails over a live service.

Audits Doppler's autonomous SKU recommendations: per-segment overspend
parity (no customer class marginalized), the cost guardrail vetoing
runaway recommendations, and the regression guardrail's audit trail.
"""

from conftest import note, print_table

from repro.core.doppler import SkuRecommender
from repro.core.guardrails import CostGuardrail, fairness_report
from repro.workloads import generate_customers, ground_truth_sku


def run_e19():
    recommender = SkuRecommender(rng=0).observe(generate_customers(500, rng=0))
    customers = generate_customers(250, rng=1)
    segments, overspend = [], []
    vetoes = 0
    guardrail = CostGuardrail(max_increase_factor=2.0)
    for customer in customers:
        truth_price = ground_truth_sku(customer).price
        recommendation = recommender.recommend(customer)
        decision = guardrail.review(recommendation.sku.price, truth_price)
        if not decision.approved:
            vetoes += 1
        segments.append(customer.segment)
        overspend.append(recommendation.sku.price / truth_price)
    report = fairness_report(
        segments, overspend, "overspend_ratio", disparity_bound=0.35
    )
    return report, vetoes, len(customers)


def bench_e19_rai_guardrails(benchmark):
    report, vetoes, total = benchmark.pedantic(run_e19, rounds=1, iterations=1)
    rows = [
        (f"segment {segment}", f"{mean:.3f}", f"{report.disparity(segment):.1%}")
        for segment, mean in sorted(report.segment_means.items())
    ]
    rows.append(("population", f"{report.population_mean:.3f}", "-"))
    print_table(
        "E19 — fairness audit of Doppler recommendations (overspend ratio)",
        rows,
        ("segment", "mean overspend", "disparity"),
    )
    note(
        f"cost guardrail vetoes: {vetoes}/{total} recommendations "
        f"(>2x customer's right-sized spend)"
    )
    note(f"fairness verdict: {'FAIR' if report.is_fair else 'FLAGGED'} "
         f"(bound {report.disparity_bound:.0%})")
    assert report.is_fair
    assert vetoes < 0.1 * total
