"""E13: auto-tuning — the global model is a reasonable start, per-app
fine-tuning converges [45].
"""

import numpy as np
from conftest import print_table

from repro.core.autotune import ApplicationTuner, benchmark_suite


def run_e13():
    suite = benchmark_suite(80, rng=0)
    warm = ApplicationTuner(rng=0).fit_global(suite[:50])
    cold = ApplicationTuner(rng=0)  # no global model: fixed default start
    rows = {"warm": {"start": [], "tuned": []}, "cold": {"start": [], "tuned": []}}
    for app in suite[50:]:
        optimal = app.runtime(app.optimal_executors())
        for label, tuner in (("warm", warm), ("cold", cold)):
            trace = tuner.tune(app, n_runs=12)
            rows[label]["start"].append(trace.runtimes[0] / optimal - 1)
            rows[label]["tuned"].append(trace.best_runtime / optimal - 1)
    return {
        label: (float(np.mean(v["start"])), float(np.mean(v["tuned"])))
        for label, v in rows.items()
    }


def bench_e13_autotune(benchmark):
    out = benchmark.pedantic(run_e13, rounds=1, iterations=1)
    rows = [
        ("global-model warm start", f"{out['warm'][0]:.1%}", f"{out['warm'][1]:.1%}"),
        ("fixed default start", f"{out['cold'][0]:.1%}", f"{out['cold'][1]:.1%}"),
    ]
    print_table(
        "E13 — Spark config auto-tuning (mean runtime regret vs optimum)",
        rows,
        ("starting point", "first run", "after 12 runs"),
    )
    warm_start, warm_tuned = out["warm"]
    cold_start, _ = out["cold"]
    assert warm_start < 0.5 * cold_start   # global model is a good start
    assert warm_tuned <= warm_start + 1e-9  # tuning only improves
    assert warm_tuned < 0.1                # converges near optimal
