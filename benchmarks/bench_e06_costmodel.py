"""E6: learned cost micromodels + meta ensemble beat the analytical
model and raise coverage [46].

Includes the ablation separating micromodel, global model, analytical
estimate, and the meta ensemble that combines them.
"""

from conftest import note, print_table

from repro.core.costmodel import CostObservation, LearnedCostModel, job_cost_features
from repro.engine import ClusterExecutor, compile_stages, template_signature


def run_e06(world):
    executor = ClusterExecutor(n_machines=16, rng=0)
    observations = []
    for job in world["workload"].jobs:
        plan = world["optimizer"].optimize(job.plan).plan
        graph = compile_stages(plan, world["est_cost"], truth=world["true_cost"])
        report = executor.run(graph)
        observations.append(
            CostObservation(
                template=template_signature(plan),
                features=job_cost_features(plan, world["est_cost"]),
                actual_seconds=report.runtime,
            )
        )
    split = int(0.75 * len(observations))
    model = LearnedCostModel(rng=0).train(observations[:split])
    return model.evaluate(observations[split:]), model.n_micromodels


def bench_e06_learned_cost_models(benchmark, world):
    metrics, n_micromodels = benchmark.pedantic(
        run_e06, args=(world,), rounds=1, iterations=1
    )
    rows = [
        ("analytical (engine default)", f"{metrics['analytical_mape']:.1%}"),
        ("global learned model", f"{metrics['global_mape']:.1%}"),
        ("per-template micromodels", f"{metrics['micromodel_mape']:.1%}"),
        ("meta ensemble", f"{metrics['ensemble_mape']:.1%}"),
    ]
    print_table(
        "E6 — job runtime prediction error (MAPE, held-out)",
        rows,
        ("predictor", "MAPE"),
    )
    note(
        f"micromodels: {n_micromodels} "
        f"(cover {metrics['micromodel_coverage']:.0%} of held-out jobs; "
        f"the ensemble covers 100%)"
    )
    assert metrics["ensemble_mape"] < metrics["analytical_mape"]
    assert metrics["ensemble_mape"] < 0.5
