"""Serve harness: the async query plane under increasing arrival rates.

Drives an in-process async client against a warmed fleet fabric through
:class:`~repro.serve.plane.QueryPlane` and writes the numbers to
``BENCH_serve.json`` so regressions are visible:

1. **sustained** — closed-loop bursts with an effectively unbounded
   queue: sustained QPS, p50/p99 latency, and the signature-keyed
   cache's hit rate with no admission pressure.
2. **rate_sweep** — open-loop arrivals at 0.5x / 1x / 2x the measured
   capacity against a bounded queue.  The 2x point is the overload
   gate: the admission controller must shed (shed fraction > 0, with
   explicit 503s) while the p99 of *admitted* requests stays within
   3x the uncontended p99 — goodput held flat by shedding, not melted
   by queueing.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fabric import ControlPlane, FleetConfig, build_fleet  # noqa: E402
from repro.serve import QueryPlane, TrafficGenerator  # noqa: E402

#: Admitted-p99 under 2x overload must stay within this factor of the
#: uncontended p99 (the acceptance gate).
P99_OVERLOAD_FACTOR = 3.0
#: Queue bound for the overload phases — small enough that 2x arrivals
#: visibly shed, large enough that batching still forms full batches.
OVERLOAD_QUEUE_DEPTH = 48


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def build_fabric(warm_days: int = 2, seed: int = 0) -> ControlPlane:
    fabric = ControlPlane()
    build_fleet(fabric, FleetConfig(seed=seed, days=warm_days))
    fabric.run_days(warm_days)
    return fabric


def fresh_plane(fabric: ControlPlane, max_queue_depth: int) -> QueryPlane:
    return QueryPlane(
        fabric,
        rate_per_tenant=1e9,  # shedding, not throttling, is under test
        burst=1e9,
        max_queue_depth=max_queue_depth,
    )


async def _timed_handle(plane, endpoint, request, samples):
    start = time.perf_counter()
    response = await plane.handle(endpoint, request)
    samples.append((response.status, time.perf_counter() - start))
    return response


def run_closed_loop(
    fabric: ControlPlane, n_requests: int, concurrency: int, seed: int
) -> dict:
    """Back-to-back bursts, queue effectively unbounded: raw capacity."""
    plane = fresh_plane(fabric, max_queue_depth=10 ** 9)
    generator = TrafficGenerator(fabric, seed=seed)
    samples: list[tuple[int, float]] = []

    async def drive() -> float:
        start = time.perf_counter()
        sent = 0
        while sent < n_requests:
            burst = generator.stream(min(concurrency, n_requests - sent))
            await asyncio.gather(
                *(_timed_handle(plane, e, r, samples) for e, r in burst)
            )
            sent += len(burst)
        plane.drain()
        return time.perf_counter() - start

    elapsed = asyncio.run(drive())
    latencies = [latency for _, latency in samples]
    return {
        "requests": n_requests,
        "concurrency": concurrency,
        "elapsed_s": round(elapsed, 4),
        "sustained_qps": round(n_requests / elapsed, 1),
        "latency": {
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "max_ms": round(max(latencies) * 1e3, 3),
        },
        "cache": plane.cache.summary(),
        "batching": plane.batcher.summary(),
    }


def run_open_loop(
    fabric: ControlPlane,
    n_requests: int,
    offered_qps: float,
    multiplier: float,
    seed: int,
) -> dict:
    """Fixed arrival rate against a bounded queue: the shedding regime."""
    plane = fresh_plane(fabric, max_queue_depth=OVERLOAD_QUEUE_DEPTH)
    generator = TrafficGenerator(fabric, seed=seed)
    samples: list[tuple[int, float]] = []

    async def drive() -> float:
        loop = asyncio.get_running_loop()
        interval = 1.0 / offered_qps
        tasks = []
        start = loop.time()
        next_at = start
        for endpoint, request in generator.stream(n_requests):
            tasks.append(
                asyncio.ensure_future(
                    _timed_handle(plane, endpoint, request, samples)
                )
            )
            next_at += interval
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        await asyncio.gather(*tasks)
        plane.drain()
        return loop.time() - start

    elapsed = asyncio.run(drive())
    admitted = [lat for status, lat in samples if status == 200]
    return {
        "multiplier": multiplier,
        "offered_qps": round(offered_qps, 1),
        "achieved_qps": round(len(admitted) / elapsed, 1) if elapsed else 0.0,
        "requests": n_requests,
        "admitted": len(admitted),
        "shed_503": plane.admission.shed,
        "shed_fraction": round(plane.admission.shed_fraction, 4),
        "admitted_latency": {
            "p50_ms": round(_percentile(admitted, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(admitted, 0.99) * 1e3, 3),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer requests per phase",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_closed = 400 if args.quick else 2000
    n_open = 300 if args.quick else 1200

    fabric = build_fabric(seed=args.seed)
    try:
        sustained = run_closed_loop(
            fabric, n_closed, concurrency=32, seed=args.seed
        )
        capacity = sustained["sustained_qps"]
        sweep = [
            run_open_loop(
                fabric,
                n_open,
                offered_qps=capacity * multiplier,
                multiplier=multiplier,
                seed=args.seed + 1,
            )
            for multiplier in (0.5, 1.0, 2.0)
        ]
    finally:
        fabric.close()

    overload = sweep[-1]
    uncontended_p99 = sustained["latency"]["p99_ms"]
    admitted_p99 = overload["admitted_latency"]["p99_ms"]
    ratio = admitted_p99 / uncontended_p99 if uncontended_p99 else 0.0
    overload_gate = {
        "uncontended_p99_ms": uncontended_p99,
        "admitted_p99_ms": admitted_p99,
        "p99_ratio": round(ratio, 3),
        "p99_factor_limit": P99_OVERLOAD_FACTOR,
        "shed_fraction": overload["shed_fraction"],
        "sheds_under_overload": overload["shed_503"] > 0,
        "p99_within_limit": ratio <= P99_OVERLOAD_FACTOR,
    }

    payload = {
        "bench": "serve",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "results": {
            "sustained": sustained,
            "rate_sweep": sweep,
            "overload": overload_gate,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failures = []
    if sustained["sustained_qps"] <= 0:
        failures.append("sustained QPS is zero")
    if not overload_gate["sheds_under_overload"]:
        failures.append("no 503 sheds under 2x overload")
    if not overload_gate["p99_within_limit"]:
        failures.append(
            f"admitted p99 {admitted_p99:.2f}ms exceeds"
            f" {P99_OVERLOAD_FACTOR}x uncontended {uncontended_p99:.2f}ms"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
