"""E15: Insight 2 — one size does not fit all.

Sweeps per-entity data volume: with scarce data the segment model is the
happy middle ground; with ample data individual models win; the global
model never does.  The automatic selector tracks the winner.
"""

from conftest import print_table

from repro.core.granularity import GranularPredictor, heterogeneous_population


def run_e15():
    out = []
    for samples in (4, 8, 16, 40):
        entities = heterogeneous_population(
            n_entities=30, samples_per_entity=samples, noise=1.0, rng=0
        )
        predictor = GranularPredictor(min_individual_samples=8, rng=0).fit(entities)
        report = predictor.evaluate(entities)
        out.append((samples, report))
    return out


def bench_e15_granularity(benchmark):
    sweeps = benchmark.pedantic(run_e15, rounds=1, iterations=1)
    rows = []
    for samples, report in sweeps:
        winner = min(
            ("global", report.global_mse),
            ("segment", report.segment_mse),
            ("individual", report.individual_mse),
            key=lambda kv: kv[1],
        )[0]
        rows.append(
            (
                samples,
                f"{report.global_mse:.2f}",
                f"{report.segment_mse:.2f}",
                f"{report.individual_mse:.2f}",
                f"{report.selected_mse:.2f}",
                winner,
            )
        )
    print_table(
        "E15 — granularity vs per-entity data volume (MSE)",
        rows,
        ("samples/entity", "global", "segment", "individual", "selector", "winner"),
    )
    scarce = sweeps[0][1]
    ample = sweeps[-1][1]
    assert scarce.segment_mse < scarce.global_mse       # stratification helps
    assert ample.individual_mse <= ample.segment_mse    # data flips the winner
    best_ample = min(ample.global_mse, ample.segment_mse, ample.individual_mse)
    assert ample.selected_mse <= 1.5 * best_ample       # selector tracks it
