"""Moneyball: proactive pause/resume for serverless databases [41].

"In [41], we demonstrated that 77% of Azure SQL Database Serverless
usage is predictable and used ML forecasts to pause/resume databases
proactively."  The QoS/cost tension of doing so is the paper's Figure 2
Pareto curve.
"""

from repro.core.moneyball.policy import (
    ForecastPausePolicy,
    MoneyballPolicy,
    MoneyballReport,
    PredictabilityClassifier,
    evaluate_policies,
    policy_tradeoff,
)

__all__ = [
    "PredictabilityClassifier",
    "ForecastPausePolicy",
    "MoneyballPolicy",
    "MoneyballReport",
    "policy_tradeoff",
    "evaluate_policies",
]
