"""Predictability classification and the forecast-driven pause policy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.service import AutonomousService

from repro.core.pareto import TradeoffPoint
from repro.infra.serverless import (
    BillingReport,
    PausePolicy,
    ReactiveIdlePolicy,
    ServerlessSimulator,
)
from repro.ml import predictability_score
from repro.workloads.usage import HOURS_PER_DAY, TenantTrace

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent


@dataclass
class PredictabilityClassifier:
    """Label tenants predictable/unpredictable from their history.

    A tenant is predictable when a seasonal-naive model explains most of
    the variance of its recent usage — the Moneyball gate that decides
    who gets the proactive ML policy (77% of production tenants do).
    """

    period: int = 7 * HOURS_PER_DAY
    threshold: float = 0.5
    history_days: int = 28

    def score(self, trace: TenantTrace) -> float:
        history = trace.values[: self.history_days * HOURS_PER_DAY]
        if history.size < 2 * self.period:
            return 0.0
        return predictability_score(history, self.period)

    def is_predictable(self, trace: TenantTrace) -> bool:
        return self.score(trace) >= self.threshold

    def predictable_fraction(self, traces: list[TenantTrace]) -> float:
        if not traces:
            raise ValueError("no traces")
        return float(np.mean([self.is_predictable(t) for t in traces]))

    def accuracy(self, traces: list[TenantTrace]) -> float:
        """Agreement with the generator's ground-truth labels."""
        if not traces:
            raise ValueError("no traces")
        return float(
            np.mean(
                [self.is_predictable(t) == t.is_predictable for t in traces]
            )
        )


@dataclass
class ForecastPausePolicy:
    """Seasonal-forecast pause/resume with proactive resume.

    - Pause when the same hour one period ago was idle too (the near
      future is forecast idle).
    - Resume proactively when the forecast says the coming hour will be
      active, avoiding the cold start entirely for seasonal tenants.

    ``pause_margin`` hours of forecast idle are required before pausing
    (higher margin = more conservative = fewer cold starts, more cost).
    """

    period: int = 7 * HOURS_PER_DAY
    activity_threshold: float = 0.05
    pause_margin: int = 1

    def _forecast_window(self, hour: int, history: np.ndarray, width: int) -> np.ndarray:
        """Seasonal-naive forecast for hours [hour, hour+width)."""
        idx = np.arange(hour, hour + width) - self.period
        idx = idx[(idx >= 0) & (idx < history.size)]
        if idx.size == 0:
            return np.array([np.inf])  # unknown: assume active (stay up)
        return history[idx]

    def should_pause(self, hour: int, history: np.ndarray) -> bool:
        window = self._forecast_window(hour, history, self.pause_margin)
        return bool(np.all(window < self.activity_threshold))

    def should_resume(self, hour: int, history: np.ndarray) -> bool:
        window = self._forecast_window(hour, history, 1)
        return bool(np.any(window >= self.activity_threshold))


def policy_tradeoff(
    reports: list[BillingReport], label: str = ""
) -> TradeoffPoint:
    """Aggregate a population's reports into one (QoS penalty, cost) point.

    QoS penalty = cold starts per active hour; cost = billed hours per
    trace hour.
    """
    if not reports:
        raise ValueError("no reports")
    active = sum(r.active_hours for r in reports)
    cold = sum(r.cold_starts for r in reports)
    billed = sum(r.billed_hours for r in reports)
    return TradeoffPoint(
        qos_penalty=cold / max(active, 1),
        cost=billed / max(active, 1),
        label=label,
    )


def evaluate_policies(
    traces: list[TenantTrace],
    simulator: ServerlessSimulator,
    classifier: PredictabilityClassifier | None = None,
    fallback_idle_hours: int = 4,
    pause_margin: int = 1,
) -> dict[str, list[BillingReport]]:
    """Run the standard policy lineup over a tenant population.

    - ``always_on``: never pause,
    - ``reactive_N``: pause after N idle hours, resume on demand,
    - ``moneyball``: ForecastPausePolicy for tenants the classifier
      deems predictable, conservative reactive fallback for the rest.
    """
    classifier = classifier or PredictabilityClassifier()
    lineup: dict[str, Callable[[TenantTrace], PausePolicy]] = {
        "always_on": lambda t: _AlwaysOn(),
        "reactive_1": lambda t: ReactiveIdlePolicy(
            1, simulator.activity_threshold
        ),
        "reactive_4": lambda t: ReactiveIdlePolicy(
            4, simulator.activity_threshold
        ),
        "moneyball": lambda t: (
            ForecastPausePolicy(
                activity_threshold=simulator.activity_threshold,
                pause_margin=pause_margin,
            )
            if classifier.is_predictable(t)
            else ReactiveIdlePolicy(
                fallback_idle_hours, simulator.activity_threshold
            )
        ),
    }
    return {
        name: [simulator.run(t, factory(t)) for t in traces]
        for name, factory in lineup.items()
    }


@dataclass
class _AlwaysOn:
    def should_pause(self, hour: int, history: np.ndarray) -> bool:
        return False

    def should_resume(self, hour: int, history: np.ndarray) -> bool:
        return True


@dataclass
class MoneyballReport:
    """Per-policy (QoS, cost) tradeoff points over the observed tenants."""

    points: dict[str, TradeoffPoint]
    n_tenants: int
    predictable_fraction: float

    def to_events(self) -> "list[ObsEvent]":
        from repro.obs.events import ObsEvent, freeze_attributes

        return [
            ObsEvent(
                timestamp=0.0,
                layer="service",
                source="moneyball",
                kind="policy",
                value=point.cost,
                attributes=freeze_attributes(
                    {"policy": name, "qos_penalty": round(point.qos_penalty, 6)}
                ),
            )
            for name, point in self.points.items()
        ]


class MoneyballPolicy(AutonomousService):
    """The pause/resume service behind the AutonomousService API.

    ``observe`` ingests tenant usage traces, ``recommend`` returns the
    pause policy a tenant should run (forecast-driven when the
    classifier deems it predictable, conservative reactive fallback
    otherwise), and ``report`` simulates the standard policy lineup over
    everything observed and returns the tradeoff points.
    """

    service_name = "moneyball"
    layer = "service"

    def __init__(
        self,
        simulator: ServerlessSimulator | None = None,
        classifier: PredictabilityClassifier | None = None,
        fallback_idle_hours: int = 4,
        pause_margin: int = 1,
    ) -> None:
        self.simulator = simulator or ServerlessSimulator()
        self.classifier = classifier or PredictabilityClassifier()
        self.fallback_idle_hours = fallback_idle_hours
        self.pause_margin = pause_margin
        self._traces: list[TenantTrace] = []

    def observe(self, trace: TenantTrace) -> bool:
        """Ingest one tenant's usage trace; returns its predictability."""
        self._traces.append(trace)
        predictable = self.classifier.is_predictable(trace)
        self._emit(
            "observe", tenant=trace.tenant_id, predictable=predictable
        )
        return predictable

    def recommend(self, trace: TenantTrace) -> PausePolicy:
        """The pause policy this tenant should run."""
        if self.classifier.is_predictable(trace):
            return ForecastPausePolicy(
                activity_threshold=self.simulator.activity_threshold,
                pause_margin=self.pause_margin,
            )
        return ReactiveIdlePolicy(
            self.fallback_idle_hours, self.simulator.activity_threshold
        )

    def report(self) -> MoneyballReport:
        """Simulate the policy lineup over every observed tenant."""
        if not self._traces:
            raise ValueError("no traces observed")
        with self._span("report", n_tenants=len(self._traces)):
            by_policy = evaluate_policies(
                self._traces,
                self.simulator,
                classifier=self.classifier,
                fallback_idle_hours=self.fallback_idle_hours,
                pause_margin=self.pause_margin,
            )
            return MoneyballReport(
                points={
                    name: policy_tradeoff(reports, name)
                    for name, reports in by_policy.items()
                },
                n_tenants=len(self._traces),
                predictable_fraction=self.classifier.predictable_fraction(
                    self._traces
                ),
            )

