"""Monitoring + retrain + flight + rollback, wired together.

The loop owns one logical model name in a
:class:`~repro.ml.registry.ModelRegistry` and consumes a stream of
(features, actual) production observations:

1. every observation is scored against the serving model and the error
   feeds a drift detector (the *monitoring system*);
2. detected drift triggers the retrain callback on a recent window and
   the candidate enters a *flight*;
3. the flight is evaluated on live traffic and either promoted or
   aborted;
4. a promoted model that regresses is *rolled back* with one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.service import AutonomousService
from repro.ml import ModelRegistry, PageHinkley
from repro.ml.drift import DriftDetector

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent


@dataclass
class LoopEvent:
    """One notable action taken by the loop (for the audit trail)."""

    step: int
    action: str      # "drift" | "flight" | "promote" | "abort" | "rollback"
    version: int | None = None

    def to_events(self) -> "list[ObsEvent]":
        """This loop action as the shared observability event shape."""
        from repro.obs.events import ObsEvent, freeze_attributes

        attributes = (
            freeze_attributes({"version": self.version})
            if self.version is not None
            else ()
        )
        return [
            ObsEvent(
                timestamp=float(self.step),
                layer="service",
                source="feedback",
                kind=self.action,
                attributes=attributes,
            )
        ]


@dataclass
class FeedbackReport:
    """Audit trail of one loop, replayable into the shared EventLog."""

    name: str
    steps: int
    events: list[LoopEvent]

    @property
    def actions(self) -> list[str]:
        return [e.action for e in self.events]

    def to_events(self) -> "list[ObsEvent]":
        return [obs_event for event in self.events for obs_event in event.to_events()]


class FeedbackLoop(AutonomousService):
    """Drive one model name through monitor -> retrain -> flight -> rollback."""

    service_name = "feedback"
    layer = "service"

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        retrain: Callable[[np.ndarray, np.ndarray], object],
        detector: DriftDetector | None = None,
        window: int = 50,
        flight_fraction: float = 0.2,
        flight_min_samples: int = 20,
        rollback_patience: int = 40,
        rollback_tolerance: float = 2.5,
    ) -> None:
        if window < 5:
            raise ValueError("window must be >= 5")
        self.registry = registry
        self.name = name
        self.retrain = retrain
        self.detector = detector or PageHinkley(delta=0.01, threshold=3.0)
        self.window = window
        self.flight_fraction = flight_fraction
        self.flight_min_samples = flight_min_samples
        self.rollback_patience = rollback_patience
        self.rollback_tolerance = rollback_tolerance
        self.events: list[LoopEvent] = []
        self._recent_x: list[np.ndarray] = []
        self._recent_y: list[float] = []
        self._step = 0
        self._baseline_error: float | None = None
        self._post_promotion_errors: list[float] = []

    # -- the AutonomousService API ----------------------------------------------
    def observe(self, features: np.ndarray, actual: float) -> float:
        """Process one production observation; returns the served prediction."""
        self._step += 1
        record = self.registry.serve(self.name)
        prediction = float(
            np.asarray(record.model.predict(np.atleast_2d(features))).ravel()[0]
        )
        error = abs(prediction - actual)
        self.registry.record_metric(self.name, record.version, error)
        self._recent_x.append(np.asarray(features, dtype=float))
        self._recent_y.append(float(actual))
        if len(self._recent_x) > self.window:
            self._recent_x.pop(0)
            self._recent_y.pop(0)

        self._monitor_production(error)
        if self.registry.flighting(self.name) is None:
            if self.detector.update(error):
                self._trigger_retrain()
        else:
            self._evaluate_flight()
        return prediction

    def recommend(self) -> dict:
        """The loop's current serving decision for its model name."""
        serving = self.registry.serve(self.name)
        flighting = self.registry.flighting(self.name)
        return {
            "name": self.name,
            "serving_version": serving.version,
            "flighting_version": flighting.version if flighting else None,
        }

    def report(self) -> FeedbackReport:
        """The audit trail so far (replayable via ``to_events()``)."""
        return FeedbackReport(
            name=self.name, steps=self._step, events=list(self.events)
        )

    def _record(self, event: LoopEvent) -> None:
        self.events.append(event)
        self._emit(
            event.action,
            step=event.step,
            **({"version": event.version} if event.version is not None else {}),
        )

    # -- internals -------------------------------------------------------------
    def _trigger_retrain(self) -> None:
        self._record(LoopEvent(self._step, "drift"))
        self.detector.reset()
        x = np.vstack(self._recent_x)
        y = np.array(self._recent_y)
        model = self.retrain(x, y)
        version = self.registry.register(
            self.name, model, metadata={"trigger_step": self._step}
        )
        self.registry.flight(self.name, version, self.flight_fraction)
        # Fresh metric slates so the comparison covers the flight period.
        self.registry.get(self.name, version).metrics.clear()
        production = self.registry.production(self.name)
        if production is not None:
            production.metrics.clear()
        self._record(LoopEvent(self._step, "flight", version))

    def _evaluate_flight(self) -> None:
        candidate = self.registry.flighting(self.name)
        outcome = self.registry.evaluate_flight(
            self.name, min_samples=self.flight_min_samples
        )
        if outcome is True:
            self._record(LoopEvent(self._step, "promote", candidate.version))
            self._baseline_error = None
            self._post_promotion_errors = []
        elif outcome is False:
            self._record(LoopEvent(self._step, "abort", candidate.version))

    def _monitor_production(self, error: float) -> None:
        """Rollback watch: sustained error blow-up after a promotion."""
        promoted = any(e.action == "promote" for e in self.events)
        if not promoted:
            return
        if self._baseline_error is None:
            self._post_promotion_errors.append(error)
            if len(self._post_promotion_errors) >= self.rollback_patience:
                self._baseline_error = float(
                    np.median(self._post_promotion_errors)
                )
                self._post_promotion_errors = []
            return
        self._post_promotion_errors.append(error)
        if len(self._post_promotion_errors) < self.rollback_patience:
            return
        recent = float(np.median(self._post_promotion_errors))
        self._post_promotion_errors = []
        if recent > self.rollback_tolerance * max(self._baseline_error, 1e-9):
            try:
                version = self.registry.rollback(self.name)
            except RuntimeError:
                return
            self._record(LoopEvent(self._step, "rollback", version))
            self._baseline_error = None

