"""The indispensable feedback loop (Insight 3).

"(1) a thorough monitoring system to spot potential changes in
real-time, continually assess, and initiate fine-tuning of the model,
and (2) a rollback mechanism that reacts fast and avoids regression."
"""

from repro.core.feedback.loop import FeedbackLoop, FeedbackReport, LoopEvent

__all__ = ["FeedbackLoop", "FeedbackReport", "LoopEvent"]
