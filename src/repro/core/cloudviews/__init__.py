"""CloudViews: computation reuse via signature-matched views [21, 22, 43].

"CloudViews was developed to detect and reuse common computations on
Cosmos and Spark.  It relies on a lightweight subexpression hash, called
a signature, for scalable materialized view selection and efficient view
matching.  Deployed on Cosmos, we have observed 34% improvement on the
accumulative job latency, and 37% reduced total processing time."
"""

from repro.core.cloudviews.containment import (
    ContainedGroup,
    find_contained_groups,
    rewrite_with_containment,
)
from repro.core.cloudviews.reuse import (
    CloudViews,
    ReuseReport,
    ViewCandidate,
)

__all__ = [
    "CloudViews",
    "ViewCandidate",
    "ReuseReport",
    "ContainedGroup",
    "find_contained_groups",
    "rewrite_with_containment",
]
