"""Contained-subexpression reuse: beyond syntactic signatures.

"We have worked on improvements of CloudViews on several fronts,
including extending the reuse from the syntactically equivalent
subexpressions detected by the signatures to semantically equivalent and
contained subexpressions ... as well as enabling a query to partially
take advantage of a view with the remaining results computed on the base
tables."  (Section 4.2, Computation Reuse)

Syntactic reuse requires strictly identical subtrees.  Containment
relaxes that for the dominant recurring pattern — same template, drifted
``<=`` literals: a view materialized at the *weakest* bound contains
every stricter instance, which is served by scanning the view through a
compensating filter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.engine import Expression, Filter, Predicate, Scan
from repro.engine.expr import replace_subexpression
from repro.engine.signatures import signatures, template_signature


@dataclass
class ContainedGroup:
    """Instances of one template that a single view can contain."""

    template: str
    instances: list[tuple[str, Expression]]   # (job_id, subexpression)
    weakest: Expression                       # the containing instance

    @property
    def n_jobs(self) -> int:
        return len({job_id for job_id, _ in self.instances})

    @property
    def view_table(self) -> str:
        return f"cview_{template_signature(self.weakest)[:12]}"


def _single_upper_bound(expr: Expression) -> Predicate | None:
    """The sole ``<=`` predicate of a Filter-rooted subtree, if that is
    the only literal-bearing node (the containable pattern)."""
    filters = [n for n in expr.walk() if isinstance(n, Filter)]
    if len(filters) != 1:
        return None
    predicates = filters[0].predicates
    if len(predicates) != 1 or predicates[0].op != "<=":
        return None
    return predicates[0]


def find_contained_groups(
    jobs: list[tuple[str, Expression]],
    min_size: int = 2,
    min_jobs: int = 2,
) -> list[ContainedGroup]:
    """Group containable subexpressions by template signature.

    A group qualifies when at least ``min_jobs`` distinct jobs carry an
    instance; instances must follow the single-upper-bound pattern so a
    compensating filter is a complete rewrite.  Groups whose instances
    are all strictly identical are excluded — those are ordinary
    syntactic candidates, not containment wins.
    """
    by_template: dict[str, list[tuple[str, Expression]]] = defaultdict(list)
    for job_id, plan in jobs:
        seen: set[str] = set()
        for node in plan.walk():
            sig = signatures(node).template
            if sig in seen:
                continue
            seen.add(sig)
            if node.size < min_size:
                continue
            if _single_upper_bound(node) is None:
                continue
            by_template[sig].append((job_id, node))
    groups = []
    for template, instances in by_template.items():
        job_ids = {job_id for job_id, _ in instances}
        if len(job_ids) < min_jobs:
            continue
        strict_signatures = {signatures(node).strict for _, node in instances}
        if len(strict_signatures) < 2:
            continue  # purely syntactic; the base selector handles it
        weakest = max(
            (node for _, node in instances),
            key=lambda node: _single_upper_bound(node).value,
        )
        groups.append(
            ContainedGroup(
                template=template,
                instances=instances,
                weakest=weakest,
            )
        )
    return groups


def rewrite_with_containment(
    plan: Expression, group: ContainedGroup
) -> Expression:
    """Serve every contained instance in ``plan`` from the group's view.

    An instance identical to the view becomes a bare view scan; a
    stricter instance becomes a compensating filter over the view scan
    (the "partial use" rewrite).  Returns the plan unchanged when it
    carries no instance of the group.
    """
    view_bound = _single_upper_bound(group.weakest)
    out = plan
    for node in set(plan.walk()):
        if template_signature(node) != group.template:
            continue
        bound = _single_upper_bound(node)
        if bound is None or bound.value > view_bound.value:
            continue  # not contained: would need base-table residuals
        replacement: Expression = Scan(group.view_table)
        if bound.value < view_bound.value:
            replacement = Filter(replacement, (Predicate(bound.column, "<=", bound.value),))
        out = replace_subexpression(out, node, replacement)
    return out
