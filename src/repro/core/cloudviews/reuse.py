"""View selection, view matching, and the reuse accounting.

The day's flow mirrors production CloudViews:

1. **Detection** — enumerate strict signatures of every non-trivial
   subexpression across the day's jobs; signatures appearing in more than
   one job are reuse candidates.
2. **Selection** — greedy utility-per-byte selection under an optional
   materialization budget.  Utility is estimated (the selector has no
   ground truth): cost of the subexpression times the *extra* occurrences
   it saves, minus the one-time write cost.
3. **Matching & rewriting** — jobs after the first occurrence have the
   candidate subtree replaced by a scan of the materialized view; the
   first occurrence pays the write.

All three stages are **signature-indexed**: detection builds an inverted
strict-signature -> candidate table (shardable across a process pool by
template hash, with an order-stable merge), matching is set membership
against each plan's memoized signature set, and rewriting replaces every
selected view in one top-down pass.  Nothing walks plans pairwise.

``run_day`` evaluates the whole pipeline against the true cost model and
reports the accumulated-latency and total-processing improvements the
paper quotes.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine import (
    Catalog,
    ColumnStats,
    DefaultCostModel,
    Expression,
    Scan,
    TableDef,
)
from repro.core.cloudviews.containment import (
    ContainedGroup,
    find_contained_groups,
    rewrite_with_containment,
)
from repro.engine.expr import rewrite_bottom_up
from repro.engine.signatures import signature_sets
from repro.engine.signatures import signatures as plan_signatures
from repro.parallel import (
    DEFAULT_N_SHARDS,
    BytesArena,
    arena_blob,
    pmap,
    resolve_workers,
    shard_items,
)

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


class _ViewAwareTruth:
    """Ground truth that sees through materialized views.

    A view scan produces *exactly* the rows of the subexpression it
    materialized, so the true cardinality of any rewritten plan must
    equal the true cardinality of the original plan.  This wrapper
    restores view scans to their defining expressions before consulting
    the underlying truth model.
    """

    def __init__(self, truth, definitions: dict[str, Expression]) -> None:
        self._truth = truth
        self._definitions = definitions
        # Rewritten plans re-estimate the same view subtrees once per
        # job; restoring is O(plan), so memoize per strict signature
        # (sound: the wrapped truth is a pure function of the plan).
        self._memo: dict[str, float] = {}

    def _restore(self, expr: Expression) -> Expression:
        def swap(node: Expression) -> Expression:
            if isinstance(node, Scan) and node.table in self._definitions:
                return self._definitions[node.table]
            return node

        return rewrite_bottom_up(expr, swap)

    def estimate(self, expr: Expression) -> float:
        sig = plan_signatures(expr).strict
        cached = self._memo.get(sig)
        if cached is None:
            cached = self._truth.estimate(self._restore(expr))
            self._memo[sig] = cached
        return cached

#: Cost units charged per byte written when materializing a view.
WRITE_COST_PER_BYTE = 0.002


@dataclass
class ViewCandidate:
    """A shared subexpression considered for materialization.

    ``group`` is set for containment candidates: the expression is then
    the *weakest* instance of a drifted-bound family, and matching uses
    compensating filters instead of exact subtree equality.
    """

    signature: str
    expression: Expression
    job_ids: list[str]
    estimated_cost: float
    estimated_bytes: float
    group: "ContainedGroup | None" = None

    @property
    def occurrences(self) -> int:
        return len(self.job_ids)

    @property
    def utility(self) -> float:
        """Estimated net saving: reuse benefit minus materialization cost."""
        saved = self.estimated_cost * (self.occurrences - 1)
        return saved - WRITE_COST_PER_BYTE * self.estimated_bytes

    @property
    def view_table(self) -> str:
        if self.group is not None:
            return self.group.view_table
        return f"view_{self.signature[:12]}"


@dataclass
class ReuseReport:
    """Day-level accounting, with and without reuse (E9's bench data)."""

    n_jobs: int
    n_views: int
    baseline_latency: float       # sum of per-job true costs, no reuse
    reuse_latency: float          # with reuse (incl. materialization writes)
    baseline_processing: float    # total work: identical to latency here
    reuse_processing: float
    views: list[ViewCandidate] = field(default_factory=list)

    @property
    def latency_improvement(self) -> float:
        if self.baseline_latency <= 0:
            return 0.0
        return 1.0 - self.reuse_latency / self.baseline_latency

    @property
    def processing_reduction(self) -> float:
        if self.baseline_processing <= 0:
            return 0.0
        return 1.0 - self.reuse_processing / self.baseline_processing


# -- sharded candidate enumeration --------------------------------------------
def _enumerate_candidate_shard(payload) -> dict[str, list]:
    """Worker: partial candidate table over one shard of the day's jobs.

    ``payload`` is ``(entries, min_size)`` with entries of
    ``(job_index, job_id, plan)``.  Each slot carries the *global*
    discovery order ``(job_index, walk_position)`` of its first sighting,
    so merging partials reproduces the exact candidate ordering a serial
    scan over all jobs would produce — regardless of shard count.

    Workers only collect signatures and owners; the (expensive) cost
    model runs post-merge, and only on signatures that survive the
    occurrence filter.  That keeps pool payloads small and avoids
    costing the long tail of once-seen subexpressions.
    """
    entries, min_size = payload
    return _enumerate_entries(entries, min_size)


def _enumerate_candidate_arena(payload) -> dict[str, list]:
    """Worker: enumerate one shard read from the shared-memory arena.

    ``payload`` is ``(arena_handle, shard_index, min_size)`` — a few
    dozen bytes per task.  The shard's pickled entries live in the
    arena the parent published once for the whole day, so a worker
    deserializes exactly its own shard and never receives sibling
    shards through the executor pipe.
    """
    handle, shard_index, min_size = payload
    entries = pickle.loads(arena_blob(handle, shard_index))
    return _enumerate_entries(entries, min_size)


def _enumerate_entries(entries, min_size: int) -> dict[str, list]:
    partial: dict[str, list] = {}
    for job_index, job_id, plan in entries:
        seen: set[str] = set()
        for position, node in enumerate(plan.walk()):
            sig = plan_signatures(node).strict
            if sig in seen:
                continue
            seen.add(sig)
            if node.size < min_size:
                continue
            slot = partial.get(sig)
            if slot is None:
                # [order, expression, owners]
                partial[sig] = [
                    (job_index, position),
                    node,
                    [(job_index, job_id)],
                ]
            else:
                # The per-job ``seen`` set guarantees one entry per job,
                # so owners stay strictly ordered by job index.
                slot[2].append((job_index, job_id))
    return partial


def _merge_candidate_shards(
    partials: list[dict[str, list]],
) -> list[tuple[str, Expression, list[str]]]:
    """Order-stable merge of per-shard candidate tables.

    Deterministic by construction: the expression of a signature comes
    from its globally-first sighting, owners are reassembled in job
    order, and ``(signature, expression, job_ids)`` rows are emitted in
    first-sighting order — byte-identical for any shard count and
    worker count, and identical to a serial scan.
    """
    merged: dict[str, list] = {}
    for partial in partials:
        for sig, slot in partial.items():
            current = merged.get(sig)
            if current is None:
                merged[sig] = [slot[0], slot[1], list(slot[2])]
            else:
                if slot[0] < current[0]:
                    current[0:2] = slot[0:2]
                current[2].extend(slot[2])
    out = []
    for sig, slot in sorted(merged.items(), key=lambda kv: kv[1][0]):
        owners = sorted(slot[2])
        out.append((sig, slot[1], [job_id for _, job_id in owners]))
    return out


def _rewrite_with_views(plan: Expression, views: dict[str, str]) -> Expression:
    """Replace every subtree whose strict signature is in ``views``.

    One top-down pass: a matched node becomes a view scan and is not
    descended into, so when one selected view contains another the
    larger view wins — the same outcome as the legacy largest-first
    sequence of full-tree rewrites, at a single traversal's cost.
    Subtrees that index-provably carry no match are skipped whole.
    """
    if signature_sets(plan).strict.isdisjoint(views):
        return plan
    table = views.get(plan_signatures(plan).strict)
    if table is not None:
        return Scan(table)
    new_children = tuple(
        _rewrite_with_views(child, views) for child in plan.children
    )
    if new_children != plan.children:
        plan = plan.with_children(new_children)
    return plan


class CloudViews:
    """One instance per day: select, materialize, rewrite, account."""

    #: Generic statistics for materialized view tables.
    _VIEW_COLUMNS = (
        ColumnStats("key", distinct=5_000),
        ColumnStats("a0", distinct=200, low=0, high=1000),
        ColumnStats("a1", distinct=50, low=0, high=100),
    )

    def __init__(
        self,
        catalog: Catalog,
        estimated_cost_model: DefaultCostModel,
        min_occurrences: int = 2,
        min_size: int = 2,
        budget_bytes: float = float("inf"),
        max_views: int = 50,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        if min_occurrences < 2:
            raise ValueError("min_occurrences must be >= 2")
        if min_size < 2:
            raise ValueError("min_size must be >= 2 (scans share trivially)")
        if max_views < 1:
            raise ValueError("max_views must be >= 1")
        self.catalog = catalog
        self.est = estimated_cost_model
        self.min_occurrences = min_occurrences
        self.min_size = min_size
        self.budget_bytes = budget_bytes
        self.max_views = max_views
        self._obs = obs
        # Per-epoch shared-memory publication of the day's sharded jobs
        # (set inside ``day_context``); keyed by the jobs list identity
        # so a stale publication can never serve different jobs.
        self._day_pub: BytesArena | None = None
        self._day_pub_key: tuple[int, int] | None = None

    def bind(self, obs: "ObservabilityRuntime | None") -> "CloudViews":
        """Attach (or detach) an observability runtime; returns self."""
        self._obs = obs
        return self

    def _span(self, name: str, **attributes: object):
        if self._obs is None:
            from contextlib import nullcontext

            return nullcontext()
        return self._obs.span(name, layer="service", **attributes)

    # -- shared-memory day publication -----------------------------------------
    def _publish_shards(self, jobs: list[tuple[str, Expression]]) -> BytesArena:
        """Shard the day's jobs and publish them to shared memory once.

        One pickled blob per template-hash shard, packed into a single
        :class:`BytesArena`; pool tasks then carry only ``(handle,
        shard_index)`` instead of the shard contents, and a worker
        deserializes exactly its own shard from the shared segment.
        """
        entries = [
            (index, job_id, plan)
            for index, (job_id, plan) in enumerate(jobs)
        ]
        shards = shard_items(
            entries,
            key=lambda entry: plan_signatures(entry[2]).template,
            n_shards=DEFAULT_N_SHARDS,
        )
        with self._span(
            "cloudviews.publish", n_jobs=len(jobs), n_shards=len(shards)
        ):
            blobs = [pickle.dumps(shard, protocol=4) for shard in shards]
            return BytesArena(blobs)

    @contextmanager
    def day_context(self, jobs: list[tuple[str, Expression]]):
        """Publish ``jobs`` once for repeated parallel calls (one epoch).

        Every ``candidates``/``select``/``run_day`` call on the *same*
        jobs list inside the context reuses the publication instead of
        re-sharding and re-pickling — e.g. sweeping worker counts over
        one day, or re-selecting under different budgets.  The shared
        segment is unlinked on exit.
        """
        publication = self._publish_shards(jobs)
        self._day_pub = publication
        self._day_pub_key = (id(jobs), len(jobs))
        try:
            yield self
        finally:
            self._day_pub = None
            self._day_pub_key = None
            publication.close()

    # -- detection & selection -------------------------------------------------
    def candidates(
        self, jobs: list[tuple[str, Expression]], workers: int = 1
    ) -> list[ViewCandidate]:
        """Signatures shared by >= min_occurrences distinct jobs.

        With ``workers > 1`` the day's jobs are sharded by template-
        signature hash, published to shared memory, and enumerated
        across the persistent process pool; the partial utility tables
        merge into the same candidate list (same order, same floats) a
        serial scan produces.
        """
        n = resolve_workers(workers)
        with self._span("cloudviews.candidates", n_jobs=len(jobs), workers=n):
            if n <= 1:
                entries = [
                    (index, job_id, plan)
                    for index, (job_id, plan) in enumerate(jobs)
                ]
                partials = [_enumerate_entries(entries, self.min_size)]
            else:
                reuse = (
                    self._day_pub is not None
                    and self._day_pub_key == (id(jobs), len(jobs))
                )
                publication = (
                    self._day_pub if reuse else self._publish_shards(jobs)
                )
                try:
                    partials = pmap(
                        _enumerate_candidate_arena,
                        [
                            (publication.handle, shard, self.min_size)
                            for shard in range(DEFAULT_N_SHARDS)
                        ],
                        workers=n,
                    )
                finally:
                    if not reuse:
                        publication.close()
            merged = _merge_candidate_shards(partials)
            # Costing is deferred to here: only signatures that recur
            # enough get the cost model run (the once-seen long tail —
            # the overwhelming majority — never does).
            out = []
            for sig, expression, job_ids in merged:
                if len(job_ids) < self.min_occurrences:
                    continue
                candidate = ViewCandidate(
                    signature=sig,
                    expression=expression,
                    job_ids=job_ids,
                    estimated_cost=self.est.cost(expression).total,
                    estimated_bytes=self.est.output_bytes(expression),
                )
                if candidate.utility > 0:
                    out.append(candidate)
        return out

    def select(
        self, jobs: list[tuple[str, Expression]], workers: int = 1
    ) -> list[ViewCandidate]:
        """Greedy utility-per-byte selection under the byte budget.

        Nested candidates are pruned: once a candidate is selected, any
        candidate fully contained in it is dropped (its occurrences would
        disappear after rewriting).
        """
        pool = sorted(
            self.candidates(jobs, workers=workers),
            key=lambda c: -c.utility / max(c.estimated_bytes, 1.0),
        )
        with self._span("cloudviews.select", n_candidates=len(pool)):
            selected: list[ViewCandidate] = []
            selected_sets: list[frozenset[str]] = []
            spent = 0.0
            for candidate in pool:
                if len(selected) >= self.max_views:
                    break
                if spent + candidate.estimated_bytes > self.budget_bytes:
                    continue
                contained = any(
                    candidate.signature in chosen_set
                    for chosen_set in selected_sets
                )
                if contained:
                    continue
                selected.append(candidate)
                selected_sets.append(signature_sets(candidate.expression).strict)
                spent += candidate.estimated_bytes
        return selected

    @staticmethod
    def _contains(outer: Expression, inner: Expression) -> bool:
        """Is ``inner`` a subtree of ``outer``?  Signature-keyed: one
        membership test against the outer plan's memoized signature set
        instead of structural equality at every node."""
        return plan_signatures(inner).strict in signature_sets(outer).strict

    # -- containment extension ---------------------------------------------------
    def _add_containment_candidates(
        self,
        jobs: list[tuple[str, Expression]],
        selected: list[ViewCandidate],
    ) -> list[ViewCandidate]:
        """Widen the selection with drifted-bound (contained) families."""
        covered = {plan_signatures(c.expression).strict for c in selected}
        out = list(selected)
        groups = find_contained_groups(
            jobs, min_size=self.min_size, min_jobs=self.min_occurrences
        )
        for group in groups:
            weakest_sig = plan_signatures(group.weakest).strict
            if weakest_sig in covered:
                continue
            candidate = ViewCandidate(
                signature=weakest_sig,
                expression=group.weakest,
                job_ids=sorted({job_id for job_id, _ in group.instances}),
                estimated_cost=self.est.cost(group.weakest).total,
                estimated_bytes=self.est.output_bytes(group.weakest),
                group=group,
            )
            if candidate.utility > 0:
                out.append(candidate)
        return out

    def _matches(self, plan: Expression, candidate: ViewCandidate) -> bool:
        """Does ``plan`` carry (an instance of) the candidate?"""
        sets = signature_sets(plan)
        if candidate.group is None:
            return candidate.signature in sets.strict
        # Cheap pre-filter: an instance implies the group's template
        # signature appears somewhere in the plan.
        if candidate.group.template not in sets.template:
            return False
        rewritten = rewrite_with_containment(plan, candidate.group)
        return rewritten != plan

    def _apply(self, plan: Expression, candidate: ViewCandidate) -> Expression:
        if candidate.group is None:
            return _rewrite_with_views(
                plan, {candidate.signature: candidate.view_table}
            )
        if candidate.group.template not in signature_sets(plan).template:
            return plan
        return rewrite_with_containment(plan, candidate.group)

    # -- rewriting ---------------------------------------------------------------
    def rewrite(
        self, plan: Expression, selected: list[ViewCandidate]
    ) -> Expression:
        """Replace matched subtrees by view scans, largest views first.

        A single top-down pass over the plan against the signature ->
        view table index; pre-order replacement makes the largest
        selected view win wherever views nest.
        """
        views: dict[str, str] = {}
        for candidate in sorted(selected, key=lambda c: -c.expression.size):
            views.setdefault(candidate.signature, candidate.view_table)
        if not views:
            return plan
        return _rewrite_with_views(plan, views)

    # -- end-to-end day evaluation ---------------------------------------------------
    def run_day(
        self,
        jobs: list[tuple[str, Expression]],
        true_cardinality,
        containment: bool = False,
        workers: int = 1,
    ) -> ReuseReport:
        """Account one day's costs with and without reuse.

        ``true_cardinality`` is the ground-truth model used to (a) size
        the materialized views realistically and (b) cost every executed
        plan.  Jobs must be given in submit order: the first job
        containing a view pays the materialization write.

        With ``containment`` the candidate pool is widened by contained
        subexpressions (same template, drifted ``<=`` bounds): each group
        adds a pseudo-candidate whose expression is the weakest instance
        and whose occurrences count every contained job.  Stricter
        instances are rewritten to compensating filters over the view by
        normalizing them to the weakest bound first.

        ``workers`` fans the candidate enumeration across a process
        pool; the report is byte-identical for every worker count.
        """
        selected = self.select(jobs, workers=workers)
        if containment:
            with self._span("cloudviews.containment"):
                selected = self._add_containment_candidates(jobs, selected)
        truth = DefaultCostModel(self.catalog, true_cardinality)
        with self._span("cloudviews.baseline", n_jobs=len(jobs)):
            baseline = sum(truth.cost(plan).total for _, plan in jobs)

        # Register view tables (sized by ground truth) in a day catalog.
        day_catalog = self.catalog.clone()
        definitions: dict[str, Expression] = {}
        for candidate in selected:
            rows = max(1.0, true_cardinality.estimate(candidate.expression))
            true_bytes = truth.output_bytes(candidate.expression)
            day_catalog.add(
                TableDef(
                    name=candidate.view_table,
                    n_rows=int(rows),
                    columns=self._VIEW_COLUMNS,
                    row_bytes=max(1, int(true_bytes / rows)),
                )
            )
            definitions[candidate.view_table] = candidate.expression
        day_truth = _ViewAwareTruth(true_cardinality, definitions)
        day_cost = DefaultCostModel(day_catalog, day_truth)

        materialized: set[str] = set()
        reuse_total = 0.0
        n_selected = len(selected)
        # Strict-only selections (the common case) take a batched path:
        # all matured views apply in ONE top-down rewrite pass, which is
        # provably identical to the sequential largest-first applies —
        # pre-order replacement already makes the largest view win
        # wherever views nest.  Group (containment) candidates rewrite
        # to compensating filters, which can interleave with strict
        # replacements in size order, so they keep the sequential path.
        strict_only = all(c.group is None for c in selected)
        by_size = sorted(selected, key=lambda c: -c.expression.size)
        with self._span("cloudviews.rewrite_and_account", n_views=n_selected):
            for job_id, plan in jobs:
                sets = signature_sets(plan)
                strict_sigs = sets.strict
                if len(materialized) < n_selected:
                    pending = [
                        c
                        for c in selected
                        if c.signature not in materialized
                        and self._matches(plan, c)
                    ]
                else:
                    # Every view matured: the pending scan can only come
                    # up empty, so skip it (it is O(views) per job).
                    pending = []
                # First occurrence: run as-is, pay the write for each view.
                if strict_only:
                    views = {
                        c.signature: c.view_table
                        for c in by_size
                        if c.signature in materialized
                        and c.signature in strict_sigs
                    }
                    rewritten = (
                        _rewrite_with_views(plan, views) if views else plan
                    )
                else:
                    ready = [
                        c
                        for c in by_size
                        if c.signature in materialized
                        and (
                            c.signature in strict_sigs
                            if c.group is None
                            else c.group.template in sets.template
                        )
                    ]
                    rewritten = plan
                    for candidate in ready:
                        rewritten = self._apply(rewritten, candidate)
                cost = day_cost.cost(rewritten).total
                for candidate in pending:
                    cost += WRITE_COST_PER_BYTE * day_cost.output_bytes(
                        candidate.expression
                    )
                    materialized.add(candidate.signature)
                reuse_total += cost
        return ReuseReport(
            n_jobs=len(jobs),
            n_views=len(selected),
            baseline_latency=baseline,
            reuse_latency=reuse_total,
            baseline_processing=baseline,
            reuse_processing=reuse_total,
            views=selected,
        )
