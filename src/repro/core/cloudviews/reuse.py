"""View selection, view matching, and the reuse accounting.

The day's flow mirrors production CloudViews:

1. **Detection** — enumerate strict signatures of every non-trivial
   subexpression across the day's jobs; signatures appearing in more than
   one job are reuse candidates.
2. **Selection** — greedy utility-per-byte selection under an optional
   materialization budget.  Utility is estimated (the selector has no
   ground truth): cost of the subexpression times the *extra* occurrences
   it saves, minus the one-time write cost.
3. **Matching & rewriting** — jobs after the first occurrence have the
   candidate subtree replaced by a scan of the materialized view; the
   first occurrence pays the write.

``run_day`` evaluates the whole pipeline against the true cost model and
reports the accumulated-latency and total-processing improvements the
paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    Catalog,
    ColumnStats,
    DefaultCostModel,
    Expression,
    Scan,
    TableDef,
)
from repro.core.cloudviews.containment import (
    ContainedGroup,
    find_contained_groups,
    rewrite_with_containment,
)
from repro.engine.expr import replace_subexpression, rewrite_bottom_up
from repro.engine.signatures import signatures as plan_signatures


class _ViewAwareTruth:
    """Ground truth that sees through materialized views.

    A view scan produces *exactly* the rows of the subexpression it
    materialized, so the true cardinality of any rewritten plan must
    equal the true cardinality of the original plan.  This wrapper
    restores view scans to their defining expressions before consulting
    the underlying truth model.
    """

    def __init__(self, truth, definitions: dict[str, Expression]) -> None:
        self._truth = truth
        self._definitions = definitions

    def _restore(self, expr: Expression) -> Expression:
        def swap(node: Expression) -> Expression:
            if isinstance(node, Scan) and node.table in self._definitions:
                return self._definitions[node.table]
            return node

        return rewrite_bottom_up(expr, swap)

    def estimate(self, expr: Expression) -> float:
        return self._truth.estimate(self._restore(expr))

#: Cost units charged per byte written when materializing a view.
WRITE_COST_PER_BYTE = 0.002


@dataclass
class ViewCandidate:
    """A shared subexpression considered for materialization.

    ``group`` is set for containment candidates: the expression is then
    the *weakest* instance of a drifted-bound family, and matching uses
    compensating filters instead of exact subtree equality.
    """

    signature: str
    expression: Expression
    job_ids: list[str]
    estimated_cost: float
    estimated_bytes: float
    group: "ContainedGroup | None" = None

    @property
    def occurrences(self) -> int:
        return len(self.job_ids)

    @property
    def utility(self) -> float:
        """Estimated net saving: reuse benefit minus materialization cost."""
        saved = self.estimated_cost * (self.occurrences - 1)
        return saved - WRITE_COST_PER_BYTE * self.estimated_bytes

    @property
    def view_table(self) -> str:
        if self.group is not None:
            return self.group.view_table
        return f"view_{self.signature[:12]}"


@dataclass
class ReuseReport:
    """Day-level accounting, with and without reuse (E9's bench data)."""

    n_jobs: int
    n_views: int
    baseline_latency: float       # sum of per-job true costs, no reuse
    reuse_latency: float          # with reuse (incl. materialization writes)
    baseline_processing: float    # total work: identical to latency here
    reuse_processing: float
    views: list[ViewCandidate] = field(default_factory=list)

    @property
    def latency_improvement(self) -> float:
        if self.baseline_latency <= 0:
            return 0.0
        return 1.0 - self.reuse_latency / self.baseline_latency

    @property
    def processing_reduction(self) -> float:
        if self.baseline_processing <= 0:
            return 0.0
        return 1.0 - self.reuse_processing / self.baseline_processing


class CloudViews:
    """One instance per day: select, materialize, rewrite, account."""

    #: Generic statistics for materialized view tables.
    _VIEW_COLUMNS = (
        ColumnStats("key", distinct=5_000),
        ColumnStats("a0", distinct=200, low=0, high=1000),
        ColumnStats("a1", distinct=50, low=0, high=100),
    )

    def __init__(
        self,
        catalog: Catalog,
        estimated_cost_model: DefaultCostModel,
        min_occurrences: int = 2,
        min_size: int = 2,
        budget_bytes: float = float("inf"),
        max_views: int = 50,
    ) -> None:
        if min_occurrences < 2:
            raise ValueError("min_occurrences must be >= 2")
        if min_size < 2:
            raise ValueError("min_size must be >= 2 (scans share trivially)")
        if max_views < 1:
            raise ValueError("max_views must be >= 1")
        self.catalog = catalog
        self.est = estimated_cost_model
        self.min_occurrences = min_occurrences
        self.min_size = min_size
        self.budget_bytes = budget_bytes
        self.max_views = max_views

    # -- detection & selection -------------------------------------------------
    def candidates(
        self, jobs: list[tuple[str, Expression]]
    ) -> list[ViewCandidate]:
        """Signatures shared by >= min_occurrences distinct jobs."""
        owners: dict[str, ViewCandidate] = {}
        for job_id, plan in jobs:
            seen: set[str] = set()
            for node in plan.walk():
                sig = plan_signatures(node).strict
                if sig in seen:
                    continue
                seen.add(sig)
                if node.size < self.min_size:
                    continue
                existing = owners.get(sig)
                if existing is None:
                    owners[sig] = ViewCandidate(
                        signature=sig,
                        expression=node,
                        job_ids=[job_id],
                        estimated_cost=self.est.cost(node).total,
                        estimated_bytes=self.est.output_bytes(node),
                    )
                elif job_id not in existing.job_ids:
                    existing.job_ids.append(job_id)
        return [
            c
            for c in owners.values()
            if c.occurrences >= self.min_occurrences and c.utility > 0
        ]

    def select(self, jobs: list[tuple[str, Expression]]) -> list[ViewCandidate]:
        """Greedy utility-per-byte selection under the byte budget.

        Nested candidates are pruned: once a candidate is selected, any
        candidate fully contained in it is dropped (its occurrences would
        disappear after rewriting).
        """
        pool = sorted(
            self.candidates(jobs),
            key=lambda c: -c.utility / max(c.estimated_bytes, 1.0),
        )
        selected: list[ViewCandidate] = []
        spent = 0.0
        for candidate in pool:
            if len(selected) >= self.max_views:
                break
            if spent + candidate.estimated_bytes > self.budget_bytes:
                continue
            contained = any(
                self._contains(chosen.expression, candidate.expression)
                for chosen in selected
            )
            if contained:
                continue
            selected.append(candidate)
            spent += candidate.estimated_bytes
        return selected

    @staticmethod
    def _contains(outer: Expression, inner: Expression) -> bool:
        return any(node == inner for node in outer.walk())

    # -- containment extension ---------------------------------------------------
    def _add_containment_candidates(
        self,
        jobs: list[tuple[str, Expression]],
        selected: list[ViewCandidate],
    ) -> list[ViewCandidate]:
        """Widen the selection with drifted-bound (contained) families."""
        covered = {plan_signatures(c.expression).strict for c in selected}
        out = list(selected)
        groups = find_contained_groups(
            jobs, min_size=self.min_size, min_jobs=self.min_occurrences
        )
        for group in groups:
            weakest_sig = plan_signatures(group.weakest).strict
            if weakest_sig in covered:
                continue
            candidate = ViewCandidate(
                signature=weakest_sig,
                expression=group.weakest,
                job_ids=sorted({job_id for job_id, _ in group.instances}),
                estimated_cost=self.est.cost(group.weakest).total,
                estimated_bytes=self.est.output_bytes(group.weakest),
                group=group,
            )
            if candidate.utility > 0:
                out.append(candidate)
        return out

    def _matches(self, plan: Expression, candidate: ViewCandidate) -> bool:
        """Does ``plan`` carry (an instance of) the candidate?"""
        if candidate.group is None:
            return self._contains(plan, candidate.expression)
        rewritten = rewrite_with_containment(plan, candidate.group)
        return rewritten != plan

    def _apply(self, plan: Expression, candidate: ViewCandidate) -> Expression:
        if candidate.group is None:
            return self.rewrite(plan, [candidate])
        return rewrite_with_containment(plan, candidate.group)

    # -- rewriting ---------------------------------------------------------------
    def rewrite(
        self, plan: Expression, selected: list[ViewCandidate]
    ) -> Expression:
        """Replace matched subtrees by view scans, largest views first."""
        for candidate in sorted(selected, key=lambda c: -c.expression.size):
            plan = replace_subexpression(
                plan, candidate.expression, Scan(candidate.view_table)
            )
        return plan

    # -- end-to-end day evaluation ---------------------------------------------------
    def run_day(
        self,
        jobs: list[tuple[str, Expression]],
        true_cardinality,
        containment: bool = False,
    ) -> ReuseReport:
        """Account one day's costs with and without reuse.

        ``true_cardinality`` is the ground-truth model used to (a) size
        the materialized views realistically and (b) cost every executed
        plan.  Jobs must be given in submit order: the first job
        containing a view pays the materialization write.

        With ``containment`` the candidate pool is widened by contained
        subexpressions (same template, drifted ``<=`` bounds): each group
        adds a pseudo-candidate whose expression is the weakest instance
        and whose occurrences count every contained job.  Stricter
        instances are rewritten to compensating filters over the view by
        normalizing them to the weakest bound first.
        """
        selected = self.select(jobs)
        if containment:
            selected = self._add_containment_candidates(jobs, selected)
        truth = DefaultCostModel(self.catalog, true_cardinality)
        baseline = sum(truth.cost(plan).total for _, plan in jobs)

        # Register view tables (sized by ground truth) in a day catalog.
        day_catalog = self.catalog.clone()
        definitions: dict[str, Expression] = {}
        for candidate in selected:
            rows = max(1.0, true_cardinality.estimate(candidate.expression))
            true_bytes = truth.output_bytes(candidate.expression)
            day_catalog.add(
                TableDef(
                    name=candidate.view_table,
                    n_rows=int(rows),
                    columns=self._VIEW_COLUMNS,
                    row_bytes=max(1, int(true_bytes / rows)),
                )
            )
            definitions[candidate.view_table] = candidate.expression
        day_truth = _ViewAwareTruth(true_cardinality, definitions)
        day_cost = DefaultCostModel(day_catalog, day_truth)

        materialized: set[str] = set()
        reuse_total = 0.0
        for job_id, plan in jobs:
            pending = [
                c
                for c in selected
                if c.signature not in materialized
                and self._matches(plan, c)
            ]
            # First occurrence: run as-is, pay the write for each view.
            ready = [
                c
                for c in selected
                if c.signature in materialized
            ]
            rewritten = plan
            for candidate in sorted(
                ready, key=lambda c: -c.expression.size
            ):
                rewritten = self._apply(rewritten, candidate)
            cost = day_cost.cost(rewritten).total
            for candidate in pending:
                cost += WRITE_COST_PER_BYTE * day_cost.output_bytes(
                    candidate.expression
                )
                materialized.add(candidate.signature)
            reuse_total += cost
        return ReuseReport(
            n_jobs=len(jobs),
            n_views=len(selected),
            baseline_latency=baseline,
            reuse_latency=reuse_total,
            baseline_processing=baseline,
            reuse_processing=reuse_total,
            views=selected,
        )
