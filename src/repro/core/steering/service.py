"""The steering service: contextual-bandit rule flips behind guardrails.

Production adaptations reproduced from [35, 51]:

- **Small incremental steps**: a template's adopted config is never more
  than ``max_steps`` bit-flips away from the engine default, and each
  adoption moves exactly one bit.
- **Contextual bandit**: a LinUCB model over plan-shape features picks
  which single rule flip to trial, so experimentation budget concentrates
  on promising flips instead of the full 2^N space.
- **Validation model**: a flip is adopted only after ``validation_trials``
  trials with mean improvement above ``adoption_threshold`` and no trial
  regressing past ``regression_guard``.
- **Rollback**: adopted flips are monitored; a post-adoption regression
  reverts the flip and blacklists the arm for that template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.service import AutonomousService, deprecated_alias
from repro.engine import (
    ALL_RULES,
    Expression,
    Optimizer,
    RuleConfig,
    signatures,
)
from repro.ml import LinUCB

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent

#: Context feature count (see :func:`plan_features`).
N_FEATURES = 6


def plan_features(plan: Expression, estimated_rows: float) -> np.ndarray:
    """Plan-shape context for the bandit: cheap, engine-agnostic."""
    counts = {"Join": 0, "Filter": 0, "Aggregate": 0}
    for node in plan.walk():
        name = type(node).__name__
        if name in counts:
            counts[name] += 1
    return np.array(
        [
            1.0,  # bias
            plan.size / 10.0,
            counts["Join"],
            counts["Filter"],
            counts["Aggregate"],
            np.log1p(estimated_rows) / 10.0,
        ]
    )


@dataclass
class SteeringOutcome:
    """What happened to one job instance."""

    job_id: str
    template: str
    config: RuleConfig
    default_cost: float
    steered_cost: float
    experimented: bool
    trial_arm: int | None = None

    @property
    def improvement(self) -> float:
        if self.default_cost <= 0:
            return 0.0
        return (self.default_cost - self.steered_cost) / self.default_cost


@dataclass
class _TemplateState:
    config: RuleConfig
    trials: dict[int, list[float]] = field(default_factory=dict)
    blacklisted: set[int] = field(default_factory=set)
    adopted_arms: list[int] = field(default_factory=list)
    post_adoption: list[float] = field(default_factory=list)


@dataclass
class SteeringReport:
    """Aggregate outcome over a stream of jobs (E7's bench data)."""

    outcomes: list[SteeringOutcome]
    adoptions: int
    rollbacks: int

    @property
    def total_default_cost(self) -> float:
        return sum(o.default_cost for o in self.outcomes)

    @property
    def total_steered_cost(self) -> float:
        return sum(o.steered_cost for o in self.outcomes)

    @property
    def improvement(self) -> float:
        base = self.total_default_cost
        return (base - self.total_steered_cost) / base if base > 0 else 0.0

    def regression_fraction(self, tolerance: float = 0.01) -> float:
        """Fraction of jobs the steered config made materially worse."""
        if not self.outcomes:
            return 0.0
        regressions = sum(
            1
            for o in self.outcomes
            if o.steered_cost > o.default_cost * (1.0 + tolerance)
        )
        return regressions / len(self.outcomes)

    def max_steps_from_default(self) -> int:
        if not self.outcomes:
            return 0
        default = RuleConfig.all_on()
        return max(o.config.hamming(default) for o in self.outcomes)

    def to_events(self) -> "list[ObsEvent]":
        """The steered stream as shared observability events.

        One ``job`` event per outcome (value = relative improvement,
        stamped by stream position) plus summary ``adoptions`` /
        ``rollbacks`` counters at the end.
        """
        from repro.obs.events import ObsEvent, freeze_attributes

        events = [
            ObsEvent(
                timestamp=float(i),
                layer="service",
                source="steering",
                kind="job",
                value=outcome.improvement,
                attributes=freeze_attributes(
                    {
                        "job_id": outcome.job_id,
                        "template": outcome.template,
                        "experimented": outcome.experimented,
                    }
                ),
            )
            for i, outcome in enumerate(self.outcomes)
        ]
        end = float(len(self.outcomes))
        for kind, count in (
            ("adoptions", self.adoptions),
            ("rollbacks", self.rollbacks),
        ):
            events.append(
                ObsEvent(
                    timestamp=end,
                    layer="service",
                    source="steering",
                    kind=kind,
                    value=float(count),
                )
            )
        return events


class SteeringService(AutonomousService):
    """Per-template steering with exploration, validation, and rollback."""

    service_name = "steering"
    layer = "service"

    def __init__(
        self,
        optimizer: Optimizer,
        true_cost: Callable[[Expression], float],
        exploration_rate: float = 0.5,
        validation_trials: int = 3,
        adoption_threshold: float = 0.02,
        regression_guard: float = -0.05,
        max_steps: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 <= exploration_rate <= 1.0:
            raise ValueError("exploration_rate must be in [0, 1]")
        if validation_trials < 1:
            raise ValueError("validation_trials must be >= 1")
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self.optimizer = optimizer
        self.true_cost = true_cost
        self.exploration_rate = exploration_rate
        self.validation_trials = validation_trials
        self.adoption_threshold = adoption_threshold
        self.regression_guard = regression_guard
        self.max_steps = max_steps
        self._rng = np.random.default_rng(rng)
        self._states: dict[str, _TemplateState] = {}
        self._outcomes: list[SteeringOutcome] = []
        self.adoptions = 0
        self.rollbacks = 0
        #: Arm index meaning "trial nothing this round".
        self.noop_arm = len(ALL_RULES)
        # One bandit for the whole workload: the *context* carries the
        # job shape, so knowledge about which flips pay off transfers
        # across templates (this is what keeps pre-production
        # experimentation cost low in [51]).
        self._bandit = LinUCB(
            n_arms=len(ALL_RULES) + 1,
            n_features=N_FEATURES,
            alpha=0.8,
            rng=self._rng,
        )

    # -- the AutonomousService API ----------------------------------------------
    def recommend(self, template: str) -> RuleConfig:
        """The currently adopted config for a job template."""
        state = self._states.get(template)
        return state.config if state else RuleConfig.all_on()

    def observe(self, job_id: str, plan: Expression) -> SteeringOutcome:
        """Steer one job: run the adopted config, maybe trial one flip."""
        with self._span("observe", job_id=job_id):
            template = signatures(plan).template
            state = self._state(template)
            default_cost = self._evaluate(plan, RuleConfig.all_on())
            steered_cost = self._evaluate(plan, state.config)

            experimented = False
            trial_arm = None
            if self._rng.random() < self.exploration_rate:
                trial_arm = self._trial(state, plan, steered_cost)
                experimented = trial_arm is not None

            self._monitor_adoption(state, default_cost, steered_cost)
            outcome = SteeringOutcome(
                job_id=job_id,
                template=template,
                config=state.config,
                default_cost=default_cost,
                steered_cost=steered_cost,
                experimented=experimented,
                trial_arm=trial_arm,
            )
            self._outcomes.append(outcome)
            self._emit(
                "job",
                value=outcome.improvement,
                template=template,
                experimented=experimented,
            )
            return outcome

    def report(self) -> SteeringReport:
        """Aggregate report over every job observed so far."""
        return SteeringReport(
            outcomes=list(self._outcomes),
            adoptions=self.adoptions,
            rollbacks=self.rollbacks,
        )

    def run(self, jobs: list[tuple[str, Expression]]) -> SteeringReport:
        """Observe a whole stream; report covers just this stream."""
        outcomes = [self.observe(job_id, plan) for job_id, plan in jobs]
        return SteeringReport(
            outcomes=outcomes,
            adoptions=self.adoptions,
            rollbacks=self.rollbacks,
        )

    # -- the serve contract ------------------------------------------------------
    def serve_observe(self, request) -> SteeringOutcome:
        """``observe`` over the envelope: the plan is the subject.

        The plan rides in ``subject`` (it is the signature-keyed object
        the serve cache and the bandit both key on); ``job_id`` comes in
        through ``params``.
        """
        return self.observe(request.params["job_id"], request.subject)

    # -- deprecated entry points -----------------------------------------------
    @deprecated_alias("recommend")
    def config_for(self, template: str) -> RuleConfig:
        return self.recommend(template)

    @deprecated_alias("observe")
    def process(self, job_id: str, plan: Expression) -> SteeringOutcome:
        return self.observe(job_id, plan)

    # -- internals -------------------------------------------------------------
    def _state(self, template: str) -> _TemplateState:
        state = self._states.get(template)
        if state is None:
            state = _TemplateState(config=RuleConfig.all_on())
            self._states[template] = state
        return state

    def _evaluate(self, plan: Expression, config: RuleConfig) -> float:
        optimized = self.optimizer.optimize(plan, config).plan
        return self.true_cost(optimized)

    def _trial(
        self, state: _TemplateState, plan: Expression, current_cost: float
    ) -> int | None:
        """Flight one candidate flip chosen by the bandit; learn from it."""
        context = plan_features(
            plan, self.optimizer.cardinality.estimate(plan)
        )
        arm = self._bandit.select(context)
        if arm == self.noop_arm or arm in state.blacklisted:
            self._bandit.update(arm, context, 0.0)
            return None
        candidate = state.config.flip(arm)
        if candidate.hamming(RuleConfig.all_on()) > self.max_steps:
            self._bandit.update(arm, context, 0.0)
            return None
        candidate_cost = self._evaluate(plan, candidate)
        reward = (
            (current_cost - candidate_cost) / current_cost
            if current_cost > 0
            else 0.0
        )
        self._bandit.update(arm, context, reward)
        trials = state.trials.setdefault(arm, [])
        trials.append(reward)
        self._maybe_adopt(state, arm, trials)
        return arm

    def _maybe_adopt(
        self, state: _TemplateState, arm: int, trials: list[float]
    ) -> None:
        """The validation model: adopt only proven, never-regressing flips."""
        if len(trials) < self.validation_trials:
            return
        window = trials[-self.validation_trials :]
        if min(window) < self.regression_guard:
            state.blacklisted.add(arm)
            return
        if float(np.mean(window)) >= self.adoption_threshold:
            state.config = state.config.flip(arm)
            state.adopted_arms.append(arm)
            state.trials[arm] = []
            state.post_adoption = []
            self.adoptions += 1
            self._emit("adopt", arm=arm)

    def _monitor_adoption(
        self, state: _TemplateState, default_cost: float, steered_cost: float
    ) -> None:
        """Post-adoption regression watch: revert a flip that turned bad."""
        if not state.adopted_arms:
            return
        improvement = (
            (default_cost - steered_cost) / default_cost
            if default_cost > 0
            else 0.0
        )
        state.post_adoption.append(improvement)
        recent = state.post_adoption[-self.validation_trials :]
        if (
            len(recent) >= self.validation_trials
            and float(np.mean(recent)) < self.regression_guard
        ):
            bad_arm = state.adopted_arms.pop()
            state.config = state.config.flip(bad_arm)
            state.blacklisted.add(bad_arm)
            state.post_adoption = []
            self.rollbacks += 1
            self._emit("rollback", arm=bad_arm)
