"""Rule-hint steering of the query optimizer [25, 35, 51].

"To enhance optimizer plans using rule hints, we have made notable
progress in applying state-of-the-art research ideas from Bao to
production settings.  However, we had to make significant adjustments
for the production system, including limiting steering to small
incremental steps for better interpretability and debuggability,
minimizing pre-production experimentation costs using a contextual
bandit model, and guarding against regression with a validation model."
"""

from repro.core.steering.service import (
    SteeringOutcome,
    SteeringReport,
    SteeringService,
)

__all__ = ["SteeringService", "SteeringOutcome", "SteeringReport"]
