"""Pipeline-aware statistics and cross-job predicate pushdown.

Two Pipemizer optimizations on the producer/consumer job graph:

1. **Pipeline-aware statistics** — a consumer's scan of its producer's
   output is estimated from the producer's *observed* output size rather
   than the stale catalog registration.  The paper's "collecting
   pipeline-aware statistics".
2. **Common-subexpression pushdown** — when every consumer of an output
   table restricts the same column, the weakest restriction is pushed
   into the producer: the producer writes less, every consumer reads
   less.  The paper's "pushing common subexpressions across consumer
   jobs to their producer job".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.engine import (
    Catalog,
    DefaultCostModel,
    Filter,
    Predicate,
    Scan,
    TableDef,
    TrueCardinalityModel,
)
from repro.workloads.scope import Job, Workload


@dataclass
class PipelineStats:
    """Observed output sizes of producer jobs, keyed by derived table."""

    observed_rows: dict[str, float] = field(default_factory=dict)

    def record(self, table: str, rows: float) -> None:
        if rows < 0:
            raise ValueError("rows must be non-negative")
        self.observed_rows[table] = float(rows)

    def patch_catalog(self, catalog: Catalog) -> Catalog:
        """A catalog clone whose derived tables carry observed row counts."""
        patched = Catalog()
        for table in catalog.tables():
            rows = self.observed_rows.get(table.name)
            if rows is None:
                patched.add(table)
            else:
                patched.add(
                    TableDef(
                        name=table.name,
                        n_rows=max(1, int(rows)),
                        columns=table.columns,
                        row_bytes=table.row_bytes,
                    )
                )
        return patched


@dataclass
class PipelineReport:
    """Cost and estimation-quality outcome (E10's bench data)."""

    n_pipelines: int
    n_pushdowns: int
    baseline_cost: float
    optimized_cost: float
    stale_scan_q_error: float       # derived-table scans, stale catalog
    pipeline_aware_q_error: float   # same scans with observed stats

    @property
    def cost_reduction(self) -> float:
        if self.baseline_cost <= 0:
            return 0.0
        return 1.0 - self.optimized_cost / self.baseline_cost


class PipelineOptimizer:
    """Operates on one day's jobs of a :class:`~repro.workloads.scope.Workload`."""

    def __init__(self, workload: Workload, truth: TrueCardinalityModel) -> None:
        self.workload = workload
        self.catalog = workload.catalog
        self.truth = truth

    # -- structure -------------------------------------------------------------
    def pipelines_on_day(self, day: int) -> dict[str, list[Job]]:
        """Producer job id -> consumer jobs, for producers with output tables."""
        jobs = self.workload.by_day(day)
        by_id = {j.job_id: j for j in jobs}
        consumers: dict[str, list[Job]] = defaultdict(list)
        for job in jobs:
            for dep in job.depends_on:
                if dep in by_id:
                    consumers[dep].append(job)
        return dict(consumers)

    @staticmethod
    def output_table_of(consumer: Job) -> str | None:
        for table in consumer.plan.tables():
            if table.startswith("out_t"):
                return table
        return None

    # -- pipeline-aware statistics --------------------------------------------------
    def collect_stats(self, day: int) -> PipelineStats:
        """Observe every producer's actual output size on ``day``."""
        stats = PipelineStats()
        for producer_id in self.pipelines_on_day(day):
            producer = self.workload.job(producer_id)
            table = f"out_t{producer.template_id}"
            if table in self.catalog:
                stats.record(table, self.truth.estimate(producer.plan))
        return stats

    def scan_estimation_errors(
        self, stats: PipelineStats, eval_day: int
    ) -> tuple[float, float]:
        """Mean q-error of derived-table scans: stale catalog vs observed.

        "Actual" rows on the evaluation day are the producer's true output
        that day (parameters drift, so yesterday's observation is close
        but not exact).
        """
        stale_errors, aware_errors = [], []
        for producer_id in self.pipelines_on_day(eval_day):
            producer = self.workload.job(producer_id)
            table = f"out_t{producer.template_id}"
            if table not in self.catalog:
                continue
            actual = max(1.0, self.truth.estimate(producer.plan))
            stale = max(1.0, float(self.catalog.get(table).n_rows))
            observed = max(1.0, stats.observed_rows.get(table, stale))
            stale_errors.append(max(stale / actual, actual / stale))
            aware_errors.append(max(observed / actual, actual / observed))
        if not stale_errors:
            return 1.0, 1.0
        return float(np.mean(stale_errors)), float(np.mean(aware_errors))

    # -- predicate pushdown --------------------------------------------------------------
    def common_pushdown(
        self, table: str, consumers: list[Job]
    ) -> Predicate | None:
        """The weakest common upper-bound predicate across all consumers.

        Requires every consumer to constrain the same column of ``table``
        with ``<=``; the pushable bound is the maximum (weakest) value —
        rows above it are read by no consumer.
        """
        if not consumers:
            return None
        if table not in self.catalog:
            return None
        columns = {c.name for c in self.catalog.get(table).columns}
        per_consumer: list[dict[str, float]] = []
        for consumer in consumers:
            bounds: dict[str, float] = {}
            for node in consumer.plan.walk():
                if not isinstance(node, Filter):
                    continue
                if table not in node.tables():
                    continue
                for pred in node.predicates:
                    if pred.op == "<=" and pred.column in columns:
                        bounds[pred.column] = max(
                            bounds.get(pred.column, -np.inf), pred.value
                        )
            per_consumer.append(bounds)
        shared = set(per_consumer[0])
        for bounds in per_consumer[1:]:
            shared &= set(bounds)
        if not shared:
            return None
        # Pick the most selective shared column (smallest weakest bound
        # relative to the column range).
        best_column = None
        best_fraction = 1.0
        for column in shared:
            stats = self.catalog.get(table).column(column)
            weakest = max(bounds[column] for bounds in per_consumer)
            fraction = (weakest - stats.low) / (stats.high - stats.low)
            if fraction < best_fraction:
                best_fraction = fraction
                best_column = column
        if best_column is None:
            return None
        weakest = max(bounds[best_column] for bounds in per_consumer)
        return Predicate(best_column, "<=", weakest)

    #: Cost units per row the producer writes to its output table.
    WRITE_COST_PER_ROW = 1.0
    #: Pushed predicates evaluate inline during the output write, so
    #: they cost a fraction of a standalone filtering pass.
    PUSHDOWN_FILTER_FACTOR = 0.1

    # -- end-to-end evaluation --------------------------------------------------------------
    def optimize_day(self, day: int) -> PipelineReport:
        """Apply both optimizations to one day and account the costs.

        Producers pay an explicit per-row write cost for their output
        tables in both the baseline and the optimized plan; pushdown
        shrinks that write as well as every consumer's read.
        """
        pipelines = self.pipelines_on_day(day)
        stats = self.collect_stats(day)
        stale_q, aware_q = self.scan_estimation_errors(stats, day)

        # Both sides of the comparison are grounded in what producers
        # *actually* write (the observed stats), not the stale catalog:
        # consumers read the real output either way.
        base_catalog = stats.patch_catalog(self.catalog)
        base_truth = TrueCardinalityModel(base_catalog, self.truth.seed)
        cost_model = DefaultCostModel(base_catalog, base_truth)
        # Accounting is scoped to pipeline participants: producers plus
        # their consumers.  That is the population the optimization can
        # touch (and what per-pipeline improvements are reported over).
        participant_ids = set(pipelines)
        for consumers in pipelines.values():
            participant_ids.update(c.job_id for c in consumers)
        day_jobs = [
            j for j in self.workload.by_day(day) if j.job_id in participant_ids
        ]
        producer_rows = {
            producer_id: self.truth.estimate(self.workload.job(producer_id).plan)
            for producer_id in pipelines
        }
        baseline = sum(cost_model.cost(j.plan).total for j in day_jobs)
        baseline += self.WRITE_COST_PER_ROW * sum(producer_rows.values())

        # Pushdown: shrink each producer's output by the weakest common
        # bound; the predicate evaluates inline during the write.
        pushed: dict[str, Predicate] = {}
        optimized_writes = 0.0
        inline_filter_cost = 0.0
        shrunk = PipelineStats()
        for producer_id, consumers in pipelines.items():
            producer = self.workload.job(producer_id)
            table = f"out_t{producer.template_id}"
            old_rows = producer_rows[producer_id]
            predicate = self.common_pushdown(table, consumers)
            if predicate is None:
                optimized_writes += self.WRITE_COST_PER_ROW * old_rows
                continue
            pushed[table] = predicate
            probe = Filter(Scan(table), (predicate,))
            selectivity = base_truth.estimate(probe) / max(
                1.0, float(base_catalog.get(table).n_rows)
            )
            new_rows = max(1.0, old_rows * min(1.0, selectivity))
            shrunk.record(table, new_rows)
            optimized_writes += self.WRITE_COST_PER_ROW * new_rows
            inline_filter_cost += self.PUSHDOWN_FILTER_FACTOR * old_rows
        if not pushed:
            return PipelineReport(
                n_pipelines=len(pipelines),
                n_pushdowns=0,
                baseline_cost=baseline,
                optimized_cost=baseline,
                stale_scan_q_error=stale_q,
                pipeline_aware_q_error=aware_q,
            )
        patched = shrunk.patch_catalog(base_catalog)
        patched_truth = TrueCardinalityModel(patched, self.truth.seed)
        patched_cost = DefaultCostModel(patched, patched_truth)
        optimized = optimized_writes + inline_filter_cost
        for job in day_jobs:
            touches_pushed = bool(job.plan.tables() & set(pushed))
            model = patched_cost if touches_pushed else cost_model
            optimized += model.cost(job.plan).total
        return PipelineReport(
            n_pipelines=len(pipelines),
            n_pushdowns=len(pushed),
            baseline_cost=baseline,
            optimized_cost=optimized,
            stale_scan_q_error=stale_q,
            pipeline_aware_q_error=aware_q,
        )
