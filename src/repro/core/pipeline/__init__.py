"""Pipeline optimization (Pipemizer) [8, 14].

"Production workloads not only have many recurrent queries, but also
many recurrent query pipelines, where queries are interconnected by
their outputs and inputs ... We analyzed the interdependency to
facilitate job scheduling and developed a pipeline optimizer to optimize
these recurrent pipelines, including collecting pipeline-aware
statistics and pushing common subexpressions across consumer jobs to
their producer job."
"""

from repro.core.pipeline.optimizer import (
    PipelineOptimizer,
    PipelineReport,
    PipelineStats,
)

__all__ = ["PipelineOptimizer", "PipelineReport", "PipelineStats"]
