"""Segment-aware SKU recommendation with a price-performance ranking.

The pipeline mirrors Doppler:

1. **Segmentation** — k-means over observable customer profiles groups
   similar workloads (Insight 2's stratification middle ground).
2. **Segment knowledge** — from labelled historical migrations, each
   segment learns its typical *right-sizing factor* (how much of the
   on-prem peak the cloud deployment really needs).
3. **Price-performance curve** — for a new customer, SKUs are ranked by
   price among those predicted to cover the right-sized requirements;
   the cheapest covering SKU is the recommendation, and the full ranked
   curve is exposed for explainability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.service import AutonomousService
from repro.ml import KMeans, StandardScaler
from repro.workloads.customers import (
    AZURE_SKUS,
    CustomerProfile,
    Sku,
    ground_truth_sku,
)

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent


@dataclass
class Recommendation:
    """The recommendation plus the explainable ranking behind it."""

    customer_id: str
    sku: Sku
    segment: int
    ranked_options: list[tuple[Sku, bool]]  # (sku, predicted_to_cover), by price

    @property
    def price(self) -> float:
        return self.sku.price

    def to_events(self) -> "list[ObsEvent]":
        from repro.obs.events import ObsEvent, freeze_attributes

        return [
            ObsEvent(
                timestamp=0.0,
                layer="service",
                source="doppler",
                kind="recommendation",
                value=self.price,
                attributes=freeze_attributes(
                    {
                        "customer": self.customer_id,
                        "sku": self.sku.name,
                        "segment": self.segment,
                    }
                ),
            )
        ]


@dataclass
class DopplerReport:
    """Every recommendation issued so far, replayable into the EventLog."""

    recommendations: list[Recommendation]

    @property
    def mean_price(self) -> float:
        if not self.recommendations:
            return 0.0
        return float(np.mean([r.price for r in self.recommendations]))

    def to_events(self) -> "list[ObsEvent]":
        return [
            event for rec in self.recommendations for event in rec.to_events()
        ]


class SkuRecommender(AutonomousService):
    """Fit on labelled migrations; recommend for unseen customers."""

    service_name = "doppler"
    layer = "service"

    def __init__(
        self,
        skus: tuple[Sku, ...] = AZURE_SKUS,
        n_segments: int = 5,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        self.skus = skus
        self.n_segments = n_segments
        self._rng = np.random.default_rng(rng)
        self._scaler = StandardScaler()
        self._kmeans: KMeans | None = None
        self._segment_factor: dict[int, dict[str, float]] | None = None
        self._global_factor: dict[str, float] = {
            "vcores": 1.0, "memory": 1.0, "iops": 1.0,
        }
        self._recommendations: list[Recommendation] = []

    # -- training --------------------------------------------------------------
    def observe(
        self,
        customers: list[CustomerProfile],
        observed_needs: list[tuple[float, float, float]] | None = None,
    ) -> "SkuRecommender":
        """Fit segments and per-segment right-sizing factors.

        ``observed_needs`` are per-customer (vcores, memory, iops) actually
        consumed after migration — the post-migration telemetry Doppler
        learns from existing Azure customers.  By default the generator's
        ground-truth effective requirements play that role.
        """
        if len(customers) < self.n_segments:
            raise ValueError("need at least one customer per segment")
        if observed_needs is None:
            observed_needs = [c.effective_requirements() for c in customers]
        if len(observed_needs) != len(customers):
            raise ValueError("observed_needs must match customers")
        features = np.vstack([c.feature_vector() for c in customers])
        scaled = self._scaler.fit_transform(features)
        self._kmeans = KMeans(n_clusters=self.n_segments, rng=self._rng)
        labels = self._kmeans.fit_predict(scaled)
        # Per-segment, per-dimension right-sizing factors: the share of
        # the on-prem peak that migrated deployments actually consume.
        dims = ("vcores", "memory", "iops")
        factors: dict[int, dict[str, list[float]]] = {
            s: {d: [] for d in dims} for s in range(self.n_segments)
        }
        for customer, need, segment in zip(customers, observed_needs, labels):
            seg = factors[int(segment)]
            need_vcores, need_memory, need_iops = need
            if customer.peak_vcores > 0:
                seg["vcores"].append(need_vcores / customer.peak_vcores)
            if customer.peak_memory_gb > 0:
                seg["memory"].append(need_memory / customer.peak_memory_gb)
            if customer.peak_iops > 0:
                seg["iops"].append(need_iops / customer.peak_iops)
        pooled = {
            d: [f for s in factors.values() for f in s[d]] for d in dims
        }
        self._global_factor = {
            d: float(np.median(v)) if v else 1.0 for d, v in pooled.items()
        }
        self._segment_factor = {}
        for segment, seg in factors.items():
            self._segment_factor[segment] = {
                d: float(np.median(v)) if v else self._global_factor[d]
                for d, v in seg.items()
            }
        self._emit("observe", value=float(len(customers)))
        return self

    def report(self) -> DopplerReport:
        """Every recommendation issued so far."""
        return DopplerReport(recommendations=list(self._recommendations))

    # -- recommendation --------------------------------------------------------------
    def segment_of(self, customer: CustomerProfile) -> int:
        if self._kmeans is None:
            raise RuntimeError("recommender is not fitted")
        scaled = self._scaler.transform(
            customer.feature_vector().reshape(1, -1)
        )
        return int(self._kmeans.predict(scaled)[0])

    def recommend(self, customer: CustomerProfile) -> Recommendation:
        """Cheapest SKU predicted to cover the right-sized requirements."""
        if self._segment_factor is None:
            raise RuntimeError("recommender is not fitted")
        return self._recommend_in_segment(customer, self.segment_of(customer))

    def recommend_batch(
        self, customers: list[CustomerProfile]
    ) -> list[Recommendation]:
        """One stacked scaler/k-means call for a whole customer batch.

        Segment assignment is elementwise per row, so every returned
        recommendation is bit-identical to what a serial
        :meth:`recommend` loop would produce — the contract the serve
        layer's micro-batching dispatcher relies on.
        """
        if self._segment_factor is None or self._kmeans is None:
            raise RuntimeError("recommender is not fitted")
        if not customers:
            return []
        features = np.vstack([c.feature_vector() for c in customers])
        segments = self._kmeans.predict(self._scaler.transform(features))
        return [
            self._recommend_in_segment(customer, int(segment))
            for customer, segment in zip(customers, segments)
        ]

    def _recommend_in_segment(
        self, customer: CustomerProfile, segment: int
    ) -> Recommendation:
        factor = self._segment_factor.get(segment, self._global_factor)
        need_vcores = customer.peak_vcores * factor["vcores"]
        need_memory = customer.peak_memory_gb * factor["memory"]
        need_iops = customer.peak_iops * factor["iops"]
        ranked = sorted(self.skus, key=lambda s: s.price)
        options = [
            (sku, sku.covers(need_vcores, need_memory, need_iops))
            for sku in ranked
        ]
        covering = [sku for sku, covers in options if covers]
        chosen = covering[0] if covering else ranked[-1]
        recommendation = Recommendation(
            customer_id=customer.customer_id,
            sku=chosen,
            segment=segment,
            ranked_options=options,
        )
        self._recommendations.append(recommendation)
        self._emit(
            "recommendation",
            value=recommendation.price,
            sku=chosen.name,
            segment=segment,
        )
        return recommendation

    # -- the serve contract ----------------------------------------------------
    def serve_many(self, requests) -> list:
        """Coalesce a compatible ``recommend`` batch into one model call.

        Mixed or single-request batches fall back to the serial default;
        so does an unfitted recommender, where each request must surface
        its own 500-style response.
        """
        from repro.core.service import ServeResponse

        if len(requests) < 2 or any(r.op != "recommend" for r in requests):
            return super().serve_many(requests)
        try:
            results = self.recommend_batch([r.subject for r in requests])
        except Exception:  # noqa: BLE001 — per-request errors via serial path
            return super().serve_many(requests)
        return [
            ServeResponse(
                status=200,
                result=result,
                served_by=self.service_name,
                op="recommend",
            )
            for result in results
        ]


def recommendation_accuracy(
    recommender: SkuRecommender,
    customers: list[CustomerProfile],
    within_one_tier: bool = True,
) -> float:
    """Fraction of customers recommended their ground-truth SKU.

    With ``within_one_tier`` (Doppler's evaluation convention), an
    adjacent SKU on the price ladder also counts: right-sizing within
    one tier is considered acceptable by migration engineers.
    """
    if not customers:
        raise ValueError("no customers")
    ladder = sorted(recommender.skus, key=lambda s: s.price)
    index = {sku.name: i for i, sku in enumerate(ladder)}
    hits = 0
    for customer in customers:
        truth = ground_truth_sku(customer, recommender.skus)
        chosen = recommender.recommend(customer).sku
        if chosen.name == truth.name:
            hits += 1
        elif within_one_tier and abs(index[chosen.name] - index[truth.name]) == 1:
            hits += 1
    return hits / len(customers)
