"""Doppler: SKU recommendation for cloud migration [6].

"we proposed a profiling model that compares new customers to existing
segments of Azure customers ... We achieved a recommendation accuracy of
over 95% by combining the segment-wise knowledge with a per-customer
price-performance curve that offers a customized rank of all SKU
options."
"""

from repro.core.doppler.recommender import (
    DopplerReport,
    Recommendation,
    SkuRecommender,
    recommendation_accuracy,
)

__all__ = [
    "SkuRecommender",
    "Recommendation",
    "DopplerReport",
    "recommendation_accuracy",
]
