"""MLOS-style configuration tuning [9].

"by using ML to predict the throughput and latency of benchmark
workloads on VMs with various kernel parameters, developed on MLOS, we
refined the parameters of the Azure VM that runs Redis workloads."
"""

from repro.core.mlos.tuner import (
    ConfigParameter,
    ConfigSpace,
    ModelGuidedTuner,
    RandomSearchTuner,
    TuningResult,
    redis_vm_benchmark,
)

__all__ = [
    "ConfigParameter",
    "ConfigSpace",
    "RandomSearchTuner",
    "ModelGuidedTuner",
    "TuningResult",
    "redis_vm_benchmark",
]
