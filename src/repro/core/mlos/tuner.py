"""Config-space definition, tuners, and a synthetic Redis-VM benchmark.

The tuners maximize a black-box objective over a numeric configuration
space under a fixed evaluation budget:

- :class:`RandomSearchTuner` — the standard baseline,
- :class:`ModelGuidedTuner` — random-forest surrogate with an
  upper-confidence acquisition (MLOS's model-driven loop, kept to
  Insight-1-simple components).

``redis_vm_benchmark`` is the stand-in for the paper's proprietary
Redis-on-Azure-VM workload: a smooth multi-modal response surface over
kernel-ish parameters with observation noise, whose default
configuration is deliberately far from optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml import RandomForestRegressor


@dataclass(frozen=True)
class ConfigParameter:
    """One numeric knob with an inclusive range and a default."""

    name: str
    low: float
    high: float
    default: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError(f"{self.name}: high must exceed low")
        if not self.low <= self.default <= self.high:
            raise ValueError(f"{self.name}: default outside range")


@dataclass
class ConfigSpace:
    """An ordered set of parameters; configs are plain numpy vectors."""

    parameters: tuple[ConfigParameter, ...]

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ValueError("config space must have at least one parameter")
        names = [p.name for p in self.parameters]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names")

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    def default(self) -> np.ndarray:
        return np.array([p.default for p in self.parameters])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        lows = np.array([p.low for p in self.parameters])
        highs = np.array([p.high for p in self.parameters])
        return rng.uniform(lows, highs, size=(n, self.dimension))

    def clip(self, config: np.ndarray) -> np.ndarray:
        lows = np.array([p.low for p in self.parameters])
        highs = np.array([p.high for p in self.parameters])
        return np.clip(config, lows, highs)

    def as_dict(self, config: np.ndarray) -> dict[str, float]:
        return {p.name: float(v) for p, v in zip(self.parameters, config)}


@dataclass
class TuningResult:
    """Best configuration found and the full evaluation history."""

    best_config: np.ndarray
    best_score: float
    history: list[tuple[np.ndarray, float]]

    @property
    def n_evaluations(self) -> int:
        return len(self.history)

    def incumbent_curve(self) -> np.ndarray:
        """Best-so-far score after each evaluation."""
        scores = np.array([s for _, s in self.history])
        return np.maximum.accumulate(scores)


class RandomSearchTuner:
    """Uniform random sampling; the budget-matched baseline."""

    def __init__(self, space: ConfigSpace, rng: np.random.Generator | int | None = None):
        self.space = space
        self._rng = np.random.default_rng(rng)

    def tune(
        self, objective: Callable[[np.ndarray], float], budget: int = 50
    ) -> TuningResult:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        history = []
        for config in self.space.sample(self._rng, budget):
            history.append((config, float(objective(config))))
        best_config, best_score = max(history, key=lambda cs: cs[1])
        return TuningResult(best_config, best_score, history)


class ModelGuidedTuner:
    """Surrogate-guided search: RF mean + exploration bonus.

    Seeds with random configs, then repeatedly fits a random forest to
    the history and evaluates the candidate maximizing
    ``mean + kappa * std`` over a sampled candidate pool.
    """

    def __init__(
        self,
        space: ConfigSpace,
        n_seed: int = 10,
        n_candidates: int = 200,
        kappa: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_seed < 2:
            raise ValueError("n_seed must be >= 2")
        self.space = space
        self.n_seed = n_seed
        self.n_candidates = n_candidates
        self.kappa = kappa
        self._rng = np.random.default_rng(rng)

    def tune(
        self, objective: Callable[[np.ndarray], float], budget: int = 50
    ) -> TuningResult:
        if budget <= self.n_seed:
            raise ValueError("budget must exceed the seed count")
        history: list[tuple[np.ndarray, float]] = []
        for config in self.space.sample(self._rng, self.n_seed):
            history.append((config, float(objective(config))))
        while len(history) < budget:
            x = np.vstack([c for c, _ in history])
            y = np.array([s for _, s in history])
            surrogate = RandomForestRegressor(
                n_trees=25, max_depth=6, rng=self._rng
            ).fit(x, y)
            candidates = self.space.sample(self._rng, self.n_candidates)
            score = surrogate.predict(candidates) + self.kappa * surrogate.predict_std(
                candidates
            )
            chosen = candidates[int(np.argmax(score))]
            history.append((chosen, float(objective(chosen))))
        best_config, best_score = max(history, key=lambda cs: cs[1])
        return TuningResult(best_config, best_score, history)


def redis_vm_benchmark(
    noise: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> tuple[ConfigSpace, Callable[[np.ndarray], float], float]:
    """Synthetic Redis-on-VM throughput surface.

    Returns (space, objective, noiseless optimum estimate).  The surface
    rewards a mid-range somaxconn, large-ish hugepage fraction, low
    swappiness, and an interaction between io depth and scheduler quantum
    — shapes typical of kernel-parameter studies.
    """
    space = ConfigSpace(
        (
            ConfigParameter("somaxconn", 128, 4096, 512),
            ConfigParameter("hugepage_fraction", 0.0, 1.0, 0.0),
            ConfigParameter("swappiness", 0.0, 100.0, 60.0),
            ConfigParameter("io_depth", 1.0, 64.0, 8.0),
            ConfigParameter("sched_quantum_ms", 1.0, 24.0, 12.0),
        )
    )
    generator = np.random.default_rng(rng)

    def throughput(config: np.ndarray) -> float:
        somaxconn, hugepages, swappiness, io_depth, quantum = config
        score = 100.0
        score += 30.0 * np.exp(-(((somaxconn - 2048) / 800.0) ** 2))
        score += 25.0 * hugepages
        score -= 0.25 * swappiness
        score += 12.0 * np.exp(-(((io_depth - 32) / 12.0) ** 2)) * (
            1.0 - abs(quantum - 6.0) / 24.0
        )
        return float(score + generator.normal(scale=noise))

    noiseless_best = 100.0 + 30.0 + 25.0 - 0.0 + 12.0 * (1 - 2 / 24)
    return space, throughput, noiseless_best
