"""KEA: machine-behaviour models and workload balancing [53].

"we employed multiple linear models to predict machine behavior, such as
CPU utilization versus task execution time or the number of running
containers (see Figure 1).  These models were then integrated into an
optimizer to balance workloads by tuning Cosmos scheduler
configurations, such as the maximum running containers for each SKU."
"""

from repro.core.kea.models import BehaviorModel, MachineBehaviorModels
from repro.core.kea.balancer import BalanceResult, WorkloadBalancer
from repro.core.kea.power import (
    DEFAULT_POWER_PROFILES,
    PowerProfile,
    RackPowerCapper,
    observe_power,
)

__all__ = [
    "BehaviorModel",
    "MachineBehaviorModels",
    "WorkloadBalancer",
    "BalanceResult",
    "PowerProfile",
    "DEFAULT_POWER_PROFILES",
    "RackPowerCapper",
    "observe_power",
]
