"""Rack power capping from behaviour models (§4.1).

"Similar methods were used to determine the hardware/software
configuration ... and to set power limits on Cosmos racks."

Machine power draw is (noisily) linear in CPU utilization — the same
interpretable-model recipe as Figure 1.  Given per-SKU power models and
a rack power limit, the capper derives the per-machine CPU cap (and,
through the CPU model, the container cap) that keeps a fully loaded rack
inside its budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kea.models import BehaviorModel, MachineBehaviorModels


@dataclass(frozen=True)
class PowerProfile:
    """Ground-truth power behaviour of one SKU (for the simulator)."""

    sku: str
    idle_watts: float
    watts_per_cpu: float  # watts per CPU utilization percentage point

    def draw(self, cpu: float) -> float:
        return self.idle_watts + self.watts_per_cpu * cpu


DEFAULT_POWER_PROFILES = (
    PowerProfile("gen4", idle_watts=120.0, watts_per_cpu=2.6),
    PowerProfile("gen5", idle_watts=105.0, watts_per_cpu=2.1),
    PowerProfile("gen6", idle_watts=95.0, watts_per_cpu=1.7),
)


def observe_power(
    profiles: tuple[PowerProfile, ...],
    n_samples: int = 60,
    noise: float = 8.0,
    rng: np.random.Generator | int | None = None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Sample (cpu, watts) telemetry per SKU with measurement noise."""
    if n_samples < 3:
        raise ValueError("n_samples must be >= 3")
    generator = np.random.default_rng(rng)
    out = {}
    for profile in profiles:
        cpu = generator.uniform(0.0, 100.0, size=n_samples)
        watts = profile.draw(cpu) + generator.normal(scale=noise, size=n_samples)
        out[profile.sku] = (cpu, watts)
    return out


class RackPowerCapper:
    """Fit power models, then derive caps under a rack budget."""

    def __init__(self) -> None:
        self.power_models: dict[str, BehaviorModel] = {}

    def fit(
        self, telemetry: dict[str, tuple[np.ndarray, np.ndarray]]
    ) -> "RackPowerCapper":
        if not telemetry:
            raise ValueError("no power telemetry")
        for sku, (cpu, watts) in telemetry.items():
            self.power_models[sku] = BehaviorModel.fit(
                cpu, watts, "cpu_utilization", "watts"
            )
        return self

    def cpu_cap_for_budget(
        self, sku: str, watts_per_machine: float
    ) -> float:
        """Highest CPU utilization keeping one machine under budget."""
        model = self.power_models.get(sku)
        if model is None:
            raise KeyError(f"no power model for SKU {sku!r}")
        if model.slope <= 0:
            raise ValueError(f"non-positive power slope for {sku!r}")
        cap = (watts_per_machine - model.intercept) / model.slope
        return float(np.clip(cap, 0.0, 100.0))

    def rack_caps(
        self,
        rack: dict[str, int],
        rack_limit_watts: float,
        behaviour: MachineBehaviorModels | None = None,
    ) -> dict[str, dict[str, float]]:
        """Per-SKU caps for a rack of ``{sku: machine count}``.

        The budget splits evenly per machine; each SKU gets the CPU cap
        its power line supports, and — when behaviour models are supplied
        — the container cap that CPU level corresponds to.
        """
        n_machines = sum(rack.values())
        if n_machines == 0:
            raise ValueError("rack has no machines")
        if rack_limit_watts <= 0:
            raise ValueError("rack_limit_watts must be positive")
        per_machine = rack_limit_watts / n_machines
        out: dict[str, dict[str, float]] = {}
        for sku in rack:
            cpu_cap = self.cpu_cap_for_budget(sku, per_machine)
            entry = {"cpu_cap": cpu_cap, "watts_per_machine": per_machine}
            if behaviour is not None and sku in behaviour.cpu_models:
                entry["container_cap"] = float(
                    int(behaviour.containers_for_cpu(sku, cpu_cap))
                )
            out[sku] = entry
        return out

    def predicted_rack_draw(
        self, rack: dict[str, int], cpu_by_sku: dict[str, float]
    ) -> float:
        """Predicted total watts for a rack at given per-SKU CPU levels."""
        total = 0.0
        for sku, count in rack.items():
            model = self.power_models.get(sku)
            if model is None:
                raise KeyError(f"no power model for SKU {sku!r}")
            total += count * float(
                model.predict(np.array([cpu_by_sku.get(sku, 0.0)]))[0]
            )
        return total
