"""Per-SKU linear machine-behaviour models (the paper's Figure 1).

Each SKU gets two interpretable linear fits from fleet telemetry:

- CPU utilization ~ running containers, and
- task execution seconds ~ CPU utilization.

Insight 1 in action: these are plain least-squares lines whose slopes an
on-call engineer can read off, not black boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml import LinearRegression, r2_score
from repro.telemetry import Metric, TelemetryStore


@dataclass
class BehaviorModel:
    """One fitted line y = slope * x + intercept with its fit quality."""

    x_name: str
    y_name: str
    slope: float
    intercept: float
    r2: float
    n_samples: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    @classmethod
    def fit(
        cls, x: np.ndarray, y: np.ndarray, x_name: str, y_name: str
    ) -> "BehaviorModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.size != y.size:
            raise ValueError("x and y must have equal length")
        if x.size < 3:
            raise ValueError("need at least 3 samples to fit a line")
        model = LinearRegression().fit(x, y)
        return cls(
            x_name=x_name,
            y_name=y_name,
            slope=float(model.coef_[0]),
            intercept=float(model.intercept_),
            r2=r2_score(y, model.predict(x)),
            n_samples=int(x.size),
        )


class MachineBehaviorModels:
    """Fit and serve the per-SKU behaviour models from a telemetry store."""

    def __init__(self) -> None:
        self.cpu_models: dict[str, BehaviorModel] = {}
        self.task_models: dict[str, BehaviorModel] = {}

    def fit(self, store: TelemetryStore) -> "MachineBehaviorModels":
        """Fit one (containers -> cpu) and one (cpu -> task time) model
        per SKU dimension value found in the store."""
        skus = store.dimension_values(Metric.CPU_UTILIZATION, "sku")
        if not skus:
            raise ValueError("no machine telemetry with a 'sku' dimension")
        for sku in sorted(skus):
            dims = {"sku": sku}
            _, cpu = store.series(Metric.CPU_UTILIZATION, dimensions=dims)
            _, containers = store.series(
                Metric.RUNNING_CONTAINERS, dimensions=dims
            )
            _, task = store.series(
                Metric.TASK_EXECUTION_SECONDS, dimensions=dims
            )
            n = min(cpu.size, containers.size, task.size)
            if n < 3:
                continue
            self.cpu_models[sku] = BehaviorModel.fit(
                containers[:n], cpu[:n], "running_containers", "cpu_utilization"
            )
            self.task_models[sku] = BehaviorModel.fit(
                cpu[:n], task[:n], "cpu_utilization", "task_execution_seconds"
            )
        if not self.cpu_models:
            raise ValueError("not enough telemetry to fit any SKU model")
        return self

    def skus(self) -> list[str]:
        return sorted(self.cpu_models)

    def predict_cpu(self, sku: str, containers: float) -> float:
        model = self.cpu_models.get(sku)
        if model is None:
            raise KeyError(f"no CPU model for SKU {sku!r}")
        return float(np.clip(model.predict(np.array([containers]))[0], 0, 100))

    def predict_task_seconds(self, sku: str, cpu: float) -> float:
        model = self.task_models.get(sku)
        if model is None:
            raise KeyError(f"no task-time model for SKU {sku!r}")
        return float(max(0.0, model.predict(np.array([cpu]))[0]))

    def containers_for_cpu(self, sku: str, target_cpu: float) -> float:
        """Invert the CPU model: containers that reach ``target_cpu``."""
        model = self.cpu_models.get(sku)
        if model is None:
            raise KeyError(f"no CPU model for SKU {sku!r}")
        if model.slope <= 0:
            raise ValueError(f"non-positive slope for SKU {sku!r}")
        return max(0.0, (target_cpu - model.intercept) / model.slope)
