"""The workload balancer: tune per-SKU container caps to equalize CPU.

Given the fitted behaviour models, choose each SKU's ``max_containers``
so that a fully loaded fleet lands at a common target CPU utilization.
The static baseline — one cap for every hardware generation — overloads
the weak SKUs and strands the strong ones; the model-derived caps remove
that imbalance (experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kea.models import MachineBehaviorModels
from repro.infra.scheduler import ContainerScheduler, SkuFleetConfig
from repro.workloads.machines import MachineSku


@dataclass
class BalanceResult:
    """Recommended caps plus the model's predicted outcome."""

    caps: dict[str, int]
    target_cpu: float
    predicted_cpu: dict[str, float]


class WorkloadBalancer:
    """Derive per-SKU caps from behaviour models."""

    def __init__(self, models: MachineBehaviorModels) -> None:
        self.models = models

    def recommend_caps(self, target_cpu: float = 75.0) -> BalanceResult:
        """Caps such that a full machine of each SKU sits at ``target_cpu``."""
        if not 0.0 < target_cpu <= 100.0:
            raise ValueError("target_cpu must be in (0, 100]")
        caps: dict[str, int] = {}
        predicted: dict[str, float] = {}
        for sku in self.models.skus():
            cap = int(round(self.models.containers_for_cpu(sku, target_cpu)))
            cap = max(1, cap)
            caps[sku] = cap
            predicted[sku] = self.models.predict_cpu(sku, cap)
        return BalanceResult(
            caps=caps, target_cpu=target_cpu, predicted_cpu=predicted
        )

    def build_fleet(
        self,
        skus: dict[str, MachineSku],
        n_machines_per_sku: int,
        result: BalanceResult,
    ) -> list[SkuFleetConfig]:
        """Fleet configuration applying the recommended caps."""
        return [
            SkuFleetConfig(
                sku=skus[name],
                n_machines=n_machines_per_sku,
                max_containers=result.caps[name],
            )
            for name in sorted(result.caps)
            if name in skus
        ]

    @staticmethod
    def evaluate(
        fleet: list[SkuFleetConfig],
        demands: list[int],
        rng: int | None = 0,
    ) -> dict[str, float]:
        """Run a demand sweep and summarize balance quality."""
        scheduler = ContainerScheduler(fleet, rng=rng)
        reports = scheduler.sweep(demands)
        return {
            "mean_cpu": float(np.mean([r.mean_cpu for r in reports])),
            "mean_imbalance": float(
                np.mean([r.cpu_imbalance for r in reports])
            ),
            "overload_fraction": float(
                np.mean([r.overload_fraction() for r in reports])
            ),
            "queued_fraction": float(
                np.mean(
                    [r.queued / max(r.placed + r.queued, 1) for r in reports]
                )
            ),
        }
