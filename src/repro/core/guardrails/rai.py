"""Cost caps, regression gates, and per-segment fairness checks.

Three RAI mechanisms from Direction 4, each wrapping an autonomous
decision rather than replacing it — the decision still comes from the
service; the guardrail can veto it, with a recorded reason:

- :class:`CostGuardrail` — "protect customers from expensive solutions":
  an autonomous recommendation may not increase a customer's spend by
  more than a bounded factor without explicit consent.
- :class:`RegressionGuardrail` — "and from performance regressions": an
  autonomous change ships only when its measured/predicted metric does
  not regress past tolerance; vetoes are audited.
- :func:`fairness_report` — "serve all customers fairly": per-segment
  outcome parity; flags segments whose outcomes deviate from the
  population beyond a disparity bound (the marginalization check).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np


@dataclass
class GuardedDecision:
    """The guardrail's verdict on one autonomous decision."""

    approved: bool
    value: float
    baseline: float
    reason: str = ""


@dataclass
class CostGuardrail:
    """Veto decisions that raise cost beyond ``max_increase_factor``."""

    max_increase_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.max_increase_factor < 1.0:
            raise ValueError("max_increase_factor must be >= 1.0")

    def review(self, proposed_cost: float, current_cost: float) -> GuardedDecision:
        if proposed_cost < 0 or current_cost < 0:
            raise ValueError("costs must be non-negative")
        limit = self.max_increase_factor * current_cost
        if current_cost == 0.0:
            approved = proposed_cost == 0.0
            reason = "" if approved else "no spend baseline; cannot justify cost"
        elif proposed_cost <= limit:
            approved, reason = True, ""
        else:
            approved = False
            reason = (
                f"proposed cost {proposed_cost:.2f} exceeds "
                f"{self.max_increase_factor:.1f}x current {current_cost:.2f}"
            )
        return GuardedDecision(
            approved=approved,
            value=proposed_cost,
            baseline=current_cost,
            reason=reason,
        )


@dataclass
class RegressionGuardrail:
    """Veto changes whose metric regresses past tolerance; keep an audit log.

    Metrics are error-style (lower is better).  ``tolerance`` is the
    allowed relative regression — 0.05 lets a change ship with up to a 5%
    worse metric (e.g. to buy a large cost saving elsewhere).
    """

    tolerance: float = 0.05
    audit_log: list[GuardedDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def review(self, candidate_metric: float, baseline_metric: float) -> GuardedDecision:
        limit = baseline_metric * (1.0 + self.tolerance)
        approved = candidate_metric <= limit
        decision = GuardedDecision(
            approved=approved,
            value=candidate_metric,
            baseline=baseline_metric,
            reason=""
            if approved
            else (
                f"candidate metric {candidate_metric:.4f} regresses past "
                f"{self.tolerance:.0%} of baseline {baseline_metric:.4f}"
            ),
        )
        self.audit_log.append(decision)
        return decision

    @property
    def veto_fraction(self) -> float:
        if not self.audit_log:
            return 0.0
        return sum(not d.approved for d in self.audit_log) / len(self.audit_log)


@dataclass
class FairnessReport:
    """Per-segment outcome parity for one autonomous decision stream."""

    metric_name: str
    population_mean: float
    segment_means: dict[Hashable, float]
    disparity_bound: float
    flagged_segments: list[Hashable]

    @property
    def is_fair(self) -> bool:
        return not self.flagged_segments

    def disparity(self, segment: Hashable) -> float:
        """Relative deviation of a segment's mean outcome from population."""
        if self.population_mean == 0:
            return 0.0
        return abs(self.segment_means[segment] / self.population_mean - 1.0)


def fairness_report(
    segments: list[Hashable],
    outcomes: list[float],
    metric_name: str = "outcome",
    disparity_bound: float = 0.25,
    min_segment_size: int = 5,
) -> FairnessReport:
    """Check that no segment's mean outcome deviates beyond the bound.

    ``outcomes`` are per-decision quantities where parity matters (e.g.
    recommendation overspend ratio, cold-start rate).  Segments smaller
    than ``min_segment_size`` are not flagged (insufficient evidence),
    but still reported.
    """
    if len(segments) != len(outcomes):
        raise ValueError("segments and outcomes must align")
    if not outcomes:
        raise ValueError("no outcomes to audit")
    if disparity_bound <= 0:
        raise ValueError("disparity_bound must be positive")
    grouped: dict[Hashable, list[float]] = defaultdict(list)
    for segment, outcome in zip(segments, outcomes):
        grouped[segment].append(float(outcome))
    population_mean = float(np.mean(outcomes))
    segment_means = {s: float(np.mean(v)) for s, v in grouped.items()}
    flagged = []
    for segment, mean in segment_means.items():
        if len(grouped[segment]) < min_segment_size:
            continue
        if population_mean == 0:
            continue
        if abs(mean / population_mean - 1.0) > disparity_bound:
            flagged.append(segment)
    return FairnessReport(
        metric_name=metric_name,
        population_mean=population_mean,
        segment_means=segment_means,
        disparity_bound=disparity_bound,
        flagged_segments=sorted(flagged, key=repr),
    )
