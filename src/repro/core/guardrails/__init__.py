"""Responsible AI guardrails (Direction 4).

"We introduce guardrails to protect customers from expensive solutions
and from performance regressions, and we regularly check that our
ML-driven decisions serve all customers fairly.  We have a
responsibility to ensure that customers, big or small, do not get
marginalized from autonomous decisions."
"""

from repro.core.guardrails.rai import (
    CostGuardrail,
    FairnessReport,
    GuardedDecision,
    RegressionGuardrail,
    fairness_report,
)

__all__ = [
    "CostGuardrail",
    "RegressionGuardrail",
    "GuardedDecision",
    "FairnessReport",
    "fairness_report",
]
