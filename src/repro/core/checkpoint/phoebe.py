"""Stage predictors and checkpoint-cut selection.

The optimizer never sees ground truth: it works from a stage graph sized
by the engine's *estimated* statistics, corrected by learned per-operator
models trained on past runs (the Phoebe predictors).  Selection is a
budgeted greedy maximization of expected restart savings — the classic
>= (1 - 1/e) approximation for this submodular objective, which is what
the paper's LP rounds to in practice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.engine.stages import Stage, StageGraph
from repro.ml import RidgeRegression


def _stage_features(stage: Stage) -> np.ndarray:
    # The analytical estimate is itself a feature: the models learn a
    # correction on top of it rather than the duration from scratch,
    # which keeps them at least as good as the estimate they refine.
    return np.array(
        [
            np.log1p(stage.duration()),
            np.log1p(stage.work),
            np.log1p(stage.output_rows),
            np.log1p(stage.output_bytes),
            float(stage.n_tasks),
        ]
    )


class StagePredictor:
    """Per-operator ridge models: estimated stage -> actual duration/bytes.

    "we trained models to estimate the execution time, output size, and
    start/end time of each stage" — start/end times follow from per-stage
    durations plus DAG dependencies, which :class:`CheckpointOptimizer`
    recomputes by scheduling.
    """

    def __init__(self, min_observations: int = 5) -> None:
        if min_observations < 3:
            raise ValueError("min_observations must be >= 3")
        self.min_observations = min_observations
        self._duration_models: dict[str, RidgeRegression] = {}
        self._bytes_models: dict[str, RidgeRegression] = {}
        self._trained = False

    def fit(
        self,
        observations: list[tuple[Stage, float, float]],
    ) -> "StagePredictor":
        """``observations``: (estimated stage, actual seconds, actual bytes)."""
        if not observations:
            raise ValueError("no observations")
        by_operator: dict[str, list[tuple[Stage, float, float]]] = defaultdict(list)
        for stage, seconds, nbytes in observations:
            if seconds <= 0 or nbytes < 0:
                raise ValueError("invalid observation values")
            by_operator[stage.operator].append((stage, seconds, nbytes))
        for operator, group in by_operator.items():
            if len(group) < self.min_observations:
                continue
            x = np.vstack([_stage_features(s) for s, _, _ in group])
            dur = np.log1p(np.array([d for _, d, _ in group]))
            byt = np.log1p(np.array([b for _, _, b in group]))
            self._duration_models[operator] = RidgeRegression(alpha=1e-2).fit(x, dur)
            self._bytes_models[operator] = RidgeRegression(alpha=1e-2).fit(x, byt)
        self._trained = True
        return self

    def predict_duration(self, stage: Stage) -> float:
        model = self._duration_models.get(stage.operator)
        if model is None:
            return stage.duration()  # fall back to the analytical estimate
        x = _stage_features(stage).reshape(1, -1)
        return float(max(0.01, np.expm1(np.clip(model.predict(x)[0], 0, 30))))

    def predict_bytes(self, stage: Stage) -> float:
        model = self._bytes_models.get(stage.operator)
        if model is None:
            return stage.output_bytes
        x = _stage_features(stage).reshape(1, -1)
        return float(max(0.0, np.expm1(np.clip(model.predict(x)[0], 0, 60))))

    @property
    def operators_covered(self) -> set[str]:
        return set(self._duration_models)


@dataclass
class CheckpointPlan:
    """Selected cut plus the predictions it was based on."""

    checkpoints: frozenset[int]
    predicted_restart_seconds: float
    predicted_baseline_restart_seconds: float
    checkpointed_bytes: float

    @property
    def predicted_restart_saving(self) -> float:
        base = self.predicted_baseline_restart_seconds
        if base <= 0:
            return 0.0
        return 1.0 - self.predicted_restart_seconds / base


class CheckpointOptimizer:
    """Budgeted greedy selection of checkpoint stages."""

    def __init__(
        self,
        predictor: StagePredictor | None = None,
        budget_bytes: float = float("inf"),
        budget_fraction: float | None = 0.5,
        failure_grid: int = 8,
    ) -> None:
        if failure_grid < 1:
            raise ValueError("failure_grid must be >= 1")
        if budget_fraction is not None and not 0.0 < budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        self.predictor = predictor
        self.budget_bytes = budget_bytes
        self.budget_fraction = budget_fraction
        self.failure_grid = failure_grid

    # -- selection --------------------------------------------------------------
    def select(self, graph: StageGraph) -> CheckpointPlan:
        """Choose the cut for ``graph`` (sized by *estimated* statistics).

        Two greedy phases mirror Phoebe's twin objectives:

        1. *Restart protection* — stages maximizing expected restart
           saving per checkpointed byte.
        2. *Hotspot relief* — leftover budget goes to the outputs that
           would otherwise sit longest in local temp storage (big early
           outputs of long jobs), freeing hotspot machines.
        """
        durations = np.array(
            [self._duration(s) for s in graph.stages]
        )
        nbytes = np.array([self._bytes(s) for s in graph.stages])
        budget = self.budget_bytes
        if self.budget_fraction is not None:
            budget = min(budget, self.budget_fraction * float(nbytes[:-1].sum()))

        chosen, current, baseline, spent = self._restart_phase(
            graph, durations, nbytes, budget
        )
        spent = self._temp_relief_phase(
            graph, durations, nbytes, budget, chosen, spent
        )
        return CheckpointPlan(
            checkpoints=frozenset(chosen),
            predicted_restart_seconds=current,
            predicted_baseline_restart_seconds=baseline,
            checkpointed_bytes=spent,
        )

    def _restart_phase(
        self,
        graph: StageGraph,
        durations: np.ndarray,
        nbytes: np.ndarray,
        budget: float,
    ) -> tuple[set[int], float, float, float]:
        """Accelerated (lazy) greedy on restart-saving per byte.

        Expected restart is a monotone non-increasing set function of the
        checkpoint set, so stale upper bounds from earlier rounds remain
        valid: re-evaluate only the heap's current best (classic lazy
        greedy), which cuts evaluations from O(n^2) to nearly O(n).
        """
        import heapq

        chosen: set[int] = set()
        spent = 0.0
        schedule = self._schedule(graph, durations)
        baseline = self._expected_restart(
            graph, durations, frozenset(), schedule
        )
        current = baseline
        heap: list[tuple[float, int, int]] = []  # (-gain/byte, stage, round)
        restart_cache: dict[int, float] = {}
        for stage_id in range(len(graph) - 1):  # never checkpoint the sink
            restart = self._expected_restart(
                graph, durations, frozenset({stage_id}), schedule
            )
            gain = (current - restart) / max(nbytes[stage_id], 1.0)
            if gain > 0:
                heapq.heappush(heap, (-gain, stage_id, 0))
                restart_cache[stage_id] = restart
        round_no = 0
        while heap:
            neg_gain, stage_id, evaluated_round = heapq.heappop(heap)
            if spent + nbytes[stage_id] > budget:
                continue
            if evaluated_round != round_no:
                restart = self._expected_restart(
                    graph, durations, frozenset(chosen | {stage_id}), schedule
                )
                gain = (current - restart) / max(nbytes[stage_id], 1.0)
                if gain <= 0:
                    continue
                restart_cache[stage_id] = restart
                heapq.heappush(heap, (-gain, stage_id, round_no))
                continue
            if -neg_gain <= 0:
                break
            chosen.add(stage_id)
            spent += nbytes[stage_id]
            current = restart_cache[stage_id]
            round_no += 1
        return chosen, current, baseline, spent

    def _temp_relief_phase(
        self,
        graph: StageGraph,
        durations: np.ndarray,
        nbytes: np.ndarray,
        budget: float,
        chosen: set[int],
        spent: float,
    ) -> float:
        """Spend leftover budget on long-resident outputs (hotspot relief).

        An un-checkpointed output sits in local temp from its stage's end
        until the job ends; checkpointing releases it after the durable
        write.  Greedy by predicted byte-seconds freed, respecting the
        byte budget.
        """
        finish = self._schedule(graph, durations)
        job_end = float(finish[graph.sink.stage_id])
        from repro.engine.executor import CHECKPOINT_WRITE_RATE

        scored = []
        for stage in graph.stages[:-1]:
            sid = stage.stage_id
            if sid in chosen:
                continue
            write_time = nbytes[sid] / (CHECKPOINT_WRITE_RATE * stage.n_tasks)
            resident_saved = job_end - finish[sid] - write_time
            if resident_saved <= 0:
                continue
            scored.append((nbytes[sid] * resident_saved, sid))
        for _, sid in sorted(scored, reverse=True):
            if spent + nbytes[sid] > budget:
                continue
            chosen.add(sid)
            spent += nbytes[sid]
        return spent

    # -- prediction helpers --------------------------------------------------------------
    def _duration(self, stage: Stage) -> float:
        if self.predictor is None:
            return stage.duration()
        return self.predictor.predict_duration(stage)

    def _bytes(self, stage: Stage) -> float:
        if self.predictor is None:
            return stage.output_bytes
        return self.predictor.predict_bytes(stage)

    # -- predicted schedule & restart --------------------------------------------------------------
    def _schedule(
        self, graph: StageGraph, durations: np.ndarray
    ) -> np.ndarray:
        finish = np.zeros(len(graph))
        for stage in graph.topological_order():
            ready = max(
                (finish[d] for d in stage.depends_on), default=0.0
            )
            finish[stage.stage_id] = ready + durations[stage.stage_id]
        return finish

    def _expected_restart(
        self,
        graph: StageGraph,
        durations: np.ndarray,
        checkpoints: frozenset[int],
        finish: np.ndarray | None = None,
    ) -> float:
        """Mean predicted restart time over a uniform failure-time grid."""
        if finish is None:
            finish = self._schedule(graph, durations)
        total = float(finish[graph.sink.stage_id])
        grid = np.linspace(
            total / (self.failure_grid + 1),
            total * self.failure_grid / (self.failure_grid + 1),
            self.failure_grid,
        )
        restarts = [
            self._restart_at(graph, durations, finish, checkpoints, t)
            for t in grid
        ]
        return float(np.mean(restarts))

    def _restart_at(
        self,
        graph: StageGraph,
        durations: np.ndarray,
        finish: np.ndarray,
        checkpoints: frozenset[int],
        failure_time: float,
    ) -> float:
        finished = {
            s.stage_id for s in graph.stages if finish[s.stage_id] <= failure_time
        }
        available = finished & checkpoints
        rerun: set[int] = set()
        stack = [graph.sink.stage_id]
        while stack:
            stage_id = stack.pop()
            if stage_id in available or stage_id in rerun:
                continue
            rerun.add(stage_id)
            stack.extend(graph.stages[stage_id].depends_on)
        new_finish: dict[int, float] = {}
        for stage in graph.topological_order():
            if stage.stage_id not in rerun:
                new_finish[stage.stage_id] = 0.0
                continue
            ready = max(
                (new_finish[d] for d in stage.depends_on), default=0.0
            )
            new_finish[stage.stage_id] = ready + durations[stage.stage_id]
        return new_finish[graph.sink.stage_id]
