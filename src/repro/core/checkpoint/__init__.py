"""Phoebe: the learning-based checkpoint optimizer [52].

"We trained models to estimate the execution time, output size, and
start/end time of each stage taking into account of the inter-stage
dependency, then applied a linear programming algorithm to introduce
checkpoint 'cut(s)' of the query DAG.  With this checkpoint optimizer,
we were able to free the temporary storage on hotspots by more than 70%
and restart failed jobs 68% faster on average with minimal impact on
Cosmos performance."
"""

from repro.core.checkpoint.phoebe import (
    CheckpointOptimizer,
    CheckpointPlan,
    StagePredictor,
)

__all__ = ["StagePredictor", "CheckpointOptimizer", "CheckpointPlan"]
