"""AlgorithmStore: function-level reuse (Direction 1).

"Our proposal is to create a AlgorithmStore (analogous to a GitHub for
models), which is a project gallery with predefined algorithm templates.
The previously developed algorithm can be discovered and adapted to
address new scenarios quickly."
"""

from repro.core.algorithmstore.store import (
    AlgorithmEntry,
    AlgorithmStore,
    default_store,
)

__all__ = ["AlgorithmStore", "AlgorithmEntry", "default_store"]
