"""A searchable catalog of reusable algorithm templates.

The paper's requirements for the catalog map to features here:

1. *easy search interface* — keyword/tag scoring over name, description,
   and tags (:meth:`AlgorithmStore.search`);
2. *good API design for extensibility* — entries are factories taking
   keyword overrides, so an algorithm is adapted (not copied) per
   scenario;
3. *clean modularized functions* — entries wrap the public repro APIs;
4. *significant coverage of common use cases* — :func:`default_store`
   registers the algorithm families every service in this repo uses;
5. *code quality / robust reuse* — instantiation validates overrides
   against the factory signature;
6. *better documentation* — each entry carries its docstring and usage
   example, shown by :meth:`AlgorithmStore.describe`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class AlgorithmEntry:
    """One reusable algorithm template."""

    name: str
    category: str
    description: str
    factory: Callable[..., Any]
    tags: tuple[str, ...] = ()
    example: str = ""

    def instantiate(self, **overrides: Any) -> Any:
        """Build the algorithm, validating overrides against the factory."""
        signature = inspect.signature(self.factory)
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if not accepts_kwargs:
            unknown = set(overrides) - set(signature.parameters)
            if unknown:
                raise TypeError(
                    f"{self.name}: unknown parameters {sorted(unknown)}; "
                    f"accepted: {sorted(signature.parameters)}"
                )
        return self.factory(**overrides)


class AlgorithmStore:
    """Register, search, and instantiate algorithm templates."""

    def __init__(self) -> None:
        self._entries: dict[str, AlgorithmEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, entry: AlgorithmEntry) -> None:
        if entry.name in self._entries:
            raise ValueError(f"algorithm {entry.name!r} already registered")
        self._entries[entry.name] = entry

    def get(self, name: str) -> AlgorithmEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"no algorithm named {name!r}") from None

    def categories(self) -> list[str]:
        return sorted({e.category for e in self._entries.values()})

    def by_category(self, category: str) -> list[AlgorithmEntry]:
        return [
            e for e in self._entries.values() if e.category == category
        ]

    def search(self, query: str, limit: int = 10) -> list[AlgorithmEntry]:
        """Rank entries by keyword overlap with name/tags/description."""
        terms = [t for t in query.lower().split() if t]
        if not terms:
            raise ValueError("empty query")
        scored: list[tuple[float, AlgorithmEntry]] = []
        for entry in self._entries.values():
            haystacks = (
                (entry.name.lower(), 3.0),
                (" ".join(entry.tags).lower(), 2.0),
                (entry.category.lower(), 1.5),
                (entry.description.lower(), 1.0),
            )
            score = sum(
                weight
                for term in terms
                for text, weight in haystacks
                if term in text
            )
            if score > 0:
                scored.append((score, entry))
        scored.sort(key=lambda se: (-se[0], se[1].name))
        return [entry for _, entry in scored[:limit]]

    def describe(self, name: str) -> str:
        entry = self.get(name)
        lines = [
            f"{entry.name}  [{entry.category}]",
            entry.description,
            f"tags: {', '.join(entry.tags) or '-'}",
        ]
        if entry.example:
            lines.append(f"example: {entry.example}")
        return "\n".join(lines)


def default_store() -> AlgorithmStore:
    """The catalog covering this repo's common ML-for-Systems use cases."""
    from repro.ml import (
        GradientBoostingRegressor,
        HoltWinters,
        KMeans,
        LinUCB,
        LinearRegression,
        PageHinkley,
        QuantileRegression,
        RandomForestRegressor,
        RidgeRegression,
        SeasonalNaiveForecaster,
        ThompsonSamplingBandit,
        UCB1Bandit,
        WindowedKSDetector,
    )

    store = AlgorithmStore()
    entries = [
        AlgorithmEntry(
            "linear-regression", "regression",
            "Ordinary least squares; the Insight-1 workhorse for machine "
            "behaviour models and resource predictors.",
            LinearRegression, ("linear", "interpretable", "kea"),
            "LinearRegression().fit(x, y).predict(x)",
        ),
        AlgorithmEntry(
            "ridge-regression", "regression",
            "L2-regularized least squares; robust to collinear telemetry "
            "features.",
            RidgeRegression, ("linear", "regularized", "micromodel"),
            "RidgeRegression(alpha=1e-2).fit(x, y)",
        ),
        AlgorithmEntry(
            "quantile-regression", "regression",
            "Pinball-loss linear quantiles for conservative estimates "
            "(e.g. stage-time upper bounds).",
            QuantileRegression, ("linear", "quantile", "phoebe"),
            "QuantileRegression(quantile=0.9).fit(x, y)",
        ),
        AlgorithmEntry(
            "random-forest", "regression",
            "Bagged trees with uncertainty via tree spread; the MLOS "
            "surrogate.",
            RandomForestRegressor, ("ensemble", "uncertainty", "mlos"),
            "RandomForestRegressor(n_trees=25).fit(x, y).predict_std(x)",
        ),
        AlgorithmEntry(
            "gradient-boosting", "regression",
            "Boosted shallow trees; the global model in learned cost and "
            "auto-tuning services.",
            GradientBoostingRegressor, ("ensemble", "boosting", "costmodel"),
            "GradientBoostingRegressor(n_trees=60).fit(x, y)",
        ),
        AlgorithmEntry(
            "kmeans-segmentation", "clustering",
            "k-means++ customer/application segmentation (Insight 2 "
            "stratification).",
            KMeans, ("segmentation", "doppler", "granularity"),
            "KMeans(n_clusters=5).fit_predict(features)",
        ),
        AlgorithmEntry(
            "seasonal-naive-forecast", "forecasting",
            "Previous-period repetition; Seagull's 96%-accurate heuristic.",
            SeasonalNaiveForecaster, ("timeseries", "seagull", "heuristic"),
            "SeasonalNaiveForecaster(period=24).fit(series).forecast(24)",
        ),
        AlgorithmEntry(
            "holt-winters", "forecasting",
            "Triple exponential smoothing over OS performance counter data "
            "and tenant load.",
            HoltWinters, ("timeseries", "seasonal", "seagull", "moneyball"),
            "HoltWinters(period=168).fit(series).forecast(24)",
        ),
        AlgorithmEntry(
            "ucb1-bandit", "decision",
            "Upper-confidence-bound arm selection for untyped A/B choices.",
            UCB1Bandit, ("bandit", "exploration"),
            "UCB1Bandit(n_arms=4).select()",
        ),
        AlgorithmEntry(
            "thompson-sampling", "decision",
            "Beta-Bernoulli posterior sampling for binary-reward choices.",
            ThompsonSamplingBandit, ("bandit", "bayesian"),
            "ThompsonSamplingBandit(n_arms=4).select()",
        ),
        AlgorithmEntry(
            "linucb", "decision",
            "Contextual linear UCB; powers optimizer rule-hint steering.",
            LinUCB, ("bandit", "contextual", "steering"),
            "LinUCB(n_arms=11, n_features=6).select(context)",
        ),
        AlgorithmEntry(
            "page-hinkley", "monitoring",
            "Sequential mean-shift detection for model error streams "
            "(Insight 3 monitoring).",
            PageHinkley, ("drift", "monitoring", "feedback"),
            "PageHinkley(threshold=3.0).update(error)",
        ),
        AlgorithmEntry(
            "ks-drift-detector", "monitoring",
            "Windowed two-sample KS test for distributional drift.",
            WindowedKSDetector, ("drift", "distribution", "feedback"),
            "WindowedKSDetector(window=50).update(value)",
        ),
    ]
    for entry in entries:
        store.register(entry)
    return store
