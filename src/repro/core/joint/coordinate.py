"""Sequential vs joint (coordinate-descent) optimization over a grid.

The paper's point is organizational as much as algorithmic: each team
tunes its own knob against the shared objective, in isolation, exactly
once (*sequential*).  Coordinate descent models the proposed remedy —
the same per-component tuning, but iterated with synchronized
deployments until no component wants to move (*joint*).  Both use the
same objective and the same grids, so any gap is attributable to
iteration alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

Config = dict[str, float]


@dataclass
class ParameterGrid:
    """Candidate values per knob; first value is the team's default."""

    grids: dict[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        if not self.grids:
            raise ValueError("need at least one parameter")
        for name, values in self.grids.items():
            if len(values) < 2:
                raise ValueError(f"{name}: need at least 2 candidate values")

    def defaults(self) -> Config:
        return {name: values[0] for name, values in self.grids.items()}

    @property
    def names(self) -> list[str]:
        return list(self.grids)


@dataclass
class JointResult:
    """Outcome of one optimization schedule."""

    config: Config
    objective: float
    evaluations: int
    rounds: int
    trajectory: list[tuple[Config, float]] = field(default_factory=list)


def optimize_one(
    objective: Callable[[Config], float],
    grid: ParameterGrid,
    config: Config,
    name: str,
    cache: dict,
) -> tuple[Config, float, int]:
    """Best value for ``name`` with every other knob frozen.

    The shared building block of both schedules below — and of the
    fabric's :class:`~repro.fabric.fleet.JointTuningDriver`, which runs
    one coordinate-descent round per simulated day.  Returns the updated
    config, its score, and how many fresh objective evaluations were
    spent (cache hits are free).
    """
    evaluations = 0
    best_value = config[name]
    best_score = None
    for value in grid.grids[name]:
        candidate = dict(config)
        candidate[name] = value
        key = tuple(sorted(candidate.items()))
        if key not in cache:
            cache[key] = float(objective(candidate))
            evaluations += 1
        score = cache[key]
        if best_score is None or score < best_score:
            best_score = score
            best_value = value
    out = dict(config)
    out[name] = best_value
    return out, best_score, evaluations


def sequential_optimize(
    objective: Callable[[Config], float],
    grid: ParameterGrid,
    order: list[str] | None = None,
) -> JointResult:
    """One pass: each component optimized once, in team order."""
    order = order or grid.names
    if set(order) != set(grid.names):
        raise ValueError("order must cover exactly the grid parameters")
    config = grid.defaults()
    cache: dict = {}
    evaluations = 0
    trajectory = []
    score = float(objective(config))
    cache[tuple(sorted(config.items()))] = score
    evaluations += 1
    for name in order:
        config, score, used = optimize_one(objective, grid, config, name, cache)
        evaluations += used
        trajectory.append((dict(config), score))
    return JointResult(
        config=config,
        objective=score,
        evaluations=evaluations,
        rounds=1,
        trajectory=trajectory,
    )


def joint_optimize(
    objective: Callable[[Config], float],
    grid: ParameterGrid,
    max_rounds: int = 10,
) -> JointResult:
    """Coordinate descent to a fixpoint (or ``max_rounds``)."""
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    config = grid.defaults()
    cache: dict = {}
    evaluations = 1
    score = float(objective(config))
    cache[tuple(sorted(config.items()))] = score
    trajectory = []
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        before = dict(config)
        for name in grid.names:
            config, score, used = optimize_one(
                objective, grid, config, name, cache
            )
            evaluations += used
            trajectory.append((dict(config), score))
        if config == before:
            break
    return JointResult(
        config=config,
        objective=score,
        evaluations=evaluations,
        rounds=rounds,
        trajectory=trajectory,
    )
