"""A concretely coupled pair of knobs: wave sizing x checkpoint budget.

Two "teams" own two knobs of the same execution pipeline:

- the *execution* team owns ``max_stage_seconds`` (wave granularity):
  coarse waves minimize per-stage scheduling overhead, fine waves create
  checkpointable cut points;
- the *reliability* team owns ``budget_fraction`` (checkpoint bytes):
  more checkpointing means cheaper restarts and cooler hotspots, but
  more write overhead.

The combined objective (runtime + expected restart exposure + hotspot
pressure) is non-separable: the best checkpoint budget depends on the
wave granularity and vice versa, which is exactly the Direction-3
argument for synchronized joint tuning.

:class:`CheckpointWaveObjective` is the objective itself — a picklable
callable (no captured closures), so the fabric can checkpoint a joint
tuning session mid-run and process pools can ship it to workers.
:func:`checkpoint_wave_objective` keeps the original
build-from-a-world-fixture entry point and now returns an instance of
that class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import CheckpointOptimizer
from repro.engine import ClusterExecutor, Expression, compile_stages

Config = dict[str, float]

#: Objective weights: seconds, seconds, and GB-normalized temp pressure.
RESTART_WEIGHT = 0.5
TEMP_WEIGHT_PER_GB = 0.5


@dataclass
class CheckpointWaveObjective:
    """Mean combined cost of running ``plans`` at one knob setting.

    Deterministic given its fields: the failure-time draw restarts from
    ``rng_seed`` on every call, and the executor is seeded per plan.
    Holds only plans and cost models (all picklable), so instances
    survive fabric checkpoints and process-pool boundaries.
    """

    plans: list[Expression]
    est_cost: object
    true_cost: object
    rng_seed: int = 7
    n_machines: int = 16
    max_stage_bytes: float = 128e6
    calls: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.plans:
            raise ValueError("no plans to optimize over")

    def __call__(self, config: Config) -> float:
        self.calls += 1
        max_stage_seconds = float(config["max_stage_seconds"])
        budget_fraction = float(np.clip(config["budget_fraction"], 0.01, 1.0))
        chooser = CheckpointOptimizer(budget_fraction=budget_fraction)
        rng = np.random.default_rng(self.rng_seed)
        total = 0.0
        for plan in self.plans:
            graph = compile_stages(
                plan,
                self.est_cost,
                truth=self.true_cost,
                max_stage_seconds=max_stage_seconds,
                max_stage_bytes=self.max_stage_bytes,
            )
            checkpoints = chooser.select(graph).checkpoints
            executor = ClusterExecutor(n_machines=self.n_machines, rng=1)
            report = executor.run(graph, checkpoints=checkpoints)
            failure_time = report.runtime * rng.uniform(0.3, 0.95)
            restart = ClusterExecutor(rng=1).restart_work_seconds(
                graph, report, failure_time
            )
            total += (
                report.runtime
                + RESTART_WEIGHT * restart
                + TEMP_WEIGHT_PER_GB * report.peak_temp_bytes / 1e9
            )
        return total / len(self.plans)


def checkpoint_wave_objective(
    world: dict,
    n_jobs: int = 8,
    rng_seed: int = 7,
) -> CheckpointWaveObjective:
    """Build the shared objective over ``n_jobs`` representative jobs.

    ``world`` follows the shared fixture convention: workload, est_cost,
    true_cost, optimizer.  Returns a :class:`CheckpointWaveObjective`
    mapping {max_stage_seconds, budget_fraction} to the mean combined
    cost.
    """
    jobs = [j for j in world["workload"].jobs if j.plan.size >= 5][:n_jobs]
    if not jobs:
        raise ValueError("no suitable jobs in the workload")
    plans = [world["optimizer"].optimize(j.plan).plan for j in jobs]
    return CheckpointWaveObjective(
        plans=plans,
        est_cost=world["est_cost"],
        true_cost=world["true_cost"],
        rng_seed=rng_seed,
    )
