"""Joint optimization across components (Direction 3).

"sequentially optimizing each individual component is unlikely to yield
optimal overall performance ... Ongoing efforts continue to jointly
optimize a selection of components and synchronize the deployment of
changes."
"""

from repro.core.joint.coordinate import (
    JointResult,
    ParameterGrid,
    joint_optimize,
    optimize_one,
    sequential_optimize,
)
from repro.core.joint.scenario import (
    CheckpointWaveObjective,
    checkpoint_wave_objective,
)

__all__ = [
    "ParameterGrid",
    "JointResult",
    "sequential_optimize",
    "joint_optimize",
    "optimize_one",
    "CheckpointWaveObjective",
    "checkpoint_wave_objective",
]
