"""Per-template cost micromodels, a global model, and the meta ensemble.

The prediction target is the job's wall-clock runtime.  Three predictors
are combined:

1. *per-template micromodels* — precise but only cover templates with
   history,
2. a *global model* — covers everything, less precise,
3. the *analytical* estimate — the optimizer's estimated cost scaled to
   seconds, available even for a cold start.

The meta ensemble is a linear stacker trained on held-out observations;
it corrects systematic bias in whichever base predictions are available,
which is how coverage reaches 100% without sacrificing the accuracy of
covered templates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.engine import DefaultCostModel, Expression, signatures
from repro.ml import GradientBoostingRegressor, RidgeRegression, mape


def job_cost_features(plan: Expression, cost_model: DefaultCostModel) -> np.ndarray:
    """Observable pre-execution features of a job.

    Everything here is available before running the job: the analytical
    cost estimate, the estimated output rows, and plan shape.
    """
    cost = cost_model.cost(plan)
    return np.array(
        [
            np.log1p(cost.total),
            np.log1p(cost.io),
            np.log1p(cost_model.cardinality.estimate(plan)),
            float(plan.size),
            float(plan.depth),
        ]
    )


@dataclass
class CostObservation:
    """One executed job: features at optimization time, runtime observed."""

    template: str
    features: np.ndarray
    actual_seconds: float

    def __post_init__(self) -> None:
        if self.actual_seconds <= 0:
            raise ValueError("actual_seconds must be positive")


class LearnedCostModel:
    """Micromodels + global model + analytical fallback, meta-combined."""

    #: Feature index of log1p(total analytical cost).
    _ANALYTICAL_FEATURE = 0

    def __init__(
        self,
        min_template_observations: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if min_template_observations < 4:
            raise ValueError("min_template_observations must be >= 4")
        self.min_template_observations = min_template_observations
        self._rng = np.random.default_rng(rng)
        self._micromodels: dict[str, RidgeRegression] = {}
        self._global: GradientBoostingRegressor | None = None
        self._meta: RidgeRegression | None = None
        self._analytical_scale: float = 1.0

    # -- training -------------------------------------------------------------
    def train(self, observations: list[CostObservation]) -> "LearnedCostModel":
        if len(observations) < 8:
            raise ValueError("need at least 8 observations to train")
        by_template: dict[str, list[CostObservation]] = defaultdict(list)
        for obs in observations:
            by_template[obs.template].append(obs)
        # Split: last 30% (chronological order as given) feeds the meta model.
        n_meta = max(2, int(0.3 * len(observations)))
        base_obs = observations[:-n_meta]
        meta_obs = observations[-n_meta:]

        self._fit_analytical_scale(base_obs)
        self._fit_global(base_obs)
        self._fit_micromodels(base_obs)
        self._fit_meta(meta_obs)
        return self

    def _fit_analytical_scale(self, observations: list[CostObservation]) -> None:
        """Least-squares scale from analytical cost units to seconds."""
        analytical = np.expm1(
            np.array([o.features[self._ANALYTICAL_FEATURE] for o in observations])
        )
        actual = np.array([o.actual_seconds for o in observations])
        denom = float(np.dot(analytical, analytical))
        self._analytical_scale = (
            float(np.dot(analytical, actual)) / denom if denom > 0 else 1.0
        )

    def _fit_global(self, observations: list[CostObservation]) -> None:
        x = np.vstack([o.features for o in observations])
        y = np.log1p(np.array([o.actual_seconds for o in observations]))
        self._global = GradientBoostingRegressor(
            n_trees=60, max_depth=3, rng=self._rng
        ).fit(x, y)

    def _fit_micromodels(self, observations: list[CostObservation]) -> None:
        by_template: dict[str, list[CostObservation]] = defaultdict(list)
        for obs in observations:
            by_template[obs.template].append(obs)
        for template, group in by_template.items():
            if len(group) < self.min_template_observations:
                continue
            x = np.vstack([o.features for o in group])
            y = np.log1p(np.array([o.actual_seconds for o in group]))
            self._micromodels[template] = RidgeRegression(alpha=1e-2).fit(x, y)

    def _fit_meta(self, observations: list[CostObservation]) -> None:
        base = np.vstack(
            [self._base_predictions(o.template, o.features) for o in observations]
        )
        y = np.log1p(np.array([o.actual_seconds for o in observations]))
        self._meta = RidgeRegression(alpha=1e-2).fit(np.log1p(base), y)

    # -- prediction -------------------------------------------------------------
    def _base_predictions(self, template: str, features: np.ndarray) -> np.ndarray:
        """[micromodel, global, analytical] seconds (micromodel falls back
        to the global prediction when the template is uncovered, so the
        meta model always sees a dense vector)."""
        analytical = self._analytical_scale * float(
            np.expm1(features[self._ANALYTICAL_FEATURE])
        )
        global_pred = analytical
        if self._global is not None:
            global_pred = float(
                np.expm1(self._global.predict(features.reshape(1, -1))[0])
            )
        micro = self._micromodels.get(template)
        micro_pred = (
            float(np.expm1(micro.predict(features.reshape(1, -1))[0]))
            if micro is not None
            else global_pred
        )
        return np.maximum(
            0.0, np.array([micro_pred, global_pred, analytical])
        )

    def predict(self, template: str, features: np.ndarray) -> float:
        """Predicted runtime in seconds (>= 0.1)."""
        base = self._base_predictions(template, features)
        if self._meta is None:
            return float(max(0.1, base[0]))
        log_pred = self._meta.predict(np.log1p(base).reshape(1, -1))[0]
        return float(max(0.1, np.expm1(np.clip(log_pred, 0.0, 50.0))))

    def predict_plan(
        self, plan: Expression, cost_model: DefaultCostModel
    ) -> float:
        return self.predict(
            signatures(plan).template, job_cost_features(plan, cost_model)
        )

    # -- introspection -------------------------------------------------------------
    @property
    def n_micromodels(self) -> int:
        return len(self._micromodels)

    def covers(self, template: str) -> bool:
        return template in self._micromodels

    def evaluate(
        self, observations: list[CostObservation]
    ) -> dict[str, float]:
        """MAPE of each component and the ensemble on held-out data."""
        actual = np.array([o.actual_seconds for o in observations])
        ensemble = np.array(
            [self.predict(o.template, o.features) for o in observations]
        )
        base = np.vstack(
            [self._base_predictions(o.template, o.features) for o in observations]
        )
        return {
            "ensemble_mape": mape(actual, ensemble),
            "micromodel_mape": mape(actual, np.maximum(base[:, 0], 0.1)),
            "global_mape": mape(actual, np.maximum(base[:, 1], 0.1)),
            "analytical_mape": mape(actual, np.maximum(base[:, 2], 0.1)),
            "micromodel_coverage": float(
                np.mean([self.covers(o.template) for o in observations])
            ),
        }
