"""Learned cost models with a meta ensemble [46].

"We adopt the same micromodel approach for learned cost models and
introduce a meta ensemble model that corrects and combines predictions
from individual models to increase coverage."
"""

from repro.core.costmodel.learned import (
    CostObservation,
    LearnedCostModel,
    job_cost_features,
)

__all__ = ["CostObservation", "LearnedCostModel", "job_cost_features"]
