"""Proactive cluster provisioning for Synapse-Spark-style pools (§4.1).

"proactive cluster provisioning based on expected user cluster creation
demand to reduce wait time for cluster initialization on Azure Synapse
Spark, optimizing both COGS and performance."
"""

from repro.core.poolserver.provisioner import (
    ForecastPoolPolicy,
    compare_policies,
)

__all__ = ["ForecastPoolPolicy", "compare_policies"]
