"""Demand-forecast warm-pool sizing."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pareto import TradeoffPoint
from repro.infra.pool import (
    ClusterPoolSimulator,
    NoPoolPolicy,
    PoolReport,
    StaticPoolPolicy,
)
from repro.workloads.demand import HOURS_PER_DAY, DemandTrace


@dataclass
class ForecastPoolPolicy:
    """Warm-pool target = seasonal forecast plus a safety buffer.

    The forecast is the observed request count at the same hour one week
    (falling back to one day) earlier; ``buffer_sigma`` Poisson standard
    deviations are added so a typical hour rarely exhausts the pool.
    """

    buffer_sigma: float = 1.5

    def target(self, hour: int, recent_counts: np.ndarray) -> int:
        week = 7 * HOURS_PER_DAY
        if hour >= week:
            forecast = recent_counts[hour - week]
        elif hour >= HOURS_PER_DAY:
            forecast = recent_counts[hour - HOURS_PER_DAY]
        elif recent_counts.size:
            forecast = float(recent_counts.mean())
        else:
            forecast = 0.0
        return int(np.ceil(forecast + self.buffer_sigma * np.sqrt(max(forecast, 1.0))))


def compare_policies(
    trace: DemandTrace,
    simulator: ClusterPoolSimulator | None = None,
    static_size: int | None = None,
) -> dict[str, tuple[PoolReport, TradeoffPoint]]:
    """Run no-pool / static / forecast policies over one demand trace.

    The static baseline defaults to the mean hourly demand (a reasonable
    manual configuration).  Each policy yields a (p99-latency, idle-cost)
    trade-off point for the E2 bench.
    """
    simulator = simulator or ClusterPoolSimulator()
    if static_size is None:
        static_size = max(1, int(round(trace.counts_per_hour().mean())))
    lineup = {
        "on_demand": NoPoolPolicy(),
        f"static_{static_size}": StaticPoolPolicy(static_size),
        "forecast": ForecastPoolPolicy(),
    }
    out = {}
    for name, policy in lineup.items():
        report = simulator.run(trace, policy)
        out[name] = (
            report,
            TradeoffPoint(
                qos_penalty=report.percentile(99),
                cost=report.warm_idle_hours,
                label=name,
            ),
        )
    return out
