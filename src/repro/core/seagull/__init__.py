"""Seagull: backup scheduling into low-load windows [40].

"To automate the scheduling of backups for PostgreSQL and MySQL servers,
we used ML models to forecast user load for each specific server.  The
system identifies low load windows with 99% accuracy" — and per Insight
1, "a simple heuristic that predicts the load of a server based on that
of the previous day was already sufficient to generate 96% accuracy".
"""

from repro.core.seagull.scheduler import (
    BackupScheduler,
    ForecastWindowPolicy,
    PreviousDayPolicy,
    SeagullReport,
    SeagullService,
    WindowChoice,
    evaluate_policy,
)

__all__ = [
    "BackupScheduler",
    "WindowChoice",
    "ForecastWindowPolicy",
    "PreviousDayPolicy",
    "SeagullService",
    "SeagullReport",
    "evaluate_policy",
]
