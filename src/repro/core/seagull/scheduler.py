"""Low-load backup-window selection with forecast and heuristic policies.

A policy sees a server's load history and picks the start hour of a
``window_hours``-long backup window for the next day.  Accuracy follows
the paper's framing: the choice is *correct* when the true load inside
the chosen window is within ``tolerance`` of the best achievable window
that day (choosing an equally-quiet window is not an error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.service import AutonomousService, deprecated_alias
from repro.ml import HoltWinters
from repro.workloads.usage import HOURS_PER_DAY, TenantTrace

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent


@dataclass
class WindowChoice:
    """A chosen backup window for one server-day."""

    server_id: str
    day: int
    start_hour: int          # 0-23, start of the window within the day
    predicted_load: float
    actual_load: float
    optimal_load: float

    def is_correct(self, tolerance: float) -> bool:
        """Within ``tolerance`` (absolute load units) of the optimum."""
        return self.actual_load <= self.optimal_load + tolerance

    def to_events(self) -> "list[ObsEvent]":
        from repro.obs.events import ObsEvent, freeze_attributes

        return [
            ObsEvent(
                timestamp=float(self.day * HOURS_PER_DAY + self.start_hour),
                layer="service",
                source="seagull",
                kind="window",
                value=self.actual_load,
                attributes=freeze_attributes(
                    {"server": self.server_id, "start_hour": self.start_hour}
                ),
            )
        ]


class WindowPolicy(Protocol):
    """Forecast tomorrow's hourly load from history (length = 24)."""

    def forecast_day(self, history: np.ndarray) -> np.ndarray:
        ...


@dataclass
class PreviousDayPolicy:
    """Insight 1's heuristic: tomorrow looks exactly like today."""

    def forecast_day(self, history: np.ndarray) -> np.ndarray:
        if history.size < HOURS_PER_DAY:
            raise ValueError("need at least one day of history")
        return history[-HOURS_PER_DAY:]


@dataclass
class PreviousWeekPolicy:
    """Tomorrow looks like the same weekday last week."""

    def forecast_day(self, history: np.ndarray) -> np.ndarray:
        week = 7 * HOURS_PER_DAY
        if history.size < week:
            return PreviousDayPolicy().forecast_day(history)
        return history[-week : -week + HOURS_PER_DAY]


@dataclass
class ForecastWindowPolicy:
    """ML policy: Holt-Winters over the weekly season."""

    period: int = 7 * HOURS_PER_DAY

    def forecast_day(self, history: np.ndarray) -> np.ndarray:
        if history.size < 2 * self.period:
            return PreviousWeekPolicy().forecast_day(history)
        model = HoltWinters(period=self.period).fit(history)
        return np.maximum(0.0, model.forecast(HOURS_PER_DAY))


class BackupScheduler:
    """Pick the quietest window of tomorrow per server."""

    def __init__(self, window_hours: int = 2) -> None:
        if not 1 <= window_hours <= HOURS_PER_DAY:
            raise ValueError("window_hours must be in [1, 24]")
        self.window_hours = window_hours

    def window_loads(self, day_values: np.ndarray) -> np.ndarray:
        """Total load of each candidate window start (wrapping midnight)."""
        if day_values.size != HOURS_PER_DAY:
            raise ValueError("day_values must have exactly 24 entries")
        wrapped = np.concatenate([day_values, day_values[: self.window_hours]])
        return np.array(
            [
                wrapped[start : start + self.window_hours].sum()
                for start in range(HOURS_PER_DAY)
            ]
        )

    def choose(
        self,
        trace: TenantTrace,
        day: int,
        policy: WindowPolicy,
    ) -> WindowChoice:
        """Choose tomorrow's window for one server using ``policy``."""
        start = day * HOURS_PER_DAY
        end = start + HOURS_PER_DAY
        if end > trace.values.size:
            raise ValueError(f"trace too short for day {day}")
        if start == 0:
            raise ValueError("day 0 has no history to forecast from")
        history = trace.values[:start]
        forecast = policy.forecast_day(history)
        predicted_windows = self.window_loads(forecast)
        actual_windows = self.window_loads(trace.values[start:end])
        chosen = int(np.argmin(predicted_windows))
        return WindowChoice(
            server_id=trace.tenant_id,
            day=day,
            start_hour=chosen,
            predicted_load=float(predicted_windows[chosen]),
            actual_load=float(actual_windows[chosen]),
            optimal_load=float(actual_windows.min()),
        )


def evaluate_policy(
    traces: list[TenantTrace],
    policy: WindowPolicy,
    days: range,
    window_hours: int = 2,
    tolerance: float = 0.1,
) -> float:
    """Fraction of server-days where the policy found a low-load window."""
    scheduler = BackupScheduler(window_hours)
    choices = [
        scheduler.choose(trace, day, policy)
        for trace in traces
        for day in days
    ]
    if not choices:
        raise ValueError("no (trace, day) pairs to evaluate")
    return float(np.mean([c.is_correct(tolerance) for c in choices]))


@dataclass
class SeagullReport:
    """Accuracy of the windows recommended so far."""

    choices: list[WindowChoice]
    tolerance: float

    @property
    def accuracy(self) -> float:
        if not self.choices:
            return 0.0
        return float(
            np.mean([c.is_correct(self.tolerance) for c in self.choices])
        )

    def to_events(self) -> "list[ObsEvent]":
        return [event for choice in self.choices for event in choice.to_events()]


class SeagullService(AutonomousService):
    """Backup-window selection behind the AutonomousService API.

    ``observe`` ingests server load traces, ``recommend`` picks
    tomorrow's window for one (server, day) via the configured forecast
    policy, and ``report`` summarizes the accuracy of every window
    recommended so far.
    """

    service_name = "seagull"
    layer = "service"

    def __init__(
        self,
        policy: WindowPolicy | None = None,
        window_hours: int = 2,
        tolerance: float = 0.1,
    ) -> None:
        self.policy = policy or ForecastWindowPolicy()
        self.scheduler = BackupScheduler(window_hours)
        self.tolerance = tolerance
        self._traces: dict[str, TenantTrace] = {}
        self._choices: list[WindowChoice] = []

    def observe(self, trace: TenantTrace) -> TenantTrace:
        """Ingest (or refresh) one server's load trace."""
        self._traces[trace.tenant_id] = trace
        self._emit("observe", server=trace.tenant_id)
        return trace

    def recommend(self, server_id: str, day: int) -> WindowChoice:
        """Pick the backup window for one observed server-day."""
        trace = self._traces.get(server_id)
        if trace is None:
            raise KeyError(f"server {server_id!r} has not been observed")
        with self._span("recommend", server=server_id, day=day):
            choice = self.scheduler.choose(trace, day, self.policy)
            self._choices.append(choice)
            self._emit(
                "window",
                value=choice.actual_load,
                server=server_id,
                start_hour=choice.start_hour,
            )
            return choice

    def report(self) -> SeagullReport:
        return SeagullReport(choices=list(self._choices), tolerance=self.tolerance)

    # -- deprecated entry points -----------------------------------------------
    @deprecated_alias("recommend")
    def choose(self, server_id: str, day: int) -> WindowChoice:
        return self.recommend(server_id, day)
