"""The paper's contribution: autonomous services across all three layers.

Organized exactly as Section 4 is:

Cloud infrastructure layer (4.1)
    :mod:`~repro.core.kea` (machine-behaviour models + balancing),
    :mod:`~repro.core.poolserver` (proactive cluster provisioning),
    :mod:`~repro.core.moneyball` (predictive pause/resume),
    :mod:`~repro.core.mlos` (configuration tuning).

Query engine layer (4.2)
    :mod:`~repro.core.peregrine` (workload analysis platform),
    :mod:`~repro.core.cardinality` (learned cardinality micromodels),
    :mod:`~repro.core.costmodel` (learned cost models + meta ensemble),
    :mod:`~repro.core.steering` (rule-hint steering with guardrails),
    :mod:`~repro.core.checkpoint` (Phoebe checkpoint optimizer),
    :mod:`~repro.core.cloudviews` (computation reuse),
    :mod:`~repro.core.pipeline` (pipeline optimization).

Service layer (4.3)
    :mod:`~repro.core.seagull` (backup window scheduling),
    :mod:`~repro.core.doppler` (SKU recommendation),
    :mod:`~repro.core.autotune` (application auto-tuning),
    :mod:`~repro.core.granularity` (global/segment/individual models).

Cross-cutting (Insights 1-3)
    :mod:`~repro.core.feedback` (monitoring + rollback loop),
    :mod:`~repro.core.pareto` (QoS/cost frontier tooling),
    :mod:`~repro.core.service` (the common ``AutonomousService``
    observe/recommend/report protocol every service implements, bound
    to the shared :mod:`repro.obs` observability runtime).
"""

from repro.core.service import AutonomousService

__all__ = ["AutonomousService"]
