"""The common ``AutonomousService`` API every core service speaks.

The paper's services grew up with ad-hoc entry points (``process``,
``fit``, ``choose``, ...).  This module defines the one shape they all
share now:

- :meth:`AutonomousService.observe` — ingest production signals
  (telemetry, traces, job outcomes) and update internal state,
- :meth:`AutonomousService.recommend` — produce a decision for one
  subject (a policy, a config, a SKU, a window),
- :meth:`AutonomousService.report` — return the accumulated report;
  every report exposes ``to_events()`` so it replays into the shared
  :class:`~repro.obs.events.EventLog`.

Services bind to an :class:`~repro.obs.runtime.ObservabilityRuntime`
with :meth:`AutonomousService.bind`; unbound services run with zero
instrumentation overhead.  Old entry points remain as thin aliases that
raise :class:`DeprecationWarning` via :func:`deprecated_alias`.
"""

from __future__ import annotations

import abc
import functools
import warnings
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


class AutonomousService(abc.ABC):
    """observe() / recommend() / report(), with optional observability.

    Subclasses set ``service_name`` (the ``source`` tag on emitted
    events and the span-name prefix) and ``layer`` (defaults to
    ``"service"`` — the paper's service layer).
    """

    #: Component tag used in span names and event sources.
    service_name: str = "service"
    #: Architectural layer the service reports under.
    layer: str = "service"

    _obs: "ObservabilityRuntime | None" = None

    def bind(self, obs: "ObservabilityRuntime | None") -> "AutonomousService":
        """Attach (or detach, with ``None``) an observability runtime."""
        self._obs = obs
        return self

    @property
    def obs(self) -> "ObservabilityRuntime | None":
        return self._obs

    # -- instrumentation helpers ----------------------------------------------
    def _span(self, name: str, **attributes: object):
        """Span context manager, or a no-op when the service is unbound."""
        if self._obs is None:
            return nullcontext()
        return self._obs.span(
            f"{self.service_name}.{name}", layer=self.layer, **attributes
        )

    def _emit(self, kind: str, value: float = 1.0, **attributes: object) -> None:
        if self._obs is not None:
            self._obs.emit(
                self.layer, self.service_name, kind, value=value, **attributes
            )

    # -- the protocol ---------------------------------------------------------
    @abc.abstractmethod
    def observe(self, *args, **kwargs):
        """Ingest one production signal; returns a service-specific value."""

    @abc.abstractmethod
    def recommend(self, *args, **kwargs):
        """Produce a decision for one subject."""

    @abc.abstractmethod
    def report(self):
        """Return the accumulated report (``to_events()``-bearing)."""


def deprecated_alias(replacement: str) -> Callable:
    """Mark an old entry point as a deprecated alias of ``replacement``.

    ::

        @deprecated_alias("observe")
        def process(self, job_id, plan):
            return self.observe(job_id, plan)
    """

    def decorator(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            warnings.warn(
                f"{type(self).__name__}.{fn.__name__}() is deprecated; "
                f"use {type(self).__name__}.{replacement}() instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return fn(self, *args, **kwargs)

        wrapper.__deprecated_for__ = replacement
        return wrapper

    return decorator
