"""The common ``AutonomousService`` API every core service speaks.

The paper's services grew up with ad-hoc entry points (``process``,
``fit``, ``choose``, ...).  This module defines the one shape they all
share now:

- :meth:`AutonomousService.observe` — ingest production signals
  (telemetry, traces, job outcomes) and update internal state,
- :meth:`AutonomousService.recommend` — produce a decision for one
  subject (a policy, a config, a SKU, a window),
- :meth:`AutonomousService.report` — return the accumulated report;
  every report exposes ``to_events()`` so it replays into the shared
  :class:`~repro.obs.events.EventLog`.

On top of the method protocol sits the **serve contract**: one typed
request/response envelope every entry point is reachable through.
:meth:`AutonomousService.serve` dispatches a :class:`ServeRequest` to a
``serve_<op>`` handler (``serve_recommend``, ``serve_observe``, ...)
and always returns a :class:`ServeResponse` — unknown ops come back
404-style, handler exceptions 500-style with the original exception
preserved so fault-handling callers (the fabric's retry path) can
re-raise it via :meth:`ServeResponse.unwrap`.  The pipeline drivers and
the :mod:`repro.serve` query plane both go through this one route, so
ticked and queried flows cannot drift apart.

Services bind to an :class:`~repro.obs.runtime.ObservabilityRuntime`
with :meth:`AutonomousService.bind`; unbound services run with zero
instrumentation overhead.  Old entry points remain as thin aliases that
raise :class:`DeprecationWarning` via :func:`deprecated_alias`.
"""

from __future__ import annotations

import abc
import functools
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


class ServiceError(Exception):
    """An error :class:`ServeResponse` re-raised by :meth:`~ServeResponse.unwrap`."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ServeRequest:
    """One typed request against a service endpoint.

    ``op`` names the entry point (``recommend``, ``observe``, ``stats``,
    ...), ``subject`` is the one positional subject the op acts on (a
    plan, a trace, a customer, a template name), and ``params`` carries
    the op's keyword arguments.  ``tenant`` identifies the requester for
    sessions/admission and ``deadline`` (event-loop seconds, absolute)
    propagates end-to-end so downstream stages can refuse work that
    cannot finish in time.  The fabric's ticked flow leaves ``tenant``
    and ``deadline`` at their defaults — the envelope is the same either
    way.
    """

    op: str
    subject: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = ""
    deadline: float | None = None


@dataclass
class ServeResponse:
    """What one :meth:`AutonomousService.serve` call produced.

    ``status`` follows HTTP conventions (200 ok, 404 unknown op, 500
    handler error; the query plane adds 429/503/504 at admission).  On
    error, ``exception`` holds the original handler exception so
    :meth:`unwrap` re-raises *it* — fabric retry/degrade semantics stay
    exactly what they were when drivers called methods directly.
    """

    status: int
    result: Any = None
    error: str = ""
    served_by: str = ""
    op: str = ""
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def unwrap(self) -> Any:
        """The result, or the original exception re-raised on error."""
        if self.ok:
            return self.result
        if self.exception is not None:
            raise self.exception
        raise ServiceError(self.status, self.error or f"serve failed ({self.status})")


class AutonomousService(abc.ABC):
    """observe() / recommend() / report(), with optional observability.

    Subclasses set ``service_name`` (the ``source`` tag on emitted
    events and the span-name prefix) and ``layer`` (defaults to
    ``"service"`` — the paper's service layer).
    """

    #: Component tag used in span names and event sources.
    service_name: str = "service"
    #: Architectural layer the service reports under.
    layer: str = "service"

    _obs: "ObservabilityRuntime | None" = None

    def bind(self, obs: "ObservabilityRuntime | None") -> "AutonomousService":
        """Attach (or detach, with ``None``) an observability runtime."""
        self._obs = obs
        return self

    @property
    def obs(self) -> "ObservabilityRuntime | None":
        return self._obs

    # -- instrumentation helpers ----------------------------------------------
    def _span(self, name: str, **attributes: object):
        """Span context manager, or a no-op when the service is unbound."""
        if self._obs is None:
            return nullcontext()
        return self._obs.span(
            f"{self.service_name}.{name}", layer=self.layer, **attributes
        )

    def _emit(self, kind: str, value: float = 1.0, **attributes: object) -> None:
        if self._obs is not None:
            self._obs.emit(
                self.layer, self.service_name, kind, value=value, **attributes
            )

    # -- the serve contract ---------------------------------------------------
    def serve(self, request: ServeRequest) -> ServeResponse:
        """Dispatch ``request`` to this service's ``serve_<op>`` handler.

        Never raises: unknown ops return a 404-style response and
        handler exceptions a 500-style response carrying the original
        exception (callers that need fault semantics call
        :meth:`ServeResponse.unwrap`).
        """
        handler = getattr(self, f"serve_{request.op}", None)
        if handler is None or not callable(handler):
            return ServeResponse(
                status=404,
                error=f"{self.service_name} has no op {request.op!r}",
                served_by=self.service_name,
                op=request.op,
            )
        try:
            result = handler(request)
        except Exception as exc:  # noqa: BLE001 — the serve fault boundary
            return ServeResponse(
                status=500,
                error=f"{type(exc).__name__}: {exc}",
                served_by=self.service_name,
                op=request.op,
                exception=exc,
            )
        return ServeResponse(
            status=200,
            result=result,
            served_by=self.service_name,
            op=request.op,
        )

    def serve_many(self, requests: "list[ServeRequest]") -> "list[ServeResponse]":
        """Serve a batch; order-preserving, one response per request.

        The default is the serial loop.  Services with a vectorizable
        model call override this with a single stacked call that is
        bit-identical per row (the micro-batching dispatcher relies on
        that contract).
        """
        return [self.serve(request) for request in requests]

    # -- standard handlers ----------------------------------------------------
    def serve_recommend(self, request: ServeRequest):
        """Default ``recommend`` op: subject + params, positionally."""
        return self.recommend(request.subject, **dict(request.params))

    def serve_observe(self, request: ServeRequest):
        """Default ``observe`` op: subject + params, positionally."""
        return self.observe(request.subject, **dict(request.params))

    def serve_report(self, request: ServeRequest):
        """Default ``report`` op: the accumulated report object."""
        return self.report()

    # -- the protocol ---------------------------------------------------------
    @abc.abstractmethod
    def observe(self, *args, **kwargs):
        """Ingest one production signal; returns a service-specific value."""

    @abc.abstractmethod
    def recommend(self, *args, **kwargs):
        """Produce a decision for one subject."""

    @abc.abstractmethod
    def report(self):
        """Return the accumulated report (``to_events()``-bearing)."""


def deprecated_alias(replacement: str) -> Callable:
    """Mark an old entry point as a deprecated alias of ``replacement``.

    ::

        @deprecated_alias("observe")
        def process(self, job_id, plan):
            return self.observe(job_id, plan)
    """

    def decorator(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            warnings.warn(
                f"{type(self).__name__}.{fn.__name__}() is deprecated; "
                f"use {type(self).__name__}.{replacement}() instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return fn(self, *args, **kwargs)

        wrapper.__deprecated_for__ = replacement
        return wrapper

    return decorator
