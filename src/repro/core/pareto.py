"""QoS-vs-cost Pareto frontier tooling (the paper's Figure 2).

"Cloud operators face a continuous challenge in managing resources,
striking a balance between QoS, such as low latency, and operational
costs ... By utilizing ML, these trade-offs can be measured, and the
Pareto curve can be globally optimized."

Conventions: both axes are *costs to minimize* (e.g. x = QoS violation
rate, y = dollars).  A point dominates another if it is <= on both axes
and < on at least one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TradeoffPoint:
    """One policy evaluated on the (QoS penalty, cost) plane."""

    qos_penalty: float
    cost: float
    label: str = ""

    def dominates(self, other: "TradeoffPoint") -> bool:
        no_worse = (
            self.qos_penalty <= other.qos_penalty and self.cost <= other.cost
        )
        better = (
            self.qos_penalty < other.qos_penalty or self.cost < other.cost
        )
        return no_worse and better


def pareto_frontier(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset, sorted by ascending QoS penalty."""
    frontier = [
        p
        for p in points
        if not any(other.dominates(p) for other in points)
    ]
    # Deduplicate identical coordinates, keeping the first label.
    seen: set[tuple[float, float]] = set()
    unique = []
    for p in sorted(frontier, key=lambda p: (p.qos_penalty, p.cost)):
        key = (p.qos_penalty, p.cost)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def frontier_shift(
    baseline: list[TradeoffPoint], improved: list[TradeoffPoint]
) -> float:
    """How far ``improved`` pushes the frontier toward the origin.

    Returns the mean relative cost reduction of the improved frontier at
    the QoS levels of the baseline frontier (linear interpolation); >0
    means the improved policies dominate.  Frontiers must be non-empty.
    """
    base = pareto_frontier(baseline)
    better = pareto_frontier(improved)
    if not base or not better:
        raise ValueError("both frontiers must be non-empty")
    reductions = []
    for point in base:
        cost = _interpolate_cost(better, point.qos_penalty)
        if cost is None:
            continue
        if point.cost > 0:
            reductions.append((point.cost - cost) / point.cost)
    if not reductions:
        return 0.0
    return sum(reductions) / len(reductions)


def _interpolate_cost(
    frontier: list[TradeoffPoint], qos: float
) -> float | None:
    """Cost of ``frontier`` at QoS level ``qos`` (None outside its span)."""
    pts = sorted(frontier, key=lambda p: p.qos_penalty)
    if qos < pts[0].qos_penalty or qos > pts[-1].qos_penalty:
        return None
    for a, b in zip(pts, pts[1:]):
        if a.qos_penalty <= qos <= b.qos_penalty:
            if b.qos_penalty == a.qos_penalty:
                return min(a.cost, b.cost)
            w = (qos - a.qos_penalty) / (b.qos_penalty - a.qos_penalty)
            return a.cost + w * (b.cost - a.cost)
    return pts[-1].cost if qos == pts[-1].qos_penalty else None
