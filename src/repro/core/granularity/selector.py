"""Global / segment / individual models with per-entity selection.

The predictor fits all three granularities on entity-labelled data and,
per entity, serves the granularity with the best cross-validated error —
automating the Insight-2 trade-off.  ``heterogeneous_population``
generates the synthetic regression population used by experiment E15:
entities drawn from latent segments with per-entity slope deviations, so
that which granularity wins depends on how much data each entity has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml import KMeans, LinearRegression, mse


@dataclass
class EntityData:
    """Observations belonging to one entity (customer/application)."""

    entity_id: str
    segment: int              # latent ground truth (evaluation only)
    x: np.ndarray
    y: np.ndarray


def heterogeneous_population(
    n_entities: int = 30,
    n_segments: int = 3,
    samples_per_entity: int = 20,
    entity_scatter: float = 0.3,
    noise: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> list[EntityData]:
    """Linear entities: segment slope +- per-entity deviation + noise."""
    if n_entities < n_segments:
        raise ValueError("need at least one entity per segment")
    generator = np.random.default_rng(rng)
    segment_slopes = generator.uniform(-4.0, 4.0, size=n_segments)
    segment_intercepts = generator.uniform(-2.0, 2.0, size=n_segments)
    out = []
    for i in range(n_entities):
        segment = i % n_segments
        slope = segment_slopes[segment] + generator.normal(scale=entity_scatter)
        intercept = segment_intercepts[segment] + generator.normal(
            scale=entity_scatter
        )
        x = generator.uniform(-3, 3, size=samples_per_entity)
        y = slope * x + intercept + generator.normal(scale=noise, size=x.size)
        out.append(EntityData(f"entity-{i:03d}", segment, x, y))
    return out


@dataclass
class GranularityReport:
    """Held-out error of each granularity plus the selector (E15 data)."""

    global_mse: float
    segment_mse: float
    individual_mse: float
    selected_mse: float
    selection_counts: dict[str, int]


class GranularPredictor:
    """Fit global + segment + individual linear models; select per entity."""

    def __init__(
        self,
        n_segments: int = 3,
        min_individual_samples: int = 8,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        self.n_segments = n_segments
        self.min_individual_samples = min_individual_samples
        self._rng = np.random.default_rng(rng)
        self._global: LinearRegression | None = None
        self._segment_models: dict[int, LinearRegression] = {}
        self._individual_models: dict[str, LinearRegression] = {}
        self._entity_segment: dict[str, int] = {}
        self._entity_choice: dict[str, str] = {}

    # -- training --------------------------------------------------------------
    def fit(self, entities: list[EntityData]) -> "GranularPredictor":
        if not entities:
            raise ValueError("no entities")
        all_x = np.concatenate([e.x for e in entities])
        all_y = np.concatenate([e.y for e in entities])
        self._global = LinearRegression().fit(all_x, all_y)

        # Segment entities by their (fitted) individual slope/intercept —
        # the natural stratification Insight 2 recommends.
        signatures = []
        for e in entities:
            fit = LinearRegression().fit(e.x, e.y)
            signatures.append([fit.coef_[0], fit.intercept_])
        signatures = np.array(signatures)
        kmeans = KMeans(
            n_clusters=min(self.n_segments, len(entities)), rng=self._rng
        ).fit(signatures)
        for e, label in zip(entities, kmeans.labels_):
            self._entity_segment[e.entity_id] = int(label)
        for segment in set(kmeans.labels_.tolist()):
            members = [
                e
                for e in entities
                if self._entity_segment[e.entity_id] == segment
            ]
            x = np.concatenate([m.x for m in members])
            y = np.concatenate([m.y for m in members])
            self._segment_models[segment] = LinearRegression().fit(x, y)

        for e in entities:
            if e.x.size >= self.min_individual_samples:
                self._individual_models[e.entity_id] = LinearRegression().fit(
                    e.x, e.y
                )
        self._select(entities)
        return self

    def _select(self, entities: list[EntityData]) -> None:
        """Pick, per entity, the granularity with the best LOO-ish error.

        Uses a holdout of each entity's last 25% of samples; entities too
        small for a holdout default to the segment model.
        """
        for e in entities:
            n_val = max(1, e.x.size // 4)
            if e.x.size - n_val < 2:
                self._entity_choice[e.entity_id] = "segment"
                continue
            x_tr, x_val = e.x[:-n_val], e.x[-n_val:]
            y_tr, y_val = e.y[:-n_val], e.y[-n_val:]
            candidates: dict[str, float] = {}
            candidates["global"] = mse(y_val, self._global.predict(x_val))
            segment = self._entity_segment[e.entity_id]
            candidates["segment"] = mse(
                y_val, self._segment_models[segment].predict(x_val)
            )
            if e.x.size >= self.min_individual_samples:
                local = LinearRegression().fit(x_tr, y_tr)
                candidates["individual"] = mse(y_val, local.predict(x_val))
            self._entity_choice[e.entity_id] = min(
                candidates, key=candidates.get
            )

    # -- prediction --------------------------------------------------------------
    def predict(self, entity_id: str, x: np.ndarray, granularity: str | None = None):
        if self._global is None:
            raise RuntimeError("predictor is not fitted")
        granularity = granularity or self._entity_choice.get(entity_id, "global")
        if granularity == "global":
            return self._global.predict(x)
        if granularity == "segment":
            segment = self._entity_segment.get(entity_id)
            model = self._segment_models.get(segment, self._global)
            return model.predict(x)
        if granularity == "individual":
            model = self._individual_models.get(entity_id)
            if model is None:
                return self.predict(entity_id, x, "segment")
            return model.predict(x)
        raise ValueError(f"unknown granularity {granularity!r}")

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, test: list[EntityData]) -> GranularityReport:
        """Held-out error of every granularity and of the selector."""
        errors = {"global": [], "segment": [], "individual": [], "selected": []}
        counts = {"global": 0, "segment": 0, "individual": 0}
        for e in test:
            for granularity in ("global", "segment", "individual"):
                pred = self.predict(e.entity_id, e.x, granularity)
                errors[granularity].append(mse(e.y, pred))
            errors["selected"].append(
                mse(e.y, self.predict(e.entity_id, e.x))
            )
            counts[self._entity_choice.get(e.entity_id, "global")] += 1
        return GranularityReport(
            global_mse=float(np.mean(errors["global"])),
            segment_mse=float(np.mean(errors["segment"])),
            individual_mse=float(np.mean(errors["individual"])),
            selected_mse=float(np.mean(errors["selected"])),
            selection_counts=counts,
        )
