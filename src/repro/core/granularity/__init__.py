"""Model granularity selection: global vs segment vs individual (§4.3).

"We can develop models with different levels of granularity: 1) a global
model that is broad but may not be precise, 2) a segment model that
groups similar customers or applications and shares insights within the
group, and 3) an individual model for each customer or application that
requires sufficient data observations."  Insight 2: "A happy middle
ground can be achieved by identifying natural ways to stratify the
data."
"""

from repro.core.granularity.selector import (
    GranularPredictor,
    GranularityReport,
    heterogeneous_population,
)

__all__ = [
    "GranularPredictor",
    "GranularityReport",
    "heterogeneous_population",
]
