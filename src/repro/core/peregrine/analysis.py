"""Workload categorization and the headline statistics.

Produces the numbers the paper quotes for SCOPE: the fraction of
recurring jobs, the fraction of daily jobs sharing subexpressions with at
least one other job, and the fraction of jobs with inter-job
dependencies (experiment E4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.peregrine.repository import WorkloadRepository
from repro.parallel import ShmArray, attach, pmap, resolve_workers


@dataclass
class WorkloadStatistics:
    """Aggregate workload structure statistics."""

    n_jobs: int
    n_templates: int
    recurring_job_fraction: float
    shared_subexpression_fraction: float  # mean over days
    dependency_fraction: float
    jobs_per_template_p50: float
    top_shared_signatures: list[tuple[str, int]]  # (strict sig, #jobs) per day peak

    def summary_rows(self) -> list[tuple[str, float]]:
        """Rows for the E4 bench printout (metric name, value)."""
        return [
            ("jobs", float(self.n_jobs)),
            ("templates", float(self.n_templates)),
            ("recurring_fraction", self.recurring_job_fraction),
            ("shared_subexpr_fraction", self.shared_subexpression_fraction),
            ("dependency_fraction", self.dependency_fraction),
        ]


def _recurring_fraction(repo: WorkloadRepository) -> tuple[float, int, float]:
    """Jobs whose template appears on more than one day are recurring.

    Folded from the repository's incremental per-template counters —
    no record scan, so the cost is bounded by structural diversity
    (#unique template signatures), not workload size.
    """
    stats = repo.template_stats()
    recurring_jobs = sum(
        count for n_days, count in stats.values() if n_days > 1
    )
    counts = [count for _n_days, count in stats.values()]
    return (
        recurring_jobs / max(len(repo), 1),
        len(stats),
        float(np.median(counts)) if counts else 0.0,
    )


def shared_jobs_on_day(
    repo: WorkloadRepository, day: int, min_size: int = 2
) -> tuple[set[str], dict[str, set[str]]]:
    """Jobs on ``day`` sharing a non-trivial strict subexpression.

    Returns (sharing job ids, signature -> job ids for shared signatures).
    ``min_size`` excludes bare table scans, which share trivially.
    """
    owners: dict[str, set[str]] = defaultdict(set)
    for record in repo.by_day(day):
        for sig, node in record.subexpression_strict.items():
            if node.size >= min_size:
                owners[sig].add(record.job_id)
    shared_sigs = {s: jobs for s, jobs in owners.items() if len(jobs) > 1}
    sharing_jobs: set[str] = set()
    for jobs in shared_sigs.values():
        sharing_jobs |= jobs
    return sharing_jobs, shared_sigs


def _day_table(
    repo: WorkloadRepository, min_size: int
) -> tuple[np.ndarray, list[tuple[int, int, int, int]]]:
    """The whole repository's (job, signature) rows as one numpy block.

    Delegates to :meth:`WorkloadRepository.sig_table`, which memoizes
    the block append-only across ``analyze()`` calls: each call gathers
    only days ingested since the last one, so re-analysis per fabric
    tick costs O(new day) instead of re-concatenating (and re-loading
    spilled chunks for) the whole history.  Job codes are the day's
    global row offset plus the local row: bijective with job ids, so
    per-day distinct counts match an interned-string scan.  Returns the
    table plus per-day ``(day, start_row, stop_row, n_jobs)`` slices.
    """
    return repo.sig_table(min_size)


def _day_sharing_worker_shm(
    payload: tuple[object, int, int, int, int],
) -> tuple[int, int, int, dict[str, int]]:
    """Worker: one day's sharing statistics from the shared-memory table.

    ``payload`` is ``(handle, day, start, stop, n_jobs)`` — a few dozen
    bytes; the actual rows are read zero-copy from the table published
    by :func:`analyze`.  Iterating rows in table order reproduces the
    exact first-sighting dict order of :func:`_day_sharing_worker`, so
    the output is bit-identical to the pickled-payload serial path.
    """
    handle, day, start, stop, n_jobs = payload
    rows = attach(handle)[start:stop]
    owners: dict[bytes, set[int]] = {}
    for code, sig in zip(rows["job"].tolist(), rows["sig"].tolist()):
        bucket = owners.get(sig)
        if bucket is None:
            owners[sig] = {code}
        else:
            bucket.add(code)
    shared = {
        sig.decode("ascii"): len(jobs)
        for sig, jobs in owners.items()
        if len(jobs) > 1
    }
    sharing_jobs: set[int] = set()
    for sig, jobs in owners.items():
        if len(jobs) > 1:
            sharing_jobs |= jobs
    return day, n_jobs, len(sharing_jobs), shared


def _dependency_fraction(repo: WorkloadRepository) -> float:
    return repo.dependency_involved() / max(len(repo), 1)


def analyze(
    repo: WorkloadRepository,
    min_subexpr_size: int = 2,
    workers: int = 1,
) -> WorkloadStatistics:
    """Compute the full statistics bundle over everything ingested.

    ``workers`` fans the per-day sharing analysis across the persistent
    process pool.  The parallel path publishes the repository's
    (job, signature) rows to shared memory **once** and sends workers
    only per-day row slices — no pickled object lists cross the pool
    boundary.  The serial path folds the repository's cached per-day
    summaries, so re-analysis after each ingested day costs one day,
    not the whole history.  Serial or parallel, the statistics are
    byte-identical for every worker count.
    """
    if len(repo) == 0:
        raise ValueError("repository is empty")
    recurring, n_templates, p50 = _recurring_fraction(repo)
    if resolve_workers(workers) <= 1:
        day_results = [
            repo.day_sharing_summary(day, min_subexpr_size)
            for day in repo.days()
        ]
    else:
        table, slices = _day_table(repo, min_subexpr_size)
        with ShmArray(table) as publication:
            day_results = pmap(
                _day_sharing_worker_shm,
                [
                    (publication.handle, day, start, stop, n_jobs)
                    for day, start, stop, n_jobs in slices
                ],
                workers=workers,
            )
    day_fractions = []
    best_shared: dict[str, int] = {}
    for _day, n_day_jobs, n_sharing, shared_sigs in day_results:
        day_fractions.append(n_sharing / max(n_day_jobs, 1))
        for sig, n_jobs in shared_sigs.items():
            best_shared[sig] = max(best_shared.get(sig, 0), n_jobs)
    top = sorted(best_shared.items(), key=lambda kv: -kv[1])[:10]
    return WorkloadStatistics(
        n_jobs=len(repo),
        n_templates=n_templates,
        recurring_job_fraction=recurring,
        shared_subexpression_fraction=float(np.mean(day_fractions)),
        dependency_fraction=_dependency_fraction(repo),
        jobs_per_template_p50=p50,
        top_shared_signatures=top,
    )
