"""Workload categorization and the headline statistics.

Produces the numbers the paper quotes for SCOPE: the fraction of
recurring jobs, the fraction of daily jobs sharing subexpressions with at
least one other job, and the fraction of jobs with inter-job
dependencies (experiment E4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.peregrine.repository import WorkloadRepository
from repro.parallel import ShmArray, attach, pmap, resolve_workers


@dataclass
class WorkloadStatistics:
    """Aggregate workload structure statistics."""

    n_jobs: int
    n_templates: int
    recurring_job_fraction: float
    shared_subexpression_fraction: float  # mean over days
    dependency_fraction: float
    jobs_per_template_p50: float
    top_shared_signatures: list[tuple[str, int]]  # (strict sig, #jobs) per day peak

    def summary_rows(self) -> list[tuple[str, float]]:
        """Rows for the E4 bench printout (metric name, value)."""
        return [
            ("jobs", float(self.n_jobs)),
            ("templates", float(self.n_templates)),
            ("recurring_fraction", self.recurring_job_fraction),
            ("shared_subexpr_fraction", self.shared_subexpression_fraction),
            ("dependency_fraction", self.dependency_fraction),
        ]


def _recurring_fraction(repo: WorkloadRepository) -> tuple[float, int, float]:
    """Jobs whose template appears on more than one day are recurring."""
    template_days: dict[str, set[int]] = defaultdict(set)
    for record in repo.records:
        template_days[record.template].add(record.day)
    recurring_templates = {
        t for t, days in template_days.items() if len(days) > 1
    }
    recurring_jobs = sum(
        1 for r in repo.records if r.template in recurring_templates
    )
    counts = [len(repo.instances_of(t)) for t in template_days]
    return (
        recurring_jobs / max(len(repo), 1),
        len(template_days),
        float(np.median(counts)) if counts else 0.0,
    )


def shared_jobs_on_day(
    repo: WorkloadRepository, day: int, min_size: int = 2
) -> tuple[set[str], dict[str, set[str]]]:
    """Jobs on ``day`` sharing a non-trivial strict subexpression.

    Returns (sharing job ids, signature -> job ids for shared signatures).
    ``min_size`` excludes bare table scans, which share trivially.
    """
    owners: dict[str, set[str]] = defaultdict(set)
    for record in repo.by_day(day):
        for sig, node in record.subexpression_strict.items():
            if node.size >= min_size:
                owners[sig].add(record.job_id)
    shared_sigs = {s: jobs for s, jobs in owners.items() if len(jobs) > 1}
    sharing_jobs: set[str] = set()
    for jobs in shared_sigs.values():
        sharing_jobs |= jobs
    return sharing_jobs, shared_sigs


def _day_sharing_worker(
    payload: tuple[int, list[tuple[str, list[str]]]],
) -> tuple[int, int, int, dict[str, int]]:
    """Worker: one day's sharing statistics from plain signature lists.

    The payload carries only strings (job ids and pre-filtered strict
    signatures), so fanning days across a process pool ships kilobytes,
    not plan trees.  Returns ``(day, n_jobs, n_sharing_jobs,
    {signature: n_jobs sharing it})`` with dict order equal to first-
    sighting order — the same order a serial scan produces.
    """
    day, entries = payload
    owners: dict[str, set[str]] = defaultdict(set)
    for job_id, sigs in entries:
        for sig in sigs:
            owners[sig].add(job_id)
    shared = {s: len(jobs) for s, jobs in owners.items() if len(jobs) > 1}
    sharing_jobs: set[str] = set()
    for sig in shared:
        sharing_jobs |= owners[sig]
    return day, len(entries), len(sharing_jobs), shared


def _day_payloads(
    repo: WorkloadRepository, min_size: int
) -> list[tuple[int, list[tuple[str, list[str]]]]]:
    """Per-day (job_id, filtered signatures) payloads, in day order."""
    payloads = []
    for day in repo.days():
        entries = [
            (
                record.job_id,
                [
                    sig
                    for sig, node in record.subexpression_strict.items()
                    if node.size >= min_size
                ],
            )
            for record in repo.by_day(day)
        ]
        payloads.append((day, entries))
    return payloads


def _day_table(
    repo: WorkloadRepository, min_size: int
) -> tuple[np.ndarray, list[tuple[int, int, int, int]]]:
    """The whole repository's (job, signature) rows as one numpy block.

    Rows are emitted day by day, job by job, signature by signature —
    exactly the iteration order of :func:`_day_payloads` — as a
    structured array of ``(job_code, sig_bytes)``.  Job ids are interned
    to integer codes (bijective, so per-day distinct counts are
    unchanged) and signatures to fixed-width ascii bytes, which is what
    makes the table a flat shared-memory publishable block instead of a
    pickled object forest.  Returns the table plus per-day
    ``(day, start_row, stop_row, n_jobs)`` slices.
    """
    job_codes: dict[str, int] = {}
    rows_job: list[int] = []
    rows_sig: list[bytes] = []
    slices: list[tuple[int, int, int, int]] = []
    sig_width = 1
    for day in repo.days():
        start = len(rows_job)
        records = repo.by_day(day)
        for record in records:
            code = job_codes.setdefault(record.job_id, len(job_codes))
            for sig, node in record.subexpression_strict.items():
                if node.size >= min_size:
                    encoded = sig.encode("ascii")
                    sig_width = max(sig_width, len(encoded))
                    rows_job.append(code)
                    rows_sig.append(encoded)
        slices.append((day, start, len(rows_job), len(records)))
    table = np.zeros(
        len(rows_job),
        dtype=[("job", np.uint32), ("sig", f"S{sig_width}")],
    )
    if rows_job:
        table["job"] = rows_job
        table["sig"] = rows_sig
    return table, slices


def _day_sharing_worker_shm(
    payload: tuple[object, int, int, int, int],
) -> tuple[int, int, int, dict[str, int]]:
    """Worker: one day's sharing statistics from the shared-memory table.

    ``payload`` is ``(handle, day, start, stop, n_jobs)`` — a few dozen
    bytes; the actual rows are read zero-copy from the table published
    by :func:`analyze`.  Iterating rows in table order reproduces the
    exact first-sighting dict order of :func:`_day_sharing_worker`, so
    the output is bit-identical to the pickled-payload serial path.
    """
    handle, day, start, stop, n_jobs = payload
    rows = attach(handle)[start:stop]
    owners: dict[bytes, set[int]] = {}
    for code, sig in zip(rows["job"].tolist(), rows["sig"].tolist()):
        bucket = owners.get(sig)
        if bucket is None:
            owners[sig] = {code}
        else:
            bucket.add(code)
    shared = {
        sig.decode("ascii"): len(jobs)
        for sig, jobs in owners.items()
        if len(jobs) > 1
    }
    sharing_jobs: set[int] = set()
    for sig, jobs in owners.items():
        if len(jobs) > 1:
            sharing_jobs |= jobs
    return day, n_jobs, len(sharing_jobs), shared


def _dependency_fraction(repo: WorkloadRepository) -> float:
    involved: set[str] = set()
    for record in repo.records:
        if record.depends_on:
            involved.add(record.job_id)
            involved.update(record.depends_on)
    return len(involved) / max(len(repo), 1)


def analyze(
    repo: WorkloadRepository,
    min_subexpr_size: int = 2,
    workers: int = 1,
) -> WorkloadStatistics:
    """Compute the full statistics bundle over everything ingested.

    ``workers`` fans the per-day sharing analysis across the persistent
    process pool.  The parallel path publishes the repository's
    (job, signature) rows to shared memory **once** and sends workers
    only per-day row slices — no pickled object lists cross the pool
    boundary.  Serial or parallel, the statistics are byte-identical
    for every worker count.
    """
    if len(repo) == 0:
        raise ValueError("repository is empty")
    recurring, n_templates, p50 = _recurring_fraction(repo)
    if resolve_workers(workers) <= 1:
        day_results = [
            _day_sharing_worker(payload)
            for payload in _day_payloads(repo, min_subexpr_size)
        ]
    else:
        table, slices = _day_table(repo, min_subexpr_size)
        with ShmArray(table) as publication:
            day_results = pmap(
                _day_sharing_worker_shm,
                [
                    (publication.handle, day, start, stop, n_jobs)
                    for day, start, stop, n_jobs in slices
                ],
                workers=workers,
            )
    day_fractions = []
    best_shared: dict[str, int] = {}
    for _day, n_day_jobs, n_sharing, shared_sigs in day_results:
        day_fractions.append(n_sharing / max(n_day_jobs, 1))
        for sig, n_jobs in shared_sigs.items():
            best_shared[sig] = max(best_shared.get(sig, 0), n_jobs)
    top = sorted(best_shared.items(), key=lambda kv: -kv[1])[:10]
    return WorkloadStatistics(
        n_jobs=len(repo),
        n_templates=n_templates,
        recurring_job_fraction=recurring,
        shared_subexpression_fraction=float(np.mean(day_fractions)),
        dependency_fraction=_dependency_fraction(repo),
        jobs_per_template_p50=p50,
        top_shared_signatures=top,
    )
