"""Engine-agnostic workload representation, stored columnar.

The repository ingests jobs from any engine (here: the SCOPE-like
generator) and flattens them into a representation that every learned
component shares: template signatures for grouping, strict signatures
for reuse detection, parameter vectors for micromodel features, and
dependency edges for pipeline analysis.

Storage is a :class:`JobTable` — one columnar :class:`DayChunk` per
day (structured numpy columns over interned plan/signature/parameter
pools) behind an LRU chunk cache that spills cold days to disk under a
configurable memory budget.  A million-job day costs a few numpy
arrays plus one object per *unique plan*, not one ``JobRecord`` per
job; :class:`JobRecord` instances are materialized on demand so the
read API (``records``, ``job``, ``by_day``, ``instances_of``) is
unchanged for existing callers.

Aggregate statistics (template recurrence counters, per-day sharing
summaries, dependency involvement) are folded incrementally at ingest
or cached per closed day, so :func:`repro.core.peregrine.analysis.
analyze` never needs every record in memory at once.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx
import numpy as np

from repro.engine import Expression
from repro.engine.signatures import enumerate_all_signatures, signatures
from repro.workloads.scope import Job, Workload

_FNV_OFFSET = np.uint64(14695981039346656037)
_FNV_PRIME = np.uint64(1099511628211)


def _hash_ids(ids: list[str]) -> np.ndarray:
    """Vectorized FNV-1a of job-id strings, as uint64.

    Stable across processes (unlike ``hash()``), and ~100x faster than
    per-string hashlib calls: the ids become one fixed-width byte
    matrix and the fold runs one numpy op per character column.  Hits
    are always verified against the actual strings, so a collision can
    cost a chunk load but never correctness.
    """
    if not len(ids):
        return np.empty(0, dtype=np.uint64)
    arr = np.asarray(ids, dtype="S")
    view = np.ascontiguousarray(arr).view(np.uint8)
    view = view.reshape(len(arr), arr.dtype.itemsize)
    h = np.full(len(arr), _FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in range(view.shape[1]):
            c = view[:, col].astype(np.uint64)
            # Null padding is a no-op so hashes are width-independent.
            h = np.where(c == 0, h, (h ^ c) * _FNV_PRIME)
    return h


@dataclass
class JobRecord:
    """One ingested job in the engine-agnostic representation."""

    job_id: str
    submit_hour: float
    plan: Expression
    template: str                     # template signature of the full plan
    strict: str                       # strict signature of the full plan
    subexpression_templates: dict[str, Expression]
    subexpression_strict: dict[str, Expression]
    params: dict[str, float]
    depends_on: tuple[str, ...]

    @property
    def day(self) -> int:
        return int(self.submit_hour // 24)


# ---------------------------------------------------------------------------
# columnar batches
# ---------------------------------------------------------------------------


@dataclass
class JobBatch:
    """One day's jobs, pre-flattened into columns for bulk ingest.

    The expensive per-*plan* work (signature enumeration) happens once
    here, at construction; :meth:`WorkloadRepository.ingest_batch` then
    appends pure columns.  Recurring instances that share a plan object
    share one entry in ``plans`` — the columnar win that makes 100k+
    job days cheap.
    """

    day: int
    job_ids: list[str]
    submit_hours: np.ndarray               # f8, one per job
    plan_codes: np.ndarray                 # u4 into plans, one per job
    param_codes: np.ndarray                # u4 into params_pool, one per job
    plans: list[Expression]
    plan_templates: list[str]
    plan_stricts: list[str]
    plan_sig_codes: list[np.ndarray]       # per plan: u4 into the batch sig pool
    sig_names: list[str]                   # batch-local strict-sig pool,
    sig_sizes: list[int]                   # first-sighting order across plans
    params_pool: list[dict]
    deps_map: dict[int, tuple[str, ...]]   # sparse: row -> depends_on

    def __len__(self) -> int:
        return len(self.job_ids)

    @classmethod
    def from_jobs(cls, jobs: list[Job], day: int | None = None) -> "JobBatch":
        """Columnarize ``jobs`` (all from one day, in ingestion order)."""
        if not jobs:
            raise ValueError("cannot build an empty JobBatch")
        batch_day = jobs[0].day if day is None else day
        job_ids: list[str] = []
        hours = np.empty(len(jobs), dtype=np.float64)
        plan_codes = np.empty(len(jobs), dtype=np.uint32)
        param_codes = np.empty(len(jobs), dtype=np.uint32)
        plans: list[Expression] = []
        plan_templates: list[str] = []
        plan_stricts: list[str] = []
        plan_sig_codes: list[np.ndarray] = []
        sig_names: list[str] = []
        sig_sizes: list[int] = []
        params_pool: list[dict] = []
        deps_map: dict[int, tuple[str, ...]] = {}
        plan_index: dict[int, int] = {}
        sig_index: dict[str, int] = {}
        param_index: dict[tuple, int] = {}
        for row, job in enumerate(jobs):
            if job.day != batch_day:
                raise ValueError(
                    f"job {job.job_id!r} is on day {job.day}, batch is day"
                    f" {batch_day}: batches are per-day"
                )
            code = plan_index.get(id(job.plan))
            if code is None:
                code = len(plans)
                plan_index[id(job.plan)] = code
                strict_map, _template_map = enumerate_all_signatures(job.plan)
                sigs = signatures(job.plan)
                plans.append(job.plan)
                plan_templates.append(sigs.template)
                plan_stricts.append(sigs.strict)
                codes = np.empty(len(strict_map), dtype=np.uint32)
                for i, (name, node) in enumerate(strict_map.items()):
                    sig_code = sig_index.get(name)
                    if sig_code is None:
                        sig_code = len(sig_names)
                        sig_index[name] = sig_code
                        sig_names.append(name)
                        sig_sizes.append(node.size)
                    codes[i] = sig_code
                plan_sig_codes.append(codes)
            plan_codes[row] = code
            pkey = (code,) + tuple(job.params.items())
            pcode = param_index.get(pkey)
            if pcode is None:
                pcode = len(params_pool)
                param_index[pkey] = pcode
                params_pool.append(dict(job.params))
            param_codes[row] = pcode
            job_ids.append(job.job_id)
            hours[row] = job.submit_hour
            if job.depends_on:
                deps_map[row] = tuple(job.depends_on)
        return cls(
            day=batch_day,
            job_ids=job_ids,
            submit_hours=hours,
            plan_codes=plan_codes,
            param_codes=param_codes,
            plans=plans,
            plan_templates=plan_templates,
            plan_stricts=plan_stricts,
            plan_sig_codes=plan_sig_codes,
            sig_names=sig_names,
            sig_sizes=sig_sizes,
            params_pool=params_pool,
            deps_map=deps_map,
        )


# ---------------------------------------------------------------------------
# day chunks
# ---------------------------------------------------------------------------


class _Column:
    """An appendable numpy column: array segments + a scalar tail."""

    __slots__ = ("dtype", "parts", "pending", "_cache", "_n")

    def __init__(self, dtype) -> None:
        self.dtype = np.dtype(dtype)
        self.parts: list[np.ndarray] = []
        self.pending: list = []
        self._cache: np.ndarray | None = None
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, value) -> None:
        self.pending.append(value)
        self._cache = None
        self._n += 1

    def extend(self, arr: np.ndarray) -> None:
        if self.pending:
            self.parts.append(np.asarray(self.pending, dtype=self.dtype))
            self.pending = []
        self.parts.append(np.asarray(arr, dtype=self.dtype))
        self._cache = None
        self._n += len(arr)

    def array(self) -> np.ndarray:
        if self._cache is None:
            parts = list(self.parts)
            if self.pending:
                parts.append(np.asarray(self.pending, dtype=self.dtype))
            if not parts:
                self._cache = np.empty(0, dtype=self.dtype)
            elif len(parts) == 1:
                self._cache = parts[0]
            else:
                self._cache = np.concatenate(parts)
        return self._cache

    def nbytes(self) -> int:
        return self._n * self.dtype.itemsize


class DayChunk:
    """One day's columnar job table plus its interned pools.

    Everything a day needs travels together — columns, unique plans,
    the signature pool, parameter pool, and sparse dependency map — so
    a chunk spills to disk and reloads as one self-contained pickle.
    """

    __slots__ = (
        "day", "job_ids", "submit_hours", "plan_codes", "param_codes",
        "plans", "plan_templates", "plan_stricts", "plan_sig_codes",
        "sig_names", "sig_sizes", "params_pool", "deps_map", "dirty",
        "_sig_index", "_filtered_cache", "_sig_bytes", "_nbytes_cache",
    )

    def __init__(self, day: int) -> None:
        self.day = day
        self.job_ids: list[str] = []
        self.submit_hours = _Column(np.float64)
        self.plan_codes = _Column(np.uint32)
        self.param_codes = _Column(np.uint32)
        self.plans: list[Expression] = []
        self.plan_templates: list[str] = []
        self.plan_stricts: list[str] = []
        self.plan_sig_codes: list[np.ndarray] = []
        self.sig_names: list[str] = []
        self.sig_sizes: list[int] = []
        self.params_pool: list[dict] = []
        self.deps_map: dict[int, tuple[str, ...]] = {}
        self.dirty = True
        self._sig_index: dict[str, int] | None = {}
        self._filtered_cache: dict[int, list[np.ndarray]] = {}
        self._sig_bytes: np.ndarray | None = None
        self._nbytes_cache: int | None = None

    @property
    def n(self) -> int:
        return len(self.job_ids)

    # -- interning -----------------------------------------------------------
    def _sig_lookup(self) -> dict[str, int]:
        if self._sig_index is None:
            self._sig_index = {s: i for i, s in enumerate(self.sig_names)}
        return self._sig_index

    def _intern_sigs(self, names: list[str], sizes: list[int]) -> np.ndarray:
        index = self._sig_lookup()
        codes = np.empty(len(names), dtype=np.uint32)
        for i, (name, size) in enumerate(zip(names, sizes)):
            code = index.get(name)
            if code is None:
                code = len(self.sig_names)
                index[name] = code
                self.sig_names.append(name)
                self.sig_sizes.append(size)
            codes[i] = code
        return codes

    def _invalidate(self) -> None:
        self.dirty = True
        self._filtered_cache = {}
        self._sig_bytes = None
        self._nbytes_cache = None

    def add_plan(
        self,
        plan: Expression,
        template: str,
        strict: str,
        sig_names: list[str],
        sig_sizes: list[int],
    ) -> int:
        code = len(self.plans)
        self.plans.append(plan)
        self.plan_templates.append(template)
        self.plan_stricts.append(strict)
        self.plan_sig_codes.append(self._intern_sigs(sig_names, sig_sizes))
        return code

    def add_params(self, plan_code: int, params: dict) -> int:
        # Parameter dicts are interned per (plan, contents): recurring
        # instances share one dict, ad-hoc jobs get their own.
        for code in range(len(self.params_pool) - 1, -1, -1):
            if self.params_pool[code] == params:
                return code
        self.params_pool.append(dict(params))
        return len(self.params_pool) - 1

    # -- appends -------------------------------------------------------------
    def append_row(
        self,
        job_id: str,
        submit_hour: float,
        plan_code: int,
        param_code: int,
        depends_on: tuple[str, ...],
    ) -> int:
        row = self.n
        self.job_ids.append(job_id)
        self.submit_hours.append(submit_hour)
        self.plan_codes.append(plan_code)
        self.param_codes.append(param_code)
        if depends_on:
            self.deps_map[row] = tuple(depends_on)
        self._invalidate()
        return row

    def append_batch(self, batch: JobBatch) -> None:
        base_row = self.n
        plan_offset = np.uint32(len(self.plans))
        if not self.plans:
            # Fresh chunk (the one-batch-per-day hot path): adopt the
            # batch's pre-interned pools wholesale — zero per-sig work.
            self.sig_names = list(batch.sig_names)
            self.sig_sizes = list(batch.sig_sizes)
            self._sig_index = None
            self.plan_sig_codes = list(batch.plan_sig_codes)
        else:
            remap = np.empty(len(batch.sig_names), dtype=np.uint32)
            index = self._sig_lookup()
            for i, (name, size) in enumerate(
                zip(batch.sig_names, batch.sig_sizes)
            ):
                code = index.get(name)
                if code is None:
                    code = len(self.sig_names)
                    index[name] = code
                    self.sig_names.append(name)
                    self.sig_sizes.append(size)
                remap[i] = code
            self.plan_sig_codes.extend(
                remap[codes] for codes in batch.plan_sig_codes
            )
        self.plans.extend(batch.plans)
        self.plan_templates.extend(batch.plan_templates)
        self.plan_stricts.extend(batch.plan_stricts)
        param_offset = np.uint32(len(self.params_pool))
        self.params_pool.extend(dict(p) for p in batch.params_pool)
        self.job_ids.extend(batch.job_ids)
        self.submit_hours.extend(batch.submit_hours)
        self.plan_codes.extend(batch.plan_codes + plan_offset)
        self.param_codes.extend(batch.param_codes + param_offset)
        for row, deps in batch.deps_map.items():
            self.deps_map[base_row + row] = deps
        self._invalidate()

    # -- reads ---------------------------------------------------------------
    def record(self, row: int) -> JobRecord:
        plan_code = int(self.plan_codes.array()[row])
        plan = self.plans[plan_code]
        strict_map, template_map = enumerate_all_signatures(plan)
        return JobRecord(
            job_id=self.job_ids[row],
            submit_hour=float(self.submit_hours.array()[row]),
            plan=plan,
            template=self.plan_templates[plan_code],
            strict=self.plan_stricts[plan_code],
            subexpression_templates=template_map,
            subexpression_strict=strict_map,
            params=dict(self.params_pool[int(self.param_codes.array()[row])]),
            depends_on=self.deps_map.get(row, ()),
        )

    def records(self) -> list[JobRecord]:
        return [self.record(row) for row in range(self.n)]

    def filtered_sig_codes(self, min_size: int) -> list[np.ndarray]:
        """Per-plan strict-sig codes with node size >= ``min_size``."""
        cached = self._filtered_cache.get(min_size)
        if cached is None:
            keep = np.asarray(self.sig_sizes, dtype=np.int64) >= min_size
            cached = [codes[keep[codes]] for codes in self.plan_sig_codes]
            self._filtered_cache[min_size] = cached
        return cached

    def sig_bytes(self) -> np.ndarray:
        """The signature pool as a fixed-width ascii array (for shm)."""
        if self._sig_bytes is None:
            self._sig_bytes = np.asarray(self.sig_names, dtype="S")
        return self._sig_bytes

    def sig_rows(self, min_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(job_row, sig_code)`` streams, job-major, walk order.

        Row order is exactly what a serial scan of per-record
        ``subexpression_strict`` dicts produces — the invariant the
        byte-identical sharing statistics rest on.
        """
        filt = self.filtered_sig_codes(min_size)
        plan_codes = self.plan_codes.array()
        if not len(plan_codes):
            empty = np.empty(0, dtype=np.uint32)
            return empty, empty
        lens = np.fromiter(
            (len(a) for a in filt), dtype=np.int64, count=len(filt)
        )
        data = (
            np.concatenate(filt)
            if filt
            else np.empty(0, dtype=np.uint32)
        )
        offs = np.concatenate(([0], np.cumsum(lens)))[:-1]
        counts = lens[plan_codes]
        total = int(counts.sum())
        flat_job = np.repeat(
            np.arange(len(plan_codes), dtype=np.uint32), counts
        )
        starts = np.repeat(offs[plan_codes], counts)
        base = np.repeat(np.cumsum(counts) - counts, counts)
        flat_sig = data[starts + (np.arange(total) - base)]
        return flat_job, flat_sig.astype(np.uint32, copy=False)

    # -- bookkeeping ---------------------------------------------------------
    def nbytes(self) -> int:
        """Rough resident-size estimate driving the LRU budget."""
        if self._nbytes_cache is None:
            n = self.n
            array_bytes = (
                self.submit_hours.nbytes()
                + self.plan_codes.nbytes()
                + self.param_codes.nbytes()
            )
            sig_bytes = sum(codes.nbytes for codes in self.plan_sig_codes)
            string_bytes = 64 * n  # job-id strings + list slots
            # A unique plan retains its Expression tree plus memoized
            # signature maps — ~2.9 KB resident, calibrated against RSS
            # deltas at 100k jobs/day (36k plans -> ~120 MB/chunk).
            pool_bytes = 2900 * len(self.plans) + sum(
                len(s) + 56 for s in self.sig_names
            )
            deps_bytes = 120 * len(self.deps_map)
            self._nbytes_cache = (
                array_bytes + sig_bytes + string_bytes + pool_bytes + deps_bytes
            )
        return self._nbytes_cache

    def __getstate__(self) -> dict:
        return {
            "day": self.day,
            "job_ids": self.job_ids,
            "submit_hours": self.submit_hours.array(),
            "plan_codes": self.plan_codes.array(),
            "param_codes": self.param_codes.array(),
            "plans": self.plans,
            "plan_templates": self.plan_templates,
            "plan_stricts": self.plan_stricts,
            "plan_sig_codes": self.plan_sig_codes,
            "sig_names": self.sig_names,
            "sig_sizes": self.sig_sizes,
            "params_pool": self.params_pool,
            "deps_map": self.deps_map,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["day"])
        self.job_ids = state["job_ids"]
        self.submit_hours.extend(state["submit_hours"])
        self.plan_codes.extend(state["plan_codes"])
        self.param_codes.extend(state["param_codes"])
        self.plans = state["plans"]
        self.plan_templates = state["plan_templates"]
        self.plan_stricts = state["plan_stricts"]
        self.plan_sig_codes = state["plan_sig_codes"]
        self.sig_names = state["sig_names"]
        self.sig_sizes = state["sig_sizes"]
        self.params_pool = state["params_pool"]
        self.deps_map = state["deps_map"]
        self._sig_index = None
        self.dirty = False


# ---------------------------------------------------------------------------
# the chunked, spilling job table
# ---------------------------------------------------------------------------


class JobTable:
    """Day chunks behind an LRU cache with disk spill.

    ``memory_budget_bytes`` caps the estimated resident size of hot
    chunks; when exceeded (and ``spill_dir`` is set) the least recently
    used cold day is pickled to ``spill_dir`` and dropped.  Without a
    spill directory the table is fully in-memory and the budget is
    inert — exactly the old repository behaviour.

    Per-day uint64 id-hash indexes (12 bytes/job) stay resident even
    for spilled days, so duplicate detection and ``job()`` lookups
    never page a chunk back in unless they actually hit.
    """

    def __init__(
        self,
        memory_budget_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.chunks: dict[int, DayChunk] = {}     # hot, LRU order
        self.chunk_files: dict[int, str] = {}     # spilled day -> file name
        self.day_counts: dict[int, int] = {}      # every day ever seen
        self.day_order: list[int] = []            # first-appearance order
        self.closed_index: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.open_day: int | None = None
        self._open_map: dict[str, int] = {}
        self._open_segments: list[tuple[np.ndarray, np.ndarray]] = []
        self.reopened = False
        self.n_jobs = 0
        self.spills = 0
        self.loads = 0
        # Derived cache: one (hashes, days, rows) triple merge-sorted
        # across every closed day, so membership probes cost a single
        # searchsorted instead of one per historical day.  Lazily built,
        # extended in place at close_day, dropped on reopen; never
        # pickled (rebuilt on demand after a restore).
        self._global_index: (
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ) = None

    # -- chunk access --------------------------------------------------------
    def _touch(self, day: int) -> None:
        chunk = self.chunks.pop(day)
        self.chunks[day] = chunk

    def chunk(self, day: int) -> DayChunk:
        chunk = self.chunks.get(day)
        if chunk is not None:
            self._touch(day)
            return chunk
        name = self.chunk_files.get(day)
        if name is None:
            raise KeyError(day)
        with (self.spill_dir / name).open("rb") as fh:
            chunk = pickle.load(fh)
        self.loads += 1
        self.chunks[day] = chunk
        self._enforce_budget()
        return chunk

    def _ensure_open(self, day: int) -> DayChunk:
        if self.open_day == day:
            chunk = self.chunks[day]
            self._touch(day)
            return chunk
        if self.open_day is not None:
            self.close_day(self.open_day)
        if day in self.day_counts:
            # Reopening a closed day: fold its finished index back into
            # the open-day segments and drop the derived global order.
            chunk = self.chunk(day)
            self.open_day = day
            self._open_map = {}
            self._open_segments = [self.closed_index.pop(day)]
            self._global_index = None
            self.reopened = True
        else:
            chunk = DayChunk(day)
            self.chunks[day] = chunk
            self.day_counts[day] = 0
            self.day_order.append(day)
            self.open_day = day
            self._open_map = {}
            self._open_segments = []
        return chunk

    def close_day(self, day: int) -> None:
        """Finalize a day: build its sorted id-hash index, free lookups."""
        if self.open_day != day:
            return
        rows: list[np.ndarray] = []
        hashes: list[np.ndarray] = []
        for seg_hashes, seg_rows in self._open_segments:
            hashes.append(seg_hashes)
            rows.append(seg_rows)
        if self._open_map:
            hashes.append(_hash_ids(list(self._open_map)))
            rows.append(
                np.fromiter(
                    self._open_map.values(),
                    dtype=np.uint32,
                    count=len(self._open_map),
                )
            )
        if hashes:
            all_hashes = np.concatenate(hashes)
            all_rows = np.concatenate(rows)
            order = np.argsort(all_hashes, kind="stable")
            self.closed_index[day] = (all_hashes[order], all_rows[order])
        else:
            self.closed_index[day] = (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.uint32),
            )
        if self._global_index is not None:
            # Merge the finished day into the global index in place —
            # one searchsorted + three inserts, not a full rebuild.
            day_hashes, day_rows = self.closed_index[day]
            if len(day_hashes):
                gl_hashes, gl_days, gl_rows = self._global_index
                at = np.searchsorted(gl_hashes, day_hashes)
                self._global_index = (
                    np.insert(gl_hashes, at, day_hashes),
                    np.insert(gl_days, at, np.int32(day)),
                    np.insert(gl_rows, at, day_rows),
                )
        self.open_day = None
        self._open_map = {}
        self._open_segments = []
        self._enforce_budget()

    # -- membership ----------------------------------------------------------
    def _merged_index(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted (hashes, days, rows) across every *closed* day."""
        merged = self._global_index
        if merged is not None:
            return merged
        hashes: list[np.ndarray] = []
        days: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        for day, (idx_hashes, idx_rows) in self.closed_index.items():
            if len(idx_hashes):
                hashes.append(idx_hashes)
                days.append(np.full(len(idx_hashes), day, dtype=np.int32))
                rows.append(idx_rows)
        if hashes:
            all_hashes = np.concatenate(hashes)
            order = np.argsort(all_hashes, kind="stable")
            merged = (
                all_hashes[order],
                np.concatenate(days)[order],
                np.concatenate(rows)[order],
            )
        else:
            merged = (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.uint32),
            )
        self._global_index = merged
        return merged

    def _day_has(self, day: int, job_id: str, h: np.uint64) -> int | None:
        """Row of ``job_id`` on ``day`` if present (hash + verify)."""
        if day == self.open_day:
            row = self._open_map.get(job_id)
            if row is not None:
                return row
            for seg_hashes, seg_rows in self._open_segments:
                lo = int(np.searchsorted(seg_hashes, h, side="left"))
                hi = int(np.searchsorted(seg_hashes, h, side="right"))
                for at in range(lo, hi):
                    row = int(seg_rows[at])
                    if self.chunks[day].job_ids[row] == job_id:
                        return row
            return None
        index = self.closed_index.get(day)
        if index is None:
            return None
        idx_hashes, idx_rows = index
        lo = int(np.searchsorted(idx_hashes, h, side="left"))
        hi = int(np.searchsorted(idx_hashes, h, side="right"))
        for at in range(lo, hi):
            row = int(idx_rows[at])
            if self.chunk(day).job_ids[row] == job_id:
                return row
        return None

    def find(self, job_id: str) -> tuple[int, int] | None:
        """(day, row) of ``job_id`` anywhere in the table."""
        h = _hash_ids([job_id])[0]
        if self.open_day is not None:
            row = self._day_has(self.open_day, job_id, h)
            if row is not None:
                return self.open_day, row
        gl_hashes, gl_days, gl_rows = self._merged_index()
        lo = int(np.searchsorted(gl_hashes, h, side="left"))
        hi = int(np.searchsorted(gl_hashes, h, side="right"))
        for at in range(lo, hi):
            day = int(gl_days[at])
            row = int(gl_rows[at])
            if self.chunk(day).job_ids[row] == job_id:
                return day, row
        return None

    # -- appends -------------------------------------------------------------
    def append_job(
        self,
        day: int,
        job_id: str,
        submit_hour: float,
        plan: Expression,
        template: str,
        strict: str,
        sig_names: list[str],
        sig_sizes: list[int],
        params: dict,
        depends_on: tuple[str, ...],
    ) -> DayChunk:
        if self.find(job_id) is not None:
            raise ValueError(f"job {job_id!r} already ingested")
        chunk = self._ensure_open(day)
        plan_code = chunk.add_plan(plan, template, strict, sig_names, sig_sizes)
        param_code = chunk.add_params(plan_code, params)
        row = chunk.append_row(
            job_id, submit_hour, plan_code, param_code, depends_on
        )
        self._open_map[job_id] = row
        self.day_counts[day] = chunk.n
        self.n_jobs += 1
        self._enforce_budget()
        return chunk

    def append_batch(self, batch: JobBatch) -> DayChunk:
        hashes = _hash_ids(batch.job_ids)
        uniq, first, counts = np.unique(
            hashes, return_index=True, return_counts=True
        )
        if (counts > 1).any() and len(set(batch.job_ids)) != len(batch.job_ids):
            seen: set[str] = set()
            for job_id in batch.job_ids:
                if job_id in seen:
                    raise ValueError(f"job {job_id!r} already ingested")
                seen.add(job_id)
        chunk = self._ensure_open(batch.day)
        base_row = chunk.n
        # Cross-day duplicate probe against the single merged index:
        # one searchsorted for the whole batch regardless of how many
        # historical days exist, verifying only hash collisions.
        gl_hashes, gl_days, gl_rows = self._merged_index()
        if len(gl_hashes):
            lo = np.searchsorted(gl_hashes, uniq, side="left")
            hi = np.searchsorted(gl_hashes, uniq, side="right")
            for pos in np.nonzero(hi > lo)[0]:
                job_id = batch.job_ids[int(first[pos])]
                for at in range(int(lo[pos]), int(hi[pos])):
                    day = int(gl_days[at])
                    if self.chunk(day).job_ids[int(gl_rows[at])] == job_id:
                        raise ValueError(
                            f"job {job_id!r} already ingested"
                        )
        if self._open_map or self._open_segments:
            for pos in range(len(uniq)):
                job_id = batch.job_ids[int(first[pos])]
                if self._day_has(batch.day, job_id, uniq[pos]) is not None:
                    raise ValueError(f"job {job_id!r} already ingested")
        chunk.append_batch(batch)
        order = np.argsort(hashes, kind="stable")
        self._open_segments.append(
            (
                hashes[order],
                (base_row + np.arange(len(batch), dtype=np.uint32))[order],
            )
        )
        self.day_counts[batch.day] = chunk.n
        self.n_jobs += len(batch)
        self._enforce_budget()
        return chunk

    # -- eviction ------------------------------------------------------------
    def hot_bytes(self) -> int:
        return sum(chunk.nbytes() for chunk in self.chunks.values())

    def _spill_chunk(self, day: int) -> None:
        chunk = self.chunks[day]
        name = f"day-{day:05d}.chunk"
        if chunk.dirty or day not in self.chunk_files:
            path = self.spill_dir / name
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            with tmp.open("wb") as fh:
                pickle.dump(chunk, fh, protocol=4)
            tmp.replace(path)
            chunk.dirty = False
            self.spills += 1
        self.chunk_files[day] = name
        del self.chunks[day]

    def _enforce_budget(self) -> None:
        if self.memory_budget_bytes is None or self.spill_dir is None:
            return
        while len(self.chunks) > 1 and self.hot_bytes() > self.memory_budget_bytes:
            victim = next(
                (d for d in self.chunks if d != self.open_day), None
            )
            if victim is None:
                break
            self._spill_chunk(victim)

    def flush(self) -> None:
        """Write every dirty hot chunk to the spill dir (keeps them hot)."""
        if self.spill_dir is None:
            return
        for day, chunk in self.chunks.items():
            if chunk.dirty or day not in self.chunk_files:
                name = f"day-{day:05d}.chunk"
                path = self.spill_dir / name
                self.spill_dir.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(path.name + ".tmp")
                with tmp.open("wb") as fh:
                    pickle.dump(chunk, fh, protocol=4)
                tmp.replace(path)
                chunk.dirty = False
                self.chunk_files[day] = name

    # -- iteration -----------------------------------------------------------
    def iter_id_deps(self):
        """(job_id, depends_on) pairs in global ingestion order, lazily."""
        for day in self.day_order:
            chunk = self.chunk(day)
            deps_map = chunk.deps_map
            for row, job_id in enumerate(chunk.job_ids):
                yield job_id, deps_map.get(row, ())

    def stats(self) -> dict:
        return {
            "jobs": self.n_jobs,
            "days": len(self.day_counts),
            "hot_chunks": len(self.chunks),
            "spilled_chunks": len(self.chunk_files),
            "hot_bytes": self.hot_bytes(),
            "memory_budget_bytes": self.memory_budget_bytes,
            "spills": self.spills,
            "loads": self.loads,
        }

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = {
            name: getattr(self, name)
            for name in (
                "memory_budget_bytes", "day_counts", "day_order",
                "closed_index", "open_day", "_open_map", "_open_segments",
                "reopened", "n_jobs", "spills", "loads", "chunk_files",
            )
        }
        state["spill_dir"] = str(self.spill_dir) if self.spill_dir else None
        if self.spill_dir is not None:
            # Manifest mode: chunks live as spill files; the pickle
            # carries only their names (plus the open day inline so a
            # restore never depends on a mid-day flush).
            self.flush()
            state["inline_chunks"] = {
                day: chunk
                for day, chunk in self.chunks.items()
                if day == self.open_day
            }
        else:
            state["inline_chunks"] = dict(self.chunks)
            state["chunk_files"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            memory_budget_bytes=state["memory_budget_bytes"],
            spill_dir=state["spill_dir"],
        )
        for name in (
            "day_counts", "day_order", "closed_index", "open_day",
            "_open_map", "_open_segments", "reopened", "n_jobs",
            "spills", "loads", "chunk_files",
        ):
            setattr(self, name, state[name])
        self.chunks = dict(state["inline_chunks"])
        for chunk in self.chunks.values():
            if self.spill_dir is None:
                chunk.dirty = True


class _RecordsView:
    """Sequence view over every record, materialized on demand."""

    def __init__(self, repo: "WorkloadRepository") -> None:
        self._repo = repo

    def __len__(self) -> int:
        return len(self._repo)

    def __iter__(self):
        table = self._repo._table
        for day in table.day_order:
            chunk = table.chunk(day)
            for row in range(chunk.n):
                yield chunk.record(row)

    def _locate(self, index: int) -> JobRecord:
        table = self._repo._table
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("record index out of range")
        for day in table.day_order:
            count = table.day_counts[day]
            if index < count:
                return table.chunk(day).record(index)
            index -= count
        raise IndexError("record index out of range")

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._locate(i) for i in range(*index.indices(len(self)))]
        return self._locate(index)


# ---------------------------------------------------------------------------
# the repository
# ---------------------------------------------------------------------------


class WorkloadRepository:
    """Signature-indexed store of everything the platform has seen.

    Default construction is fully in-memory and behaviourally identical
    to the historical list-based repository.  Passing
    ``memory_budget_bytes`` + ``spill_dir`` bounds resident memory: cold
    day chunks spill to disk and reload transparently on access.
    """

    def __init__(
        self,
        memory_budget_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        self._table = JobTable(memory_budget_bytes, spill_dir)
        # sig -> [set of days, instance count], first-sighting order.
        self._template_stats: dict[str, list] = {}
        self._day_summaries: dict[tuple[int, int], tuple[int, tuple]] = {}
        self._closed_involved: dict[int, int] = {}
        self._dep_fallback = False
        self._days_cache: list[int] | None = None
        # min_size -> append-only whole-history (job, sig) block; see
        # :meth:`sig_table`.  Derived, potentially large: never pickled.
        self._sig_table_cache: dict[int, dict] = {}

    def __len__(self) -> int:
        return self._table.n_jobs

    @property
    def records(self) -> _RecordsView:
        return _RecordsView(self)

    # -- ingestion -----------------------------------------------------------
    def _note_day_rollover(self, day: int) -> None:
        previous = self._table.open_day
        if previous is not None and previous != day:
            self._resolve_involved(previous, closing=True)
            self._table.close_day(previous)

    def _track_templates(self, template: str, day: int, count: int) -> None:
        stat = self._template_stats.get(template)
        if stat is None:
            self._template_stats[template] = [{day}, count]
        else:
            stat[0].add(day)
            stat[1] += count

    def ingest_job(self, job: Job) -> JobRecord:
        # One bottom-up pass hashes every node; the full-plan signatures
        # and both subexpression maps come out of the same traversal.
        strict_map, template_map = enumerate_all_signatures(job.plan)
        plan_sigs = signatures(job.plan)
        day = job.day
        self._note_day_rollover(day)
        self._table.append_job(
            day=day,
            job_id=job.job_id,
            submit_hour=job.submit_hour,
            plan=job.plan,
            template=plan_sigs.template,
            strict=plan_sigs.strict,
            sig_names=list(strict_map),
            sig_sizes=[node.size for node in strict_map.values()],
            params=dict(job.params),
            depends_on=job.depends_on,
        )
        self._track_templates(plan_sigs.template, day, 1)
        self._invalidate_day(day)
        return JobRecord(
            job_id=job.job_id,
            submit_hour=job.submit_hour,
            plan=job.plan,
            template=plan_sigs.template,
            strict=plan_sigs.strict,
            subexpression_templates=template_map,
            subexpression_strict=strict_map,
            params=dict(job.params),
            depends_on=job.depends_on,
        )

    def ingest_batch(self, batch: JobBatch | list[Job]) -> int:
        """Bulk-append one day's columnar batch; returns rows added."""
        if not isinstance(batch, JobBatch):
            batch = JobBatch.from_jobs(batch)
        self._note_day_rollover(batch.day)
        self._table.append_batch(batch)
        plan_rows = np.bincount(
            batch.plan_codes, minlength=len(batch.plans)
        )
        for template, rows in zip(batch.plan_templates, plan_rows):
            self._track_templates(template, batch.day, int(rows))
        self._invalidate_day(batch.day)
        return len(batch)

    def ingest(self, workload: Workload) -> "WorkloadRepository":
        for job in workload.jobs:
            self.ingest_job(job)
        return self

    def _invalidate_day(self, day: int) -> None:
        if self._days_cache is not None and (
            not self._days_cache or day not in self._table.day_counts
            or self._days_cache[-1] < day or day not in self._days_cache
        ):
            self._days_cache = None
        for key in [k for k in self._day_summaries if k[0] == day]:
            del self._day_summaries[key]
        self._closed_involved.pop(day, None)
        # A day already folded into a cached sig table mutated (reopen
        # or same-day re-ingest): that block can no longer be extended
        # append-only, so drop it.  Brand-new days leave caches intact —
        # they are appended on the next sig_table call.
        for min_size in [
            m
            for m, state in self._sig_table_cache.items()
            if day in state["days"]
        ]:
            del self._sig_table_cache[min_size]

    # -- dependency involvement ---------------------------------------------
    def _resolve_involved(self, day: int, closing: bool = False) -> int:
        """Distinct ids involved in dependencies on ``day`` (cached)."""
        cached = self._closed_involved.get(day)
        if cached is not None and not closing:
            return cached
        chunk = self._table.chunk(day)
        involved: set[str] = set()
        foreign = False
        own_ids: set[str] | None = None
        for row, deps in chunk.deps_map.items():
            involved.add(chunk.job_ids[row])
            involved.update(deps)
            if not foreign:
                if own_ids is None:
                    own_ids = set(chunk.job_ids)
                foreign = any(dep not in own_ids for dep in deps)
        if foreign:
            # A dependency names a job outside this day: per-day counts
            # are no longer disjoint, so analysis falls back to the
            # exact global union.
            self._dep_fallback = True
        count = len(involved)
        self._closed_involved[day] = count
        return count

    def dependency_involved(self) -> int:
        """Distinct job ids participating in any dependency edge."""
        if self._dep_fallback:
            involved: set[str] = set()
            for job_id, deps in self._table.iter_id_deps():
                if deps:
                    involved.add(job_id)
                    involved.update(deps)
            return len(involved)
        return sum(
            self._resolve_involved(day) for day in self._table.day_order
        )

    # -- incremental statistics ----------------------------------------------
    def template_stats(self) -> dict[str, tuple[int, int]]:
        """sig -> (distinct days, instances), first-sighting order."""
        return {
            sig: (len(days), count)
            for sig, (days, count) in self._template_stats.items()
        }

    def day_sharing_summary(
        self, day: int, min_size: int = 2
    ) -> tuple[int, int, int, dict[str, int]]:
        """One day's sharing statistics, vectorized over the chunk.

        Returns ``(day, n_jobs, n_sharing_jobs, {sig: jobs sharing})``
        with dict order equal to first-sighting order — byte-identical
        to a serial scan over per-record signature dicts.  Summaries of
        finished days are cached, so re-analysis after each fabric tick
        only computes the newest day.
        """
        n_jobs = self._table.day_counts.get(day, 0)
        key = (day, min_size)
        cached = self._day_summaries.get(key)
        if cached is not None and cached[0] == n_jobs:
            return cached[1]
        chunk = self._table.chunk(day)
        flat_job, flat_sig = chunk.sig_rows(min_size)
        if len(flat_sig):
            per_sig = np.bincount(flat_sig, minlength=len(chunk.sig_names))
            shared_mask = per_sig > 1
            flat_shared = shared_mask[flat_sig]
            n_sharing = int(np.unique(flat_job[flat_shared]).size)
            codes, first_pos = np.unique(flat_sig, return_index=True)
            keep = shared_mask[codes]
            codes, first_pos = codes[keep], first_pos[keep]
            order = np.argsort(first_pos, kind="stable")
            shared = {
                chunk.sig_names[int(code)]: int(per_sig[int(code)])
                for code in codes[order]
            }
        else:
            n_sharing = 0
            shared = {}
        summary = (day, n_jobs, n_sharing, shared)
        self._day_summaries[key] = (n_jobs, summary)
        return summary

    def day_sig_table(self, day: int, min_size: int = 2):
        """(local_rows, sig_bytes, n_jobs) for the shared-memory table."""
        chunk = self._table.chunk(day)
        flat_job, flat_sig = chunk.sig_rows(min_size)
        return flat_job, chunk.sig_bytes()[flat_sig], chunk.n

    def sig_table(
        self, min_size: int = 2
    ) -> tuple[np.ndarray, list[tuple[int, int, int, int]]]:
        """Whole-history (job, signature) block, memoized append-only.

        The structured ``(job_code, sig_bytes)`` array the parallel
        analyze path publishes to shared memory.  Per call, only days
        ingested since the last call are gathered from their chunks;
        already-cached days extend with one memcpy and never reload a
        (possibly spilled) chunk again — analyze cost per tick stays
        O(new day), not O(history).  If a new day's signature pool is
        wider than the cached block, the block is recast to the wider
        byte width (zero-padded, exactly like a fresh build).  Job
        codes are the day's global row offset plus the local row.
        Returns ``(table, slices)`` with per-day
        ``(day, start_row, stop_row, n_jobs)`` slices.
        """
        counts = self._table.day_counts
        days = self.days()
        state = self._sig_table_cache.get(min_size)
        if state is not None:
            cached_days = state["days"]
            fresh = all(counts.get(d) == n for d, n in cached_days.items())
            new_days = [d for d in days if d not in cached_days]
            if (
                fresh
                and cached_days
                and new_days
                and min(new_days) < max(cached_days)
            ):
                # A day arrived out of order: appending would scramble
                # the sorted-day layout, so rebuild from scratch.
                fresh = False
            if not fresh:
                state = None
        if state is None:
            state = {"days": {}, "table": None, "slices": [], "offset": 0}
            self._sig_table_cache[min_size] = state
            new_days = days
        table = state["table"]
        if table is None:
            table = np.zeros(
                0, dtype=[("job", np.uint32), ("sig", "S1")]
            )
        if new_days:
            width = table.dtype["sig"].itemsize
            parts_job: list[np.ndarray] = []
            parts_sig: list[np.ndarray] = []
            total = len(table)
            offset = state["offset"]
            slices = state["slices"]
            for day in new_days:
                flat_job, flat_sig, n_jobs = self.day_sig_table(
                    day, min_size
                )
                start = total
                total += len(flat_job)
                parts_job.append(flat_job.astype(np.uint64) + offset)
                parts_sig.append(flat_sig)
                if len(flat_sig):
                    width = max(width, flat_sig.dtype.itemsize)
                slices.append((day, start, total, n_jobs))
                offset += n_jobs
                state["days"][day] = n_jobs
            dtype = [("job", np.uint32), ("sig", f"S{width}")]
            grown = np.zeros(total, dtype=dtype)
            n_old = len(table)
            if n_old:
                grown[:n_old] = table.astype(dtype, copy=False)
            if total > n_old:
                grown["job"][n_old:] = np.concatenate(parts_job)
                grown["sig"][n_old:] = np.concatenate(
                    [p.astype(f"S{width}") for p in parts_sig if len(p)]
                )
            table = grown
            state["table"] = table
            state["offset"] = offset
        return table, list(state["slices"])

    # -- access --------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord:
        found = self._table.find(job_id)
        if found is None:
            raise KeyError(f"unknown job {job_id!r}")
        day, row = found
        return self._table.chunk(day).record(row)

    def templates(self) -> dict[str, list[JobRecord]]:
        grouped: dict[str, list[JobRecord]] = {
            sig: [] for sig in self._template_stats
        }
        for record in self.records:
            grouped[record.template].append(record)
        return grouped

    def instances_of(self, template: str) -> list[JobRecord]:
        if template not in self._template_stats:
            return []
        return [r for r in self.records if r.template == template]

    def by_day(self, day: int) -> list[JobRecord]:
        """Records of one day, in ingestion order (day-indexed: no scan)."""
        if day not in self._table.day_counts:
            return []
        return self._table.chunk(day).records()

    def days(self) -> list[int]:
        if self._days_cache is None:
            self._days_cache = sorted(self._table.day_counts)
        return list(self._days_cache)

    def dependency_graph(self) -> nx.DiGraph:
        """Job-level DAG: edge producer -> consumer."""
        graph = nx.DiGraph()
        for job_id, deps in self._table.iter_id_deps():
            graph.add_node(job_id)
            for dep in deps:
                graph.add_edge(dep, job_id)
        return graph

    # -- operations ----------------------------------------------------------
    @property
    def memory_budget_bytes(self) -> int | None:
        return self._table.memory_budget_bytes

    @property
    def spill_dir(self) -> Path | None:
        return self._table.spill_dir

    def flush(self) -> None:
        """Spill every dirty chunk so the on-disk manifest is complete."""
        self._table.flush()

    def chunk_stats(self) -> dict:
        """Hot/spilled chunk counts and byte estimates (ops surface)."""
        return self._table.stats()

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # The whole-history sig block is derived and can be tens of MB;
        # checkpoints rebuild it lazily on the first analyze.
        state["_sig_table_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_sig_table_cache", {})
