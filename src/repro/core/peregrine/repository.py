"""Engine-agnostic workload representation.

The repository ingests jobs from any engine (here: the SCOPE-like
generator) and flattens them into a representation that every learned
component shares: template signatures for grouping, strict signatures for
reuse detection, parameter vectors for micromodel features, and
dependency edges for pipeline analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import networkx as nx

from repro.engine import Expression
from repro.engine.signatures import enumerate_all_signatures, signatures
from repro.workloads.scope import Job, Workload


@dataclass
class JobRecord:
    """One ingested job in the engine-agnostic representation."""

    job_id: str
    submit_hour: float
    plan: Expression
    template: str                     # template signature of the full plan
    strict: str                       # strict signature of the full plan
    subexpression_templates: dict[str, Expression]
    subexpression_strict: dict[str, Expression]
    params: dict[str, float]
    depends_on: tuple[str, ...]

    @property
    def day(self) -> int:
        return int(self.submit_hour // 24)


class WorkloadRepository:
    """Signature-indexed store of everything the platform has seen."""

    def __init__(self) -> None:
        self.records: list[JobRecord] = []
        self._by_template: dict[str, list[JobRecord]] = defaultdict(list)
        self._by_job_id: dict[str, JobRecord] = {}
        self._by_day: dict[int, list[JobRecord]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self.records)

    # -- ingestion --------------------------------------------------------------
    def ingest_job(self, job: Job) -> JobRecord:
        # One bottom-up pass hashes every node; the full-plan signatures
        # and both subexpression maps come out of the same traversal.
        strict_map, template_map = enumerate_all_signatures(job.plan)
        plan_sigs = signatures(job.plan)
        record = JobRecord(
            job_id=job.job_id,
            submit_hour=job.submit_hour,
            plan=job.plan,
            template=plan_sigs.template,
            strict=plan_sigs.strict,
            subexpression_templates=template_map,
            subexpression_strict=strict_map,
            params=dict(job.params),
            depends_on=job.depends_on,
        )
        if record.job_id in self._by_job_id:
            raise ValueError(f"job {record.job_id!r} already ingested")
        self.records.append(record)
        self._by_template[record.template].append(record)
        self._by_job_id[record.job_id] = record
        self._by_day[record.day].append(record)
        return record

    def ingest(self, workload: Workload) -> "WorkloadRepository":
        for job in workload.jobs:
            self.ingest_job(job)
        return self

    # -- access --------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord:
        try:
            return self._by_job_id[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def templates(self) -> dict[str, list[JobRecord]]:
        return dict(self._by_template)

    def instances_of(self, template: str) -> list[JobRecord]:
        return list(self._by_template.get(template, []))

    def by_day(self, day: int) -> list[JobRecord]:
        """Records of one day, in ingestion order (day-indexed: no scan)."""
        return list(self._by_day.get(day, ()))

    def days(self) -> list[int]:
        return sorted(self._by_day)

    def dependency_graph(self) -> nx.DiGraph:
        """Job-level DAG: edge producer -> consumer."""
        graph = nx.DiGraph()
        for record in self.records:
            graph.add_node(record.job_id)
            for dep in record.depends_on:
                graph.add_edge(dep, record.job_id)
        return graph
