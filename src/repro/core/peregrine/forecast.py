"""Workload forecasting: "workloads evolve over time, and as such, we
also learn the evolving nature of the historical workloads to forecast
future workloads" (Section 4.2, Workload Analysis).

Two forecasts matter downstream:

- *volume*: how many jobs (per template or overall) to expect tomorrow,
  used for capacity planning and view-selection budgets, and
- *parameters*: where a template's predicate literals are heading, used
  to decide whether a trained micromodel will extrapolate safely.
"""

from __future__ import annotations

import numpy as np

from repro.ml import LinearRegression
from repro.core.peregrine.repository import WorkloadRepository


def forecast_daily_volume(
    repo: WorkloadRepository, horizon_days: int = 1
) -> np.ndarray:
    """Forecast total jobs/day with a linear trend over observed days.

    Falls back to repeating the last day's count when only one day has
    been observed.
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    days = repo.days()
    if not days:
        raise ValueError("repository is empty")
    counts = np.array([len(repo.by_day(d)) for d in days], dtype=float)
    if len(days) == 1:
        return np.full(horizon_days, counts[-1])
    model = LinearRegression().fit(np.array(days, dtype=float), counts)
    future = np.array(
        [days[-1] + k for k in range(1, horizon_days + 1)], dtype=float
    )
    return np.maximum(0.0, model.predict(future))


def forecast_template_parameter(
    repo: WorkloadRepository,
    template: str,
    param_key: str = "filter_value",
    horizon_days: int = 1,
) -> np.ndarray:
    """Extrapolate a recurring template's drifting parameter.

    Returns the forecast values for the next ``horizon_days`` instances;
    raises if the template has no history carrying ``param_key``.
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    instances = repo.instances_of(template)
    history = [
        (r.day, r.params[param_key])
        for r in instances
        if param_key in r.params
    ]
    if not history:
        raise KeyError(
            f"template {template!r} has no parameter {param_key!r}"
        )
    days = np.array([d for d, _ in history], dtype=float)
    values = np.array([v for _, v in history], dtype=float)
    if len(history) == 1:
        return np.full(horizon_days, values[-1])
    model = LinearRegression().fit(days, values)
    future = np.array(
        [days[-1] + k for k in range(1, horizon_days + 1)]
    )
    return model.predict(future)
