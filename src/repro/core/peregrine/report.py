"""Workload analysis reports: the human-facing side of Peregrine.

Production workload analysis feeds engineers as well as models; this
renders the repository's statistics as a markdown document — template
league tables, per-day sharing, pipeline shapes — the kind of artifact
attached to capacity reviews.
"""

from __future__ import annotations

import networkx as nx

from repro.core.peregrine.analysis import analyze, shared_jobs_on_day
from repro.core.peregrine.repository import WorkloadRepository


def _league_table(repo: WorkloadRepository, top: int) -> list[str]:
    counts = sorted(
        ((len(v), k) for k, v in repo.templates().items()), reverse=True
    )
    lines = [
        "| rank | template | instances | days |",
        "|---|---|---|---|",
    ]
    for rank, (count, template) in enumerate(counts[:top], start=1):
        days = {r.day for r in repo.instances_of(template)}
        lines.append(
            f"| {rank} | `{template[:12]}` | {count} | {len(days)} |"
        )
    return lines


def _pipeline_section(repo: WorkloadRepository) -> list[str]:
    graph = repo.dependency_graph()
    components = [
        c for c in nx.weakly_connected_components(graph) if len(c) > 1
    ]
    if not components:
        return ["No inter-job dependencies observed."]
    sizes = sorted((len(c) for c in components), reverse=True)
    depth = 0
    if graph.number_of_edges():
        depth = int(nx.dag_longest_path_length(graph))
    return [
        f"- dependency components: {len(components)}",
        f"- largest component: {sizes[0]} jobs",
        f"- longest producer chain: {depth} hops",
    ]


def workload_report(
    repo: WorkloadRepository, top_templates: int = 10
) -> str:
    """Render the full markdown report for everything ingested."""
    if len(repo) == 0:
        raise ValueError("repository is empty")
    stats = analyze(repo)
    lines = [
        "# Workload analysis report",
        "",
        "## Headline statistics",
        "",
        "| metric | value |",
        "|---|---|",
    ]
    for name, value in stats.summary_rows():
        lines.append(f"| {name} | {value:.3f} |")
    lines += ["", f"## Top recurring templates (of {stats.n_templates})", ""]
    lines += _league_table(repo, top_templates)
    lines += ["", "## Subexpression sharing by day", ""]
    lines += ["| day | jobs | sharing jobs | fraction |", "|---|---|---|---|"]
    for day in repo.days():
        day_jobs = repo.by_day(day)
        sharing, _ = shared_jobs_on_day(repo, day)
        fraction = len(sharing) / max(len(day_jobs), 1)
        lines.append(
            f"| {day} | {len(day_jobs)} | {len(sharing)} | {fraction:.2f} |"
        )
    lines += ["", "## Pipelines", ""]
    lines += _pipeline_section(repo)
    lines.append("")
    return "\n".join(lines)
