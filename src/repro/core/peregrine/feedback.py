"""The workload feedback mechanism: runtime truth flowing back.

"a workload feedback mechanism that enables query engines to respond to
workload feedback" [20].  After a job executes, the engine reports the
*actual* cardinality / runtime of each subexpression; the feedback store
indexes those observations by template signature so micromodels
(:mod:`repro.core.cardinality`, :mod:`repro.core.costmodel`) can train on
them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.engine import Expression, Filter, signatures
from repro.engine.estimator import CardinalityModel
from repro.core.peregrine.repository import JobRecord


def parameter_vector(expr: Expression) -> np.ndarray:
    """Post-order vector of predicate literals: the micromodel features.

    Recurring instances of a template differ only in these literals, so
    this vector is a complete per-instance parameterization.
    """
    values = []
    for node in expr.walk():
        if isinstance(node, Filter):
            values.extend(p.value for p in node.predicates)
    return np.array(values, dtype=float)


@dataclass
class FeedbackEntry:
    """One observed execution of one subexpression."""

    template: str
    params: np.ndarray
    actual_rows: float
    actual_seconds: float | None = None


class WorkloadFeedback:
    """Template-keyed store of runtime observations."""

    def __init__(self) -> None:
        self._entries: dict[str, list[FeedbackEntry]] = defaultdict(list)

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def record(
        self,
        expr: Expression,
        actual_rows: float,
        actual_seconds: float | None = None,
    ) -> FeedbackEntry:
        if actual_rows < 0:
            raise ValueError("actual_rows must be non-negative")
        entry = FeedbackEntry(
            template=signatures(expr).template,
            params=parameter_vector(expr),
            actual_rows=float(actual_rows),
            actual_seconds=actual_seconds,
        )
        self._entries[entry.template].append(entry)
        return entry

    def observe_job(
        self, record: JobRecord, truth: CardinalityModel
    ) -> int:
        """Record actual cardinalities for every subexpression of a job.

        In production these come from runtime statistics; here the
        ground-truth model plays that role.  Returns observations added.

        The per-node template hashes were memoized when the job was
        ingested, so this walk is linear in the plan size.
        """
        added = 0
        for node in record.plan.walk():
            self.record(node, truth.estimate(node))
            added += 1
        return added

    def entries(self, template: str) -> list[FeedbackEntry]:
        return list(self._entries.get(template, []))

    def templates(self) -> list[str]:
        return list(self._entries)

    def training_matrix(
        self, template: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """(features, actual_rows) arrays for one template, or None.

        Templates whose instances disagree on parameter count (should not
        happen for well-formed recurrences) are rejected.
        """
        entries = self._entries.get(template)
        if not entries:
            return None
        lengths = {e.params.size for e in entries}
        if len(lengths) != 1:
            raise ValueError(
                f"inconsistent parameter counts for template {template}"
            )
        (n_params,) = lengths
        if n_params == 0:
            features = np.ones((len(entries), 1))
        else:
            features = np.vstack([e.params for e in entries])
        target = np.array([e.actual_rows for e in entries])
        return features, target
