"""Plan similarity beyond exact templates.

Peregrine categorizes queries "into templates based on their recurrence
and *similarity*" [20].  Exact template signatures catch literal drift;
similarity catches structural near-misses — an ad-hoc job that is one
operator away from a known recurring template can still borrow that
template's learned knowledge (with appropriate caution).

Plans embed into a small interpretable feature vector (operator counts,
table membership, predicate count, shape); the index answers
nearest-template queries under a normalized distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import Expression, signatures
from repro.parallel import pmap

_OPERATORS = ("Scan", "Filter", "Project", "Join", "Aggregate", "Union")


def plan_embedding(plan: Expression, table_vocabulary: list[str]) -> np.ndarray:
    """Interpretable structural embedding of a plan.

    Layout: per-operator counts, per-table membership flags, predicate
    count, depth, size.  Every component is meaningful to an engineer
    reading a nearest-neighbour explanation (Insight 1's explainability).
    """
    counts = dict.fromkeys(_OPERATORS, 0.0)
    n_predicates = 0.0
    for node in plan.walk():
        name = type(node).__name__
        if name in counts:
            counts[name] += 1.0
        predicates = getattr(node, "predicates", ())
        n_predicates += len(predicates)
    tables = plan.tables()
    membership = [1.0 if t in tables else 0.0 for t in table_vocabulary]
    return np.array(
        [counts[op] for op in _OPERATORS]
        + membership
        + [n_predicates, float(plan.depth), float(plan.size)]
    )


def _embed_worker(payload: tuple[Expression, tuple[str, ...]]) -> np.ndarray:
    """Worker: embed one representative plan (picklable module function)."""
    plan, vocabulary = payload
    return plan_embedding(plan, list(vocabulary))


@dataclass
class SimilarityMatch:
    """A nearest-template answer."""

    template: str
    distance: float
    representative: Expression


class SimilarityIndex:
    """Nearest-template lookup over embedded representatives."""

    def __init__(self, table_vocabulary: list[str]) -> None:
        if not table_vocabulary:
            raise ValueError("table_vocabulary must be non-empty")
        self.table_vocabulary = sorted(table_vocabulary)
        self._templates: list[str] = []
        self._template_index: dict[str, int] = {}
        self._representatives: list[Expression] = []
        self._embeddings: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._templates)

    def _append(self, template: str, plan: Expression, row: np.ndarray) -> None:
        self._template_index[template] = len(self._templates)
        self._templates.append(template)
        self._representatives.append(plan)
        self._embeddings.append(row)

    def add(self, plan: Expression) -> str:
        """Index a plan's template (first representative wins).

        The embedding row is computed once here; the distance matrix
        grows lazily by appending pending rows instead of rebuilding
        from scratch on every add.
        """
        template = signatures(plan).template
        if template not in self._template_index:
            self._append(
                template, plan, plan_embedding(plan, self.table_vocabulary)
            )
        return template

    def bulk_add(self, plans: list[Expression], workers: int = 1) -> list[str]:
        """Index many plans at once; embeddings fan across a process pool.

        Returns the template of each input plan, in input order — the
        same list a loop of :meth:`add` calls produces, with identical
        final index state for every worker count.
        """
        templates = [signatures(plan).template for plan in plans]
        fresh: list[tuple[str, Expression]] = []
        claimed: set[str] = set()
        for template, plan in zip(templates, plans):
            if template in self._template_index or template in claimed:
                continue
            claimed.add(template)
            fresh.append((template, plan))
        vocabulary = tuple(self.table_vocabulary)
        rows = pmap(
            _embed_worker,
            [(plan, vocabulary) for _, plan in fresh],
            workers=workers,
        )
        for (template, plan), row in zip(fresh, rows):
            self._append(template, plan, row)
        return templates

    def _ensure_matrix(self) -> None:
        n_rows = len(self._embeddings)
        if self._matrix is not None and self._matrix.shape[0] == n_rows:
            return
        if self._matrix is None:
            self._matrix = np.vstack(self._embeddings)
        else:
            # Incremental growth: append only the rows added since the
            # last build instead of re-embedding every representative.
            pending = self._embeddings[self._matrix.shape[0] :]
            self._matrix = np.vstack([self._matrix, *pending])
        scale = self._matrix.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale

    def nearest(
        self, plan: Expression, max_distance: float | None = None
    ) -> SimilarityMatch | None:
        """Closest indexed template (None if empty or beyond the cutoff).

        An exact template hit always returns distance 0.0.
        """
        if not self._templates:
            return None
        template = signatures(plan).template
        idx = self._template_index.get(template)
        if idx is not None:
            return SimilarityMatch(template, 0.0, self._representatives[idx])
        self._ensure_matrix()
        query = plan_embedding(plan, self.table_vocabulary) / self._scale
        scaled = self._matrix / self._scale
        distances = np.linalg.norm(scaled - query, axis=1)
        best = int(np.argmin(distances))
        distance = float(distances[best])
        if max_distance is not None and distance > max_distance:
            return None
        return SimilarityMatch(
            self._templates[best], distance, self._representatives[best]
        )

    def neighbours(
        self, plan: Expression, k: int = 3
    ) -> list[SimilarityMatch]:
        """The ``k`` closest templates, nearest first."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self._templates:
            return []
        self._ensure_matrix()
        query = plan_embedding(plan, self.table_vocabulary) / self._scale
        scaled = self._matrix / self._scale
        distances = np.linalg.norm(scaled - query, axis=1)
        order = np.argsort(distances)[:k]
        return [
            SimilarityMatch(
                self._templates[i],
                float(distances[i]),
                self._representatives[i],
            )
            for i in order
        ]
