"""Peregrine: the workload optimization platform (Section 4.2, [20]).

"Peregrine consists of an engine-agnostic workload representation,
workload categorization based on patterns, and a workload feedback
mechanism that enables query engines to respond to workload feedback."

- :mod:`~repro.core.peregrine.repository` — the engine-agnostic
  representation: every submitted job flattened into signatures,
  templates, parameters, and dependency edges.
- :mod:`~repro.core.peregrine.analysis` — recurrence, subexpression
  overlap, and pipeline statistics (the numbers quoted in the paper).
- :mod:`~repro.core.peregrine.feedback` — runtime statistics (actual
  cardinalities, runtimes) flowing back, keyed by signature, to train
  the learned components.
- :mod:`~repro.core.peregrine.forecast` — evolving-workload forecasts.
"""

from repro.core.peregrine.analysis import WorkloadStatistics, analyze
from repro.core.peregrine.feedback import FeedbackEntry, WorkloadFeedback
from repro.core.peregrine.forecast import forecast_daily_volume
from repro.core.peregrine.report import workload_report
from repro.core.peregrine.similarity import (
    SimilarityIndex,
    SimilarityMatch,
    plan_embedding,
)
from repro.core.peregrine.repository import (
    DayChunk,
    JobBatch,
    JobRecord,
    JobTable,
    WorkloadRepository,
)

__all__ = [
    "WorkloadRepository",
    "JobRecord",
    "JobTable",
    "JobBatch",
    "DayChunk",
    "WorkloadStatistics",
    "analyze",
    "WorkloadFeedback",
    "FeedbackEntry",
    "forecast_daily_volume",
    "workload_report",
    "SimilarityIndex",
    "SimilarityMatch",
    "plan_embedding",
]
