"""Per-template cardinality micromodels with keep-only-improving selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.peregrine.feedback import WorkloadFeedback, parameter_vector
from repro.engine import Expression, signatures
from repro.engine.estimator import CardinalityModel
from repro.ml import RidgeRegression, StandardScaler, q_error


def _expand(params: np.ndarray) -> np.ndarray:
    """Feature map per parameter: [p, p^2, log1p(|p|)].

    The ground-truth selectivities are smooth power-law-ish functions of
    the literals, so a low-order polynomial in (p, log p) linearizes them
    well while keeping the model inspectable (Insight 1).
    """
    arr = np.atleast_2d(np.asarray(params, dtype=float))
    return np.hstack([arr, arr**2, np.log1p(np.abs(arr))])


@dataclass
class CardinalityMicromodel:
    """One template's literal-to-cardinality regressor (log-space ridge).

    Features are standardized before the ridge fit: recurring templates
    often have literals with tiny relative drift around a large value,
    which is hopeless conditioning without scaling.
    """

    template: str
    model: RidgeRegression
    scaler: StandardScaler
    n_train: int
    validation_q_error: float

    @classmethod
    def fit(
        cls, template: str, features: np.ndarray, rows: np.ndarray
    ) -> "CardinalityMicromodel":
        scaler = StandardScaler()
        scaled = scaler.fit_transform(_expand(features))
        model = RidgeRegression(alpha=1e-3)
        model.fit(scaled, np.log1p(rows))
        return cls(
            template=template,
            model=model,
            scaler=scaler,
            n_train=features.shape[0],
            validation_q_error=float("nan"),
        )

    def predict(self, params: np.ndarray) -> np.ndarray:
        scaled = self.scaler.transform(_expand(params))
        log_rows = self.model.predict(scaled)
        return np.maximum(1.0, np.expm1(np.clip(log_rows, 0.0, 50.0)))


@dataclass
class TrainingReport:
    """What the trainer kept, dropped, and why (E5's ablation data)."""

    kept: dict[str, CardinalityMicromodel]
    dropped: dict[str, str]                 # template -> reason
    default_q_error: dict[str, float]       # validation q-error of default
    model_q_error: dict[str, float]         # validation q-error of micromodel

    @property
    def n_candidates(self) -> int:
        return len(self.kept) + len(self.dropped)


class MicromodelTrainer:
    """Train candidates from feedback; keep only those beating the default."""

    def __init__(
        self,
        default: CardinalityModel,
        min_observations: int = 6,
        improvement_factor: float = 0.95,
        validation_fraction: float = 0.3,
        keep_all: bool = False,
    ) -> None:
        if min_observations < 4:
            raise ValueError("min_observations must be >= 4")
        if not 0.0 < improvement_factor <= 1.0:
            raise ValueError("improvement_factor must be in (0, 1]")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        self.default = default
        self.min_observations = min_observations
        self.improvement_factor = improvement_factor
        self.validation_fraction = validation_fraction
        self.keep_all = keep_all  # ablation: skip the pruning step

    def train(
        self,
        feedback: WorkloadFeedback,
        representatives: dict[str, Expression],
    ) -> TrainingReport:
        """Fit one candidate per template with enough history.

        ``representatives`` maps template signature -> one example
        expression, needed to compute the default estimator's validation
        error for the keep/drop decision.
        """
        kept: dict[str, CardinalityMicromodel] = {}
        dropped: dict[str, str] = {}
        default_q: dict[str, float] = {}
        model_q: dict[str, float] = {}
        for template in feedback.templates():
            data = feedback.training_matrix(template)
            if data is None:
                continue
            features, rows = data
            if rows.shape[0] < self.min_observations:
                dropped[template] = "too little history"
                continue
            # Chronological split: validate on the most recent instances,
            # which is how drifting parameters stress extrapolation.
            n_val = max(1, int(round(self.validation_fraction * rows.shape[0])))
            train_x, val_x = features[:-n_val], features[-n_val:]
            train_y, val_y = rows[:-n_val], rows[-n_val:]
            if train_y.shape[0] < 3:
                dropped[template] = "too little history"
                continue
            candidate = CardinalityMicromodel.fit(template, train_x, train_y)
            candidate_q = float(np.mean(q_error(val_y, candidate.predict(val_x))))
            candidate.validation_q_error = candidate_q
            rep = representatives.get(template)
            if rep is None:
                dropped[template] = "no representative expression"
                continue
            baseline_q = self._default_q(rep, val_y)
            default_q[template] = baseline_q
            model_q[template] = candidate_q
            if (
                not self.keep_all
                and candidate_q > self.improvement_factor * baseline_q
            ):
                dropped[template] = (
                    f"not better than default ({candidate_q:.2f} vs {baseline_q:.2f})"
                )
                continue
            kept[template] = candidate
        return TrainingReport(
            kept=kept, dropped=dropped,
            default_q_error=default_q, model_q_error=model_q,
        )

    def _default_q(self, representative: Expression, actual: np.ndarray) -> float:
        estimate = self.default.estimate(representative)
        return float(np.mean(q_error(actual, np.full(actual.shape, estimate))))


class LearnedCardinalityModel:
    """Micromodels where available, default estimator everywhere else.

    Implements the engine's ``CardinalityModel`` protocol, so it plugs
    straight into the optimizer — the externalization the paper calls for.
    """

    def __init__(
        self,
        default: CardinalityModel,
        models: dict[str, CardinalityMicromodel],
    ) -> None:
        self.default = default
        self.models = dict(models)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_report(
        cls, default: CardinalityModel, report: TrainingReport
    ) -> "LearnedCardinalityModel":
        return cls(default, report.kept)

    def estimate(self, expr: Expression) -> float:
        # Memoized on the node: repeated estimates on a plan's
        # subexpressions hash each node once, not once per call.
        template = signatures(expr).template
        model = self.models.get(template)
        if model is None:
            self.misses += 1
            return self.default.estimate(expr)
        self.hits += 1
        params = parameter_vector(expr)
        if params.size == 0:
            params = np.ones(1)
        return float(model.predict(params.reshape(1, -1))[0])

    @property
    def coverage(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
