"""Global-model warm start plus per-application iterative fine-tuning.

Environment: a Spark-like application whose runtime over executor count
follows the classic U-shaped cost curve — parallel speedup with
diminishing returns, plus per-executor coordination overhead:

    runtime(e) = serial + work / e^alpha + overhead * e

Each application has its own latent (work, alpha, overhead); the tuning
objective is the *runtime* of a recurring run (AutoToken predicts the
peak parallelism a job benefits from).  The tuner:

1. predicts a starting executor count with a *global* model trained on
   benchmark applications (AutoToken's resource predictor role), then
2. fine-tunes per application by hill climbing on observed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml import GradientBoostingRegressor

MAX_EXECUTORS = 128


@dataclass
class SparkApplication:
    """A recurring application with latent scaling behaviour."""

    app_id: str
    input_gb: float
    n_stages: int
    shuffle_ratio: float
    work: float                   # latent: parallelizable work
    serial_seconds: float         # latent: non-parallel fraction
    overhead_per_executor: float  # latent: coordination cost
    alpha: float = 0.9            # latent: parallel efficiency

    def runtime(
        self, executors: int, rng: np.random.Generator | None = None
    ) -> float:
        """Observed runtime (seconds) of one run at ``executors``."""
        if not 1 <= executors <= MAX_EXECUTORS:
            raise ValueError(f"executors must be in [1, {MAX_EXECUTORS}]")
        base = (
            self.serial_seconds
            + self.work / executors**self.alpha
            + self.overhead_per_executor * executors
        )
        if rng is not None:
            base *= float(np.exp(rng.normal(scale=0.03)))
        return base

    def cost(self, executors: int, rng: np.random.Generator | None = None) -> float:
        """Executor-seconds billed for one run (reporting only)."""
        return executors * self.runtime(executors, rng)

    def optimal_executors(self) -> int:
        """Brute-force noiseless runtime optimum (evaluation only).

        AutoToken-style tuning targets performance: pick the executor
        count minimizing runtime (parallel speedup vs per-executor
        coordination overhead gives an interior optimum).
        """
        runtimes = [self.runtime(e) for e in range(1, MAX_EXECUTORS + 1)]
        return int(np.argmin(runtimes)) + 1

    def feature_vector(self) -> np.ndarray:
        """Observable pre-run features (inputs AutoToken-style models see)."""
        return np.array(
            [
                np.log1p(self.input_gb),
                float(self.n_stages),
                self.shuffle_ratio,
            ]
        )


def benchmark_suite(
    n_apps: int = 60, rng: np.random.Generator | int | None = None
) -> list[SparkApplication]:
    """Synthetic benchmark applications with correlated latents.

    Bigger inputs mean more work; shuffle-heavy apps pay higher
    per-executor overhead — correlations the global model can exploit.
    """
    if n_apps < 1:
        raise ValueError("n_apps must be >= 1")
    generator = np.random.default_rng(rng)
    apps = []
    for i in range(n_apps):
        input_gb = float(generator.uniform(1, 500))
        shuffle = float(generator.uniform(0.0, 1.0))
        n_stages = int(generator.integers(2, 40))
        work = input_gb * generator.uniform(8, 16) * (1 + shuffle)
        apps.append(
            SparkApplication(
                app_id=f"app-{i:03d}",
                input_gb=input_gb,
                n_stages=n_stages,
                shuffle_ratio=shuffle,
                work=work,
                serial_seconds=float(generator.uniform(5, 60)),
                overhead_per_executor=float(
                    generator.uniform(0.2, 1.0) * (1 + 2 * shuffle)
                ),
                alpha=float(generator.uniform(0.8, 1.0)),
            )
        )
    return apps


@dataclass
class TuningTrace:
    """Per-run record of one application's tuning session."""

    app_id: str
    executors: list[int] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    @property
    def best_runtime(self) -> float:
        return min(self.runtimes)

    def regret_curve(self, optimal_runtime: float) -> np.ndarray:
        """Relative runtime above the noiseless optimum, per run."""
        running_best = np.minimum.accumulate(np.array(self.runtimes))
        return running_best / optimal_runtime - 1.0


class ApplicationTuner:
    """Warm-start from a global model, then hill-climb per application."""

    def __init__(
        self,
        step_factor: float = 1.3,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if step_factor <= 1.0:
            raise ValueError("step_factor must exceed 1.0")
        self.step_factor = step_factor
        self._rng = np.random.default_rng(rng)
        self._global: GradientBoostingRegressor | None = None

    # -- global model --------------------------------------------------------------
    def fit_global(self, benchmarks: list[SparkApplication]) -> "ApplicationTuner":
        """Train features -> log(optimal executors) on benchmark apps."""
        if len(benchmarks) < 8:
            raise ValueError("need at least 8 benchmark applications")
        x = np.vstack([a.feature_vector() for a in benchmarks])
        y = np.log(np.array([a.optimal_executors() for a in benchmarks], float))
        self._global = GradientBoostingRegressor(
            n_trees=60, max_depth=3, rng=self._rng
        ).fit(x, y)
        return self

    def warm_start(self, app: SparkApplication) -> int:
        """Global-model executor prediction (default 8 when unfitted)."""
        if self._global is None:
            return 8
        pred = float(
            np.exp(self._global.predict(app.feature_vector().reshape(1, -1))[0])
        )
        return int(np.clip(round(pred), 1, MAX_EXECUTORS))

    # -- per-application fine-tuning ---------------------------------------------------
    def tune(
        self, app: SparkApplication, n_runs: int = 12
    ) -> TuningTrace:
        """Iterative tuning over the app's recurring runs.

        Hill climbing on the multiplicative grid: each iteration probes a
        neighbour of the incumbent (alternating directions); moves only
        on observed improvement.  Simple, explainable, and robust to the
        ~3% run-to-run noise — exactly the Insight-1 style of tuner that
        ships.
        """
        if n_runs < 2:
            raise ValueError("n_runs must be >= 2")
        trace = TuningTrace(app.app_id)

        def run(executors: int) -> float:
            runtime = app.runtime(executors, self._rng)
            trace.executors.append(executors)
            trace.runtimes.append(runtime)
            return runtime

        incumbent = self.warm_start(app)
        incumbent_runtime = run(incumbent)
        direction = 1
        while len(trace.runtimes) < n_runs:
            if direction == 1:
                stepped = max(incumbent + 1, round(incumbent * self.step_factor))
            else:
                stepped = min(incumbent - 1, round(incumbent / self.step_factor))
            candidate = int(np.clip(stepped, 1, MAX_EXECUTORS))
            if candidate == incumbent:  # pinned at a bound: go the other way
                direction = -direction
                stepped = (
                    incumbent + 1 if direction == 1 else incumbent - 1
                )
                candidate = int(np.clip(stepped, 1, MAX_EXECUTORS))
                if candidate == incumbent:
                    break  # space exhausted (MAX_EXECUTORS == 1)
            candidate_runtime = run(candidate)
            if candidate_runtime < incumbent_runtime:
                incumbent, incumbent_runtime = candidate, candidate_runtime
            else:
                direction = -direction
        return trace
