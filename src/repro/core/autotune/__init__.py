"""Application auto-tuning for Spark-style configs (§4.3, [45]).

"Another example involves auto-tuning configurations for Spark, built on
top of the resource usage predictor.  We use iterative tuning algorithms
to replace the manual process for customers.  We start with a global
model trained using data from multiple benchmark queries.  While the
global model may not be highly accurate, it serves as a reasonable
starting point and is fine-tuned for each application as more
observational data becomes available."
"""

from repro.core.autotune.tuner import (
    ApplicationTuner,
    SparkApplication,
    TuningTrace,
    benchmark_suite,
)

__all__ = [
    "SparkApplication",
    "ApplicationTuner",
    "TuningTrace",
    "benchmark_suite",
]
