"""Cluster-creation demand traces for proactive pool provisioning.

Section 4.1 describes proactive cluster provisioning on Azure Synapse
Spark "based on expected user cluster creation demand to reduce wait time
for cluster initialization".  We generate the corresponding arrival
process: a non-homogeneous Poisson stream whose rate follows a diurnal
business curve plus a weekly dip, with optional demand spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_DAY = 24


@dataclass
class DemandTrace:
    """Cluster-creation requests: sorted arrival times (hours) plus rates."""

    arrival_hours: np.ndarray  # event times, fractional hours since start
    hourly_rate: np.ndarray    # ground-truth rate per hour (for evaluation)

    @property
    def n_requests(self) -> int:
        return int(self.arrival_hours.size)

    def counts_per_hour(self) -> np.ndarray:
        """Observed request count for each whole hour of the trace."""
        n_hours = self.hourly_rate.size
        counts, _ = np.histogram(
            self.arrival_hours, bins=n_hours, range=(0, n_hours)
        )
        return counts.astype(float)


def diurnal_rate(
    n_days: int,
    base_rate: float = 6.0,
    peak_rate: float = 30.0,
    weekend_factor: float = 0.3,
) -> np.ndarray:
    """Ground-truth hourly arrival rate: business-hours peak, weekend dip."""
    t = np.arange(n_days * HOURS_PER_DAY)
    hour = t % HOURS_PER_DAY
    day = (t // HOURS_PER_DAY) % 7
    # Smooth peak centred at 14:00.
    shape = np.exp(-0.5 * ((hour - 14) / 4.0) ** 2)
    rate = base_rate + (peak_rate - base_rate) * shape
    rate = np.where(day >= 5, rate * weekend_factor, rate)
    return rate


def generate_demand(
    n_days: int = 14,
    base_rate: float = 6.0,
    peak_rate: float = 30.0,
    weekend_factor: float = 0.3,
    spike_probability: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> DemandTrace:
    """Sample arrivals from the diurnal rate (thinning-free per-hour Poisson).

    ``spike_probability`` injects rare 3x demand surges (one hour long) to
    exercise the provisioning policy's reactive fallback.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    if base_rate < 0 or peak_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate")
    if not 0.0 <= spike_probability <= 1.0:
        raise ValueError("spike_probability must be in [0, 1]")
    generator = np.random.default_rng(rng)
    rate = diurnal_rate(n_days, base_rate, peak_rate, weekend_factor)
    if spike_probability > 0.0:
        spikes = generator.random(rate.size) < spike_probability
        rate = np.where(spikes, rate * 3.0, rate)
    arrivals = []
    for hour_index, lam in enumerate(rate):
        count = generator.poisson(lam)
        arrivals.extend(hour_index + generator.random(count))
    return DemandTrace(
        arrival_hours=np.sort(np.array(arrivals)),
        hourly_rate=rate,
    )
