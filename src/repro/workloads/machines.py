"""Machine telemetry with linear ground-truth dynamics (KEA's Figure 1).

KEA [53] fits "multiple linear models to predict machine behavior, such
as CPU utilization versus task execution time or the number of running
containers" and feeds them into a workload-balancing optimizer.  The
fleet simulator below emits exactly that telemetry: for each machine SKU,
CPU utilization is (noisily) linear in the number of running containers,
and task execution time is (noisily) linear in CPU utilization — with
per-SKU slopes that the models must recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import Metric, TelemetryStore


@dataclass(frozen=True)
class MachineSku:
    """Hardware generation of a Cosmos-like machine."""

    name: str
    cpu_per_container: float     # CPU percentage points per running container
    cpu_idle: float              # baseline CPU percentage
    task_seconds_base: float     # task time at idle CPU
    task_seconds_per_cpu: float  # extra seconds per CPU percentage point
    max_containers: int


DEFAULT_SKUS: tuple[MachineSku, ...] = (
    MachineSku("gen4", cpu_per_container=3.2, cpu_idle=6.0,
               task_seconds_base=24.0, task_seconds_per_cpu=0.9,
               max_containers=28),
    MachineSku("gen5", cpu_per_container=2.3, cpu_idle=5.0,
               task_seconds_base=18.0, task_seconds_per_cpu=0.6,
               max_containers=40),
    MachineSku("gen6", cpu_per_container=1.6, cpu_idle=4.0,
               task_seconds_base=14.0, task_seconds_per_cpu=0.45,
               max_containers=56),
)


@dataclass
class MachineObservation:
    """One telemetry sample from one machine."""

    machine_id: str
    sku: str
    timestamp: float
    running_containers: int
    cpu_utilization: float
    task_execution_seconds: float


class MachineFleetSimulator:
    """Emit machine telemetry with known linear ground truth.

    ``observe`` produces one sample per machine per step given a container
    placement; ``cpu_for_containers`` / ``task_time_for_cpu`` expose the
    noiseless ground truth so model quality is directly measurable.
    """

    def __init__(
        self,
        n_machines_per_sku: int = 10,
        skus: tuple[MachineSku, ...] = DEFAULT_SKUS,
        noise: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_machines_per_sku < 1:
            raise ValueError("n_machines_per_sku must be >= 1")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.skus = {sku.name: sku for sku in skus}
        self.noise = noise
        self._rng = np.random.default_rng(rng)
        self.machines: list[tuple[str, MachineSku]] = []
        for sku in skus:
            for i in range(n_machines_per_sku):
                self.machines.append((f"{sku.name}-m{i:03d}", sku))

    # -- ground truth --------------------------------------------------------
    @staticmethod
    def cpu_for_containers(sku: MachineSku, containers: float) -> float:
        return min(100.0, sku.cpu_idle + sku.cpu_per_container * containers)

    @staticmethod
    def task_time_for_cpu(sku: MachineSku, cpu: float) -> float:
        return sku.task_seconds_base + sku.task_seconds_per_cpu * cpu

    # -- observation ------------------------------------------------------------
    def observe(
        self, timestamp: float, containers: dict[str, int] | None = None
    ) -> list[MachineObservation]:
        """Sample the fleet once.

        ``containers`` maps machine_id -> running containers; machines not
        listed get a random load below their SKU limit.
        """
        containers = containers or {}
        observations = []
        for machine_id, sku in self.machines:
            n = containers.get(
                machine_id, int(self._rng.integers(0, sku.max_containers + 1))
            )
            n = int(np.clip(n, 0, sku.max_containers))
            cpu = self.cpu_for_containers(sku, n) + self._rng.normal(
                scale=self.noise
            )
            cpu = float(np.clip(cpu, 0.0, 100.0))
            task = self.task_time_for_cpu(sku, cpu) + self._rng.normal(
                scale=self.noise
            )
            observations.append(
                MachineObservation(
                    machine_id=machine_id,
                    sku=sku.name,
                    timestamp=timestamp,
                    running_containers=n,
                    cpu_utilization=cpu,
                    task_execution_seconds=max(0.1, float(task)),
                )
            )
        return observations

    def collect(
        self, store: TelemetryStore, n_steps: int, step_seconds: float = 300.0
    ) -> list[MachineObservation]:
        """Run ``n_steps`` observation rounds and record them into ``store``.

        The whole run is batched into one ``record_many`` call per metric
        — three column appends for the fleet instead of three ``record``
        calls per machine per step.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        all_observations = []
        for step in range(n_steps):
            all_observations.extend(self.observe(step * step_seconds))
        timestamps = np.array([obs.timestamp for obs in all_observations])
        # One dict per machine, shared across steps, so the store interns
        # each dimension set once instead of freezing per point.
        dims_by_machine = {
            machine_id: {"machine": machine_id, "sku": sku.name}
            for machine_id, sku in self.machines
        }
        per_point_dims = [
            dims_by_machine[obs.machine_id] for obs in all_observations
        ]
        for metric, values in (
            (
                Metric.CPU_UTILIZATION,
                np.array([obs.cpu_utilization for obs in all_observations]),
            ),
            (
                Metric.RUNNING_CONTAINERS,
                np.array(
                    [float(obs.running_containers) for obs in all_observations]
                ),
            ),
            (
                Metric.TASK_EXECUTION_SECONDS,
                np.array(
                    [obs.task_execution_seconds for obs in all_observations]
                ),
            ),
        ):
            store.record_many(metric, timestamps, values, per_point_dims)
        return all_observations
