"""Per-tenant usage traces with a controllable predictable fraction.

Moneyball [41] reports that "77% of Azure SQL Database Serverless usage
is predictable"; Seagull [40] schedules backups into low-load windows of
servers that mostly follow stable daily/weekly patterns.  This generator
produces a tenant population in which a configurable fraction follows a
stable diurnal/weekly pattern (plus noise) and the rest behave
erratically (bursty random-walk activity), so predictability
classification has real positives and negatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 168


@dataclass
class TenantTrace:
    """Hourly activity for one tenant (values >= 0; 0 means idle)."""

    tenant_id: str
    values: np.ndarray
    is_predictable: bool  # ground truth used only for evaluation

    @property
    def hours(self) -> int:
        return int(self.values.size)

    def idle_mask(self, threshold: float = 0.05) -> np.ndarray:
        """Boolean mask of hours where activity is below ``threshold``."""
        return self.values < threshold


@dataclass
class UsagePopulationConfig:
    """Knobs for the tenant population."""

    n_tenants: int = 100
    n_days: int = 28
    predictable_fraction: float = 0.77
    noise: float = 0.05
    idle_night_fraction: float = 0.4  # share of the day a stable tenant idles
    background_noise: float = 0.02   # always-on residual load (monitoring etc.)

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.n_days < 2:
            raise ValueError("n_days must be >= 2")
        if not 0.0 <= self.predictable_fraction <= 1.0:
            raise ValueError("predictable_fraction must be in [0, 1]")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")


def _stable_trace(
    config: UsagePopulationConfig, rng: np.random.Generator
) -> np.ndarray:
    """Business-hours activity, quiet nights, weekend dips, small noise."""
    hours = config.n_days * HOURS_PER_DAY
    t = np.arange(hours)
    hour_of_day = t % HOURS_PER_DAY
    day_of_week = (t // HOURS_PER_DAY) % 7
    # Active window sized by idle_night_fraction, phase-shifted per tenant
    # (cloud customers span all timezones, so quiet hours differ).
    active_hours = HOURS_PER_DAY * (1.0 - config.idle_night_fraction)
    start = rng.integers(0, HOURS_PER_DAY)
    in_window = ((hour_of_day - start) % HOURS_PER_DAY) < active_hours
    base = np.where(in_window, 1.0, 0.0)
    # Smooth shoulder: scale activity by a diurnal sinusoid inside the window.
    diurnal = 0.6 + 0.4 * np.sin(
        2 * np.pi * ((hour_of_day - start) % HOURS_PER_DAY) / active_hours * 0.5
    )
    weekend = np.where(day_of_week >= 5, rng.uniform(0.0, 0.3), 1.0)
    scale = rng.uniform(0.5, 2.0)
    values = base * diurnal * weekend * scale
    values += rng.normal(scale=config.noise, size=hours) * base
    # Residual always-on load (replication, monitoring, agents): small,
    # but it makes "which window is quietest" a real question.
    values += np.abs(rng.normal(scale=config.background_noise, size=hours))
    return np.clip(values, 0.0, None)


def _erratic_trace(
    config: UsagePopulationConfig, rng: np.random.Generator
) -> np.ndarray:
    """Bursty on/off behaviour with no stable period."""
    hours = config.n_days * HOURS_PER_DAY
    values = np.zeros(hours)
    t = 0
    while t < hours:
        burst = rng.random() < 0.4
        duration = int(rng.integers(1, 30))
        if burst:
            level = rng.uniform(0.3, 2.0)
            values[t : t + duration] = level + rng.normal(
                scale=0.3, size=min(duration, hours - t)
            )
        t += duration
    return np.clip(values, 0.0, None)


def generate_population(
    config: UsagePopulationConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[TenantTrace]:
    """Generate the tenant population (predictable tenants first is avoided:
    the order is shuffled so downstream code cannot cheat on position)."""
    config = config or UsagePopulationConfig()
    generator = np.random.default_rng(rng)
    n_predictable = int(round(config.predictable_fraction * config.n_tenants))
    flags = [True] * n_predictable + [False] * (config.n_tenants - n_predictable)
    generator.shuffle(flags)
    traces = []
    for i, predictable in enumerate(flags):
        values = (
            _stable_trace(config, generator)
            if predictable
            else _erratic_trace(config, generator)
        )
        traces.append(
            TenantTrace(
                tenant_id=f"tenant-{i:04d}",
                values=values,
                is_predictable=predictable,
            )
        )
    return traces
