"""SCOPE-like recurring job and pipeline trace generator.

Section 4.2's learning opportunities all come from workload structure:
"over 60% of jobs are recurring (involving periodic runs of scripts with
the same operations but different predicate values), and nearly 40% of
daily jobs share common subexpressions with at least one other job", and
"70% of daily SCOPE jobs have inter-job dependencies".

The generator is calibrated to those statistics:

- *recurring templates* re-run daily with drifting predicate literals
  (same template signature, new strict signature),
- a pool of *shared fragments* — day-parameterized subplans whose
  literals depend only on (fragment, day) — appears inside several
  templates, so jobs within a day share strictly-equal subexpressions,
- templates are chained into *pipelines*: a consumer scans the derived
  output table of its producer and depends on the producer's job,
- the remainder are *ad-hoc* one-off jobs with random structure.
"""

from __future__ import annotations

import gc
from binascii import hexlify
from copy import deepcopy
from dataclasses import dataclass, field
from hashlib import sha1
from operator import attrgetter
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.engine import (
    Aggregate,
    Catalog,
    ColumnStats,
    DefaultCardinalityEstimator,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    TableDef,
)
from repro.engine.signatures import (
    _digest,
    enumerate_all_signatures,
    signatures,
)
from repro.parallel import DEFAULT_N_SHARDS, shard_items

if TYPE_CHECKING:
    from repro.core.peregrine.repository import JobBatch

HOURS_PER_DAY = 24.0

#: C-level sort key for the per-day stable sort (same order as the old
#: ``lambda j: j.submit_hour``, measurably cheaper at 100k+ jobs/day).
_BY_SUBMIT_HOUR = attrgetter("submit_hour")


def _job_shard_key(job: "Job") -> str:
    """Stable shard key: template for recurring jobs, job id for ad-hoc.

    Keying recurring jobs by template keeps every instance of a template
    in one shard, so per-template analyses (candidate enumeration,
    micromodel training) never straddle a shard boundary.  Module-level
    so sharded job lists stay picklable for process pools.
    """
    if job.template_id is not None:
        return f"template:{job.template_id}"
    return f"job:{job.job_id}"


@dataclass
class Job:
    """A single submitted job (one plan, one submit time)."""

    job_id: str
    plan: Expression
    submit_hour: float
    template_id: int | None = None   # None marks an ad-hoc job
    pipeline_id: int | None = None
    params: dict[str, float] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()

    @property
    def is_recurring(self) -> bool:
        return self.template_id is not None

    @property
    def day(self) -> int:
        return int(self.submit_hour // HOURS_PER_DAY)


@dataclass
class Workload:
    """A multi-day trace of jobs plus the catalog they run against.

    ``by_day`` and ``shards`` return memoized tuples: the trace is
    immutable once built, so callers get zero-copy views instead of a
    fresh list per call (both sit in per-day fabric loops).
    """

    jobs: list[Job]
    catalog: Catalog
    n_days: int

    def __post_init__(self) -> None:
        self._day_cache: dict[int, tuple[Job, ...]] = {}
        self._shard_cache: dict[int, tuple[tuple[Job, ...], ...]] = {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_day_cache"] = {}
        state["_shard_cache"] = {}
        return state

    def __len__(self) -> int:
        return len(self.jobs)

    def by_day(self, day: int) -> tuple[Job, ...]:
        cached = self._day_cache.get(day)
        if cached is None:
            cached = tuple(j for j in self.jobs if j.day == day)
            self._day_cache[day] = cached
        return cached

    def by_template(self, template_id: int) -> list[Job]:
        return [j for j in self.jobs if j.template_id == template_id]

    def recurring_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.is_recurring for j in self.jobs) / len(self.jobs)

    def pipeline_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.pipeline_id is not None for j in self.jobs) / len(self.jobs)

    def dependency_fraction(self) -> float:
        """Fraction of jobs participating in an inter-job dependency."""
        if not self.jobs:
            return 0.0
        involved: set[str] = set()
        for job in self.jobs:
            if job.depends_on:
                involved.add(job.job_id)
                involved.update(job.depends_on)
        return len(involved) / len(self.jobs)

    def job(self, job_id: str) -> Job:
        for j in self.jobs:
            if j.job_id == job_id:
                return j
        raise KeyError(f"unknown job {job_id!r}")

    def shards(self, n_shards: int = DEFAULT_N_SHARDS) -> tuple[tuple[Job, ...], ...]:
        """Deterministic fan-out-ready partition of the trace.

        Shard membership depends only on each job's stable key (template
        id for recurring jobs, job id for ad-hoc) and the shard count —
        never on worker count or hash seed — so sharded analyses merge
        back identically on every run.  Submit order is preserved within
        each shard.  The assignment is memoized per shard count and
        returned as tuples — treat them as read-only views.
        """
        cached = self._shard_cache.get(n_shards)
        if cached is None:
            cached = tuple(
                tuple(shard)
                for shard in shard_items(
                    self.jobs, key=_job_shard_key, n_shards=n_shards
                )
            )
            self._shard_cache[n_shards] = cached
        return cached


@dataclass
class ScopeWorkloadConfig:
    """Calibration knobs (defaults match the paper's published fractions)."""

    n_recurring_templates: int = 30
    recurring_fraction: float = 0.65
    n_shared_fragments: int = 6
    shared_fragment_templates: float = 0.65  # templates embedding a fragment
    pipeline_fraction: float = 0.8          # templates that sit in pipelines
    pipeline_length: tuple[int, int] = (2, 4)
    adhoc_dependency_fraction: float = 0.5  # ad-hoc jobs reading pipeline output
    drift_per_day: float = 0.01             # predicate literal drift rate
    instances_per_template: int = 1         # daily runs per recurring template

    def __post_init__(self) -> None:
        if self.n_recurring_templates < 1:
            raise ValueError("n_recurring_templates must be >= 1")
        if self.instances_per_template < 1:
            raise ValueError("instances_per_template must be >= 1")
        for name in ("recurring_fraction", "shared_fragment_templates",
                     "pipeline_fraction", "adhoc_dependency_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        lo, hi = self.pipeline_length
        if lo < 2 or hi < lo:
            raise ValueError("pipeline_length must satisfy 2 <= lo <= hi")

    @classmethod
    def for_scale(cls, jobs_per_day: int, **overrides) -> "ScopeWorkloadConfig":
        """Calibrated config sized for roughly ``jobs_per_day`` daily jobs.

        Keeps the paper's recurring/pipeline/dependency fractions but
        scales the template catalog and per-template instance count so a
        single generated day lands near the requested size.  Template
        diversity is capped (structural variety, not volume, is what
        costs memory downstream), and the remaining volume comes from
        extra daily instances per template — matching how real SCOPE
        clusters get to 100k+ jobs/day from a few thousand scripts.
        """
        if jobs_per_day < 1:
            raise ValueError("jobs_per_day must be >= 1")
        fraction = overrides.get("recurring_fraction", cls.recurring_fraction)
        recurring = max(1, int(round(jobs_per_day * fraction)))
        overrides.setdefault(
            "n_recurring_templates", max(30, min(2000, recurring // 32))
        )
        overrides.setdefault(
            "instances_per_template",
            max(1, round(recurring / overrides["n_recurring_templates"])),
        )
        return cls(**overrides)


@dataclass
class _Fragment:
    """A shared subplan: literals depend only on (fragment, day)."""

    fragment_id: int
    table: str
    column: str
    base_value: float

    def instantiate(self, day: int, drift: float) -> Expression:
        value = self.base_value * (1.0 + drift * day)
        return Filter(Scan(self.table), (Predicate(self.column, "<=", value),))


@dataclass
class _Template:
    """A recurring script: fixed structure, day-parameterized literals."""

    template_id: int
    fragment: _Fragment | None
    base_table: str            # scanned when there is no fragment
    join_table: str | None
    filter_column: str
    filter_base_value: float
    group_column: str | None
    submit_hour_offset: float  # within-day submit time
    pipeline_id: int | None = None
    upstream_template: int | None = None  # producer in the pipeline
    output_table: str | None = None       # derived table this job writes

    def instantiate(self, day: int, drift: float) -> tuple[Expression, dict]:
        value = self.filter_base_value * (1.0 + drift * day)
        if self.upstream_template is not None:
            # Consumers read their producer's derived output table,
            # enriching it with the shared fragment when they have one.
            core: Expression = Scan(f"out_t{self.upstream_template}")
            if self.fragment is not None:
                core = Join(
                    core, self.fragment.instantiate(day, drift), "key", "key"
                )
        elif self.fragment is not None:
            core = self.fragment.instantiate(day, drift)
        else:
            core = Scan(self.base_table)
        if self.join_table is not None:
            core = Join(core, Scan(self.join_table), "key", "key")
        core = Filter(core, (Predicate(self.filter_column, "<=", value),))
        if self.group_column is not None:
            core = Aggregate(core, (self.group_column,))
        params = {"filter_value": value}
        if self.fragment is not None:
            params["fragment_value"] = self.fragment.base_value * (
                1.0 + drift * day
            )
        return core, params


@dataclass
class _AdhocShape:
    """Day-independent signature scaffolding for one ad-hoc plan shape.

    Ad-hoc plans come in exactly four shapes (filter-scan, optionally
    joined to a second scan, capped by an aggregate or a project), so
    everything except the predicate literal is cacheable per
    ``(table, column, join_table, aggregate)``: the scan signatures,
    the template signatures (literals are masked, so they carry no
    per-job information), and the strict-payload prefixes the per-job
    digests are folded into.  The fused batch path then needs only
    2–3 SHA1 calls per ad-hoc job instead of a full signature walk.

    The payload pieces are kept as *bytes* and the per-node names as
    the raw first 8 digest bytes: a 16-hex-char signature name is a
    bijective encoding of those 8 bytes, so the interning pass can run
    ``np.unique`` over a uint64 view and hexlify only the surviving
    pool — hex strings exist per *unique* signature, not per job.
    """

    scan_raw: bytes          # raw 8-byte digest of Scan(table)
    jscan_raw: bytes | None  # Scan(join_table), when joined
    filt_pre: bytes          # strict Filter payload up to the literal
    filt_post: bytes         # strict Filter payload after the literal
    join_pre: bytes | None   # strict Join payload around the filter sig
    join_post: bytes | None
    root_pre: bytes          # strict root payload up to the child sig
    root_size: int           # node count of the full plan
    root_template: str       # template signature of the full plan
    scan_node: Scan          # shared scan instances: plans differ only
    jscan_node: Scan | None  # in the predicate literal above the scans
    aggregate: bool
    root_cols: tuple[str, ...]  # Aggregate group_by / Project columns


def _stamp_adhoc_plan(shape: _AdhocShape, column: str, value: float) -> Expression:
    """Stamp one ad-hoc plan from its cached shape.

    Equivalent to building the tree with the dataclass constructors, but
    ~6x cheaper: frozen-dataclass ``__init__`` pays two
    ``object.__setattr__`` calls per field, while filling ``__dict__``
    directly (in field order, so pickles lay out identically) costs one
    dict store.  The scans carry no literal, so the shape's shared
    instances are reused across every plan of the same shape; equality
    and hashing stay structural either way.
    """
    pred = Predicate.__new__(Predicate)
    pd = pred.__dict__
    pd["column"] = column
    pd["op"] = "<="
    pd["value"] = value
    filt = Filter.__new__(Filter)
    fd = filt.__dict__
    fd["child"] = shape.scan_node
    fd["predicates"] = (pred,)
    top: Expression = filt
    if shape.jscan_node is not None:
        join = Join.__new__(Join)
        jd = join.__dict__
        jd["left"] = filt
        jd["right"] = shape.jscan_node
        jd["left_key"] = "key"
        jd["right_key"] = "key"
        top = join
    root = (Aggregate if shape.aggregate else Project).__new__(
        Aggregate if shape.aggregate else Project
    )
    rd = root.__dict__
    rd["child"] = top
    rd["group_by" if shape.aggregate else "columns"] = shape.root_cols
    return root


class ScopeWorkloadGenerator:
    """Builds templates once, then stamps out daily jobs."""

    #: Row-count bounds for derived (pipeline output) tables.  Real
    #: pipeline stages filter/aggregate, so outputs stay bounded instead
    #: of compounding down the chain.
    _DERIVED_MIN_ROWS = 1_000
    _DERIVED_MAX_ROWS = 20_000_000

    @classmethod
    def _derived_columns(cls, n_rows: int) -> tuple[ColumnStats, ...]:
        """Columns every derived table exposes, key distincts scaled to size."""
        return (
            ColumnStats("key", distinct=max(1_000, n_rows // 2)),
            ColumnStats("a0", distinct=200, low=0, high=1000, skew=0.5),
            ColumnStats("a1", distinct=50, low=0, high=100),
        )

    def __init__(
        self,
        catalog: Catalog | None = None,
        config: ScopeWorkloadConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or ScopeWorkloadConfig()
        self._rng = np.random.default_rng(rng)
        self.catalog = catalog or Catalog.synthetic(n_tables=8, rng=self._rng)
        self._base_tables = self.catalog.tables()
        self._fragments = self._build_fragments()
        self.templates = self._build_templates()
        self._register_derived_tables()
        self._templates_by_hour = sorted(
            self.templates, key=lambda t: t.submit_hour_offset
        )
        # Streaming state: the RNG position a fresh generator's first
        # ``generate()`` starts from, plus the position at the start of
        # every day already replayed — day-addressable random access.
        self._day_states: dict[int, dict] = {0: deepcopy(self._rng.bit_generator.state)}
        # Fused-batch caches, all derivable from the templates above and
        # rebuilt lazily after pickling (see __getstate__): checkpoints
        # must stay manifest-sized, not carry 100k+ cached id strings.
        self._rec_meta: list[tuple[_Template, list[str] | None]] | None = None
        self._rec_offsets: np.ndarray | None = None
        self._rec_id_suffixes: list[str] | None = None
        self._adhoc_id_suffixes: list[str] | None = None
        self._adhoc_shapes: dict[tuple, _AdhocShape] = {}
        self._filter_cands: dict[str, tuple[ColumnStats, ...]] = {}

    #: Bound on cached ad-hoc signature scaffolds (FIFO-evicted beyond
    #: it; re-deriving an evicted shape is bit-identical, so the cap is
    #: purely a memory bound for month-long runs).  Sized above the
    #: ~49k distinct shapes a single 1M-job day draws, so hot sets
    #: never thrash.
    _ADHOC_SHAPE_CAP = 65536

    #: cache attributes dropped from pickles and rebuilt on first use.
    _LAZY_CACHES = (
        "_rec_meta", "_rec_offsets", "_rec_id_suffixes",
        "_adhoc_id_suffixes", "_adhoc_shapes", "_filter_cands",
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name in self._LAZY_CACHES:
            state[name] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._adhoc_shapes = {}
        self._filter_cands = {}

    # -- construction --------------------------------------------------------
    def _random_table_rng(self, rng: np.random.Generator) -> TableDef:
        # Only base tables: derived pipeline outputs are never scanned by
        # templates other than their pipeline consumer.
        return self._base_tables[int(rng.integers(0, len(self._base_tables)))]

    def _random_table(self) -> TableDef:
        return self._random_table_rng(self._rng)

    def _random_fact_table(self) -> TableDef:
        """One of the largest base tables (the shared-log-scan pattern).

        Shared fragments model the expensive common computation of real
        SCOPE workloads — scans/filters over massive shared logs — so
        they draw from the top quartile of tables by row count.
        """
        ranked = sorted(self._base_tables, key=lambda t: -t.n_rows)
        top = ranked[: max(1, len(ranked) // 4)]
        return top[int(self._rng.integers(0, len(top)))]

    def _random_dim_table(self) -> TableDef:
        """One of the smaller base tables (typical join partners)."""
        ranked = sorted(self._base_tables, key=lambda t: t.n_rows)
        bottom = ranked[: max(1, 3 * len(ranked) // 4)]
        return bottom[int(self._rng.integers(0, len(bottom)))]

    def _random_filter_column_rng(
        self, rng: np.random.Generator, table: TableDef
    ) -> ColumnStats:
        candidates = [c for c in table.columns if c.name != "key"]
        if not candidates:
            return table.columns[0]
        return candidates[int(rng.integers(0, len(candidates)))]

    def _random_filter_column(self, table: TableDef) -> ColumnStats:
        return self._random_filter_column_rng(self._rng, table)

    def _build_fragments(self) -> list[_Fragment]:
        fragments = []
        for i in range(self.config.n_shared_fragments):
            table = self._random_fact_table()
            column = self._random_filter_column(table)
            fragments.append(
                _Fragment(
                    fragment_id=i,
                    table=table.name,
                    column=column.name,
                    base_value=float(
                        self._rng.uniform(column.low + 1, column.high)
                    ),
                )
            )
        return fragments

    def _build_templates(self) -> list[_Template]:
        cfg = self.config
        templates: list[_Template] = []
        for tid in range(cfg.n_recurring_templates):
            use_fragment = (
                self._fragments
                and self._rng.random() < cfg.shared_fragment_templates
            )
            fragment = (
                self._fragments[int(self._rng.integers(0, len(self._fragments)))]
                if use_fragment
                else None
            )
            base_table = self._random_table()
            anchor = (
                self.catalog.get(fragment.table) if fragment else base_table
            )
            filter_col = self._random_filter_column(anchor)
            join_table = (
                self._random_dim_table().name
                if self._rng.random() < 0.6
                else None
            )
            group_col = filter_col.name if self._rng.random() < 0.5 else None
            templates.append(
                _Template(
                    template_id=tid,
                    fragment=fragment,
                    base_table=base_table.name,
                    join_table=join_table,
                    filter_column=filter_col.name,
                    filter_base_value=float(
                        self._rng.uniform(filter_col.low + 1, filter_col.high)
                    ),
                    group_column=group_col,
                    submit_hour_offset=float(self._rng.uniform(0, 20)),
                )
            )
        self._wire_pipelines(templates)
        return templates

    def _wire_pipelines(self, templates: list[_Template]) -> None:
        """Chain a ``pipeline_fraction`` share of templates into pipelines."""
        cfg = self.config
        n_in_pipelines = int(round(cfg.pipeline_fraction * len(templates)))
        order = self._rng.permutation(len(templates))[:n_in_pipelines]
        cursor = 0
        pipeline_id = 0
        lo, hi = cfg.pipeline_length
        while cursor < len(order):
            length = int(self._rng.integers(lo, hi + 1))
            chain = [templates[i] for i in order[cursor : cursor + length]]
            if len(chain) < 2:
                break
            for position, template in enumerate(chain):
                template.pipeline_id = pipeline_id
                template.output_table = f"out_t{template.template_id}"
                if position > 0:
                    producer = chain[position - 1]
                    template.upstream_template = producer.template_id
                    # Consumers run after their producer within the day and
                    # filter on a column the derived table actually has.
                    template.submit_hour_offset = min(
                        23.0, producer.submit_hour_offset + 1.0
                    )
                    template.filter_column = "a0"
                    template.group_column = (
                        "a1" if template.group_column else None
                    )
                    template.join_table = None
            cursor += length
            pipeline_id += 1

    def _register_derived_tables(self) -> None:
        """Register pipeline output tables with plausible statistics."""
        estimator = DefaultCardinalityEstimator(self.catalog)
        # Producers first (template order is not topological, so iterate
        # until all derived tables resolve).
        pending = [t for t in self.templates if t.output_table is not None]
        for _ in range(len(pending) + 1):
            still_pending = []
            for template in pending:
                upstream = template.upstream_template
                if (
                    upstream is not None
                    and f"out_t{upstream}" not in self.catalog
                ):
                    still_pending.append(template)
                    continue
                plan, _ = template.instantiate(day=0, drift=0.0)
                rows = int(
                    np.clip(
                        estimator.estimate(plan),
                        self._DERIVED_MIN_ROWS,
                        self._DERIVED_MAX_ROWS,
                    )
                )
                self.catalog.add(
                    TableDef(
                        name=template.output_table,
                        n_rows=rows,
                        columns=self._derived_columns(rows),
                        row_bytes=120,
                    )
                )
            pending = still_pending
            if not pending:
                break

    # -- generation ----------------------------------------------------------
    @property
    def recurring_per_day(self) -> int:
        return len(self.templates) * self.config.instances_per_template

    @property
    def adhoc_per_day(self) -> int:
        cfg = self.config
        return int(
            round(
                self.recurring_per_day * (1.0 - cfg.recurring_fraction)
                / max(cfg.recurring_fraction, 1e-9)
            )
        )

    def _recurring_job_id(self, day: int, template_id: int, instance: int) -> str:
        return f"d{day:03d}-" + self._id_suffix(template_id, instance)

    def _generate_day(self, day: int, rng: np.random.Generator) -> list[Job]:
        """One day's jobs, sorted by submit hour.

        All randomness comes from ``rng`` (only ad-hoc jobs draw), so the
        same RNG state always reproduces the same day.  Because every
        day's submit hours fall strictly inside ``[24*day, 24*(day+1))``
        and Python's sort is stable, concatenating per-day sorted lists
        is bit-identical to the old whole-trace global sort.
        """
        cfg = self.config
        instances = cfg.instances_per_template
        jobs: list[Job] = []
        template_job_ids: dict[int, list[str]] = {}
        for template in self._templates_by_hour:
            plan, params = template.instantiate(day, cfg.drift_per_day)
            upstream_ids = (
                template_job_ids.get(template.upstream_template)
                if template.upstream_template is not None
                else None
            )
            ids: list[str] = []
            for k in range(instances):
                job_id = self._recurring_job_id(day, template.template_id, k)
                depends = ()
                if upstream_ids is not None:
                    depends = (upstream_ids[min(k, len(upstream_ids) - 1)],)
                jobs.append(
                    Job(
                        job_id=job_id,
                        plan=plan,
                        submit_hour=day * HOURS_PER_DAY
                        + template.submit_hour_offset,
                        template_id=template.template_id,
                        pipeline_id=template.pipeline_id,
                        params=params,
                        depends_on=depends,
                    )
                )
                ids.append(job_id)
            template_job_ids[template.template_id] = ids
        producers = [
            (
                self.catalog.get(t.output_table),
                template_job_ids[t.template_id][0],
                t.submit_hour_offset,
            )
            for t in self.templates
            if t.output_table is not None and t.template_id in template_job_ids
        ]
        for k in range(self.adhoc_per_day):
            jobs.append(self._adhoc_job(rng, day, k, producers))
        jobs.sort(key=_BY_SUBMIT_HOUR)
        return jobs

    def generate(self, n_days: int = 7) -> Workload:
        """Stamp out ``n_days`` of jobs (recurring daily + ad-hoc filler)."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        jobs: list[Job] = []
        for day in range(n_days):
            jobs.extend(self._generate_day(day, self._rng))
        return Workload(jobs=jobs, catalog=self.catalog, n_days=n_days)

    # -- streaming -----------------------------------------------------------
    def day_jobs(self, day: int) -> list[Job]:
        """One day's jobs without materializing any other day.

        Replays the seeded stream to ``day`` if needed (caching the RNG
        state at each day boundary, so forward iteration is O(1) per
        day) and returns exactly the jobs a fresh generator's first
        ``generate()`` would place on that day.  Never consumes
        ``self._rng``: eager and streaming reads can interleave freely.
        """
        if day < 0:
            raise ValueError("day must be >= 0")
        rng = self._replay_to(day)
        jobs = self._generate_day(day, rng)
        self._day_states.setdefault(day + 1, deepcopy(rng.bit_generator.state))
        return jobs

    def _replay_to(self, day: int) -> np.random.Generator:
        """An RNG positioned at the start of ``day``, caching boundaries.

        Intermediate days are advanced with :meth:`_skip_day` — the same
        draw sequence as full generation (see :meth:`_adhoc_draws`)
        without building a single ``Job`` — so random access to day *d*
        costs O(draws), not O(objects).
        """
        rng = np.random.default_rng()
        start = max(d for d in self._day_states if d <= day)
        rng.bit_generator.state = deepcopy(self._day_states[start])
        for replay in range(start, day):
            self._skip_day(replay, rng)
            self._day_states.setdefault(
                replay + 1, deepcopy(rng.bit_generator.state)
            )
        return rng

    def _skip_day(self, day: int, rng: np.random.Generator) -> None:
        """Advance ``rng`` past ``day`` without materializing its jobs.

        Recurring templates draw nothing at generation time, so a day's
        RNG consumption is exactly its ad-hoc draws.
        """
        producers = self._day_producers(day)
        for _ in range(self.adhoc_per_day):
            self._adhoc_draws(rng, day, producers)

    def _day_producers(self, day: int) -> list[tuple[TableDef, str, float]]:
        """The (output table, first job id, hour) producer list of a day.

        Identical contents and order to the list ``_generate_day``
        assembles from its freshly-stamped jobs — every template stamps
        at least one instance, so membership is simply "has an output
        table", and the first instance's id is a pure function of
        ``(day, template_id)``.
        """
        prefix = f"d{day:03d}-"
        return [
            (
                self.catalog.get(t.output_table),
                prefix + self._id_suffix(t.template_id, 0),
                t.submit_hour_offset,
            )
            for t in self.templates
            if t.output_table is not None
        ]

    def _id_suffix(self, template_id: int, instance: int) -> str:
        """Day-independent tail of a recurring job id."""
        if self.config.instances_per_template == 1:
            return f"t{template_id:03d}"
        return f"t{template_id:03d}-i{instance:03d}"

    def iter_jobs(self, day: int) -> Iterator[Job]:
        """Iterate one day's jobs in submit order (see :meth:`day_jobs`)."""
        return iter(self.day_jobs(day))

    def stream_days(self, n_days: int, start_day: int = 0) -> Iterator[list[Job]]:
        """Yield one day's job list at a time, never a full ``Workload``.

        ``list(stream_days(n))`` flattens to the same jobs as
        ``generate(n)`` at the same seed — the pinned equivalence the
        scale tests gate on — but peak memory is one day, not the trace.
        """
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        for day in range(start_day, start_day + n_days):
            yield self.day_jobs(day)

    def _filter_candidates(self, table: TableDef) -> tuple[ColumnStats, ...]:
        """Non-key columns of ``table`` (the ad-hoc filter candidates)."""
        cands = self._filter_cands.get(table.name)
        if cands is None:
            cands = tuple(c for c in table.columns if c.name != "key")
            self._filter_cands[table.name] = cands
        return cands

    def _adhoc_draws(
        self,
        rng: np.random.Generator,
        day: int,
        producers: list[tuple[TableDef, str, float]],
    ) -> tuple[str, str, float, str | None, bool, float, tuple[str, ...]]:
        """Every random decision one ad-hoc job makes, in draw order.

        This is the single source of truth for the ad-hoc RNG stream:
        the per-job streaming path (:meth:`_adhoc_job`), the fused
        batch path (:meth:`day_batch`), and the replay skip
        (:meth:`_skip_day`) all consume ``rng`` through here, so every
        path advances the generator through the *identical* sequence of
        calls — the invariant the bit-identity pins rest on.  Returns
        ``(table, column, value, join_table, aggregate, submit_hour,
        depends_on)``.

        ``uniform(lo, hi)`` draws are written as ``lo + (hi - lo) *
        random()`` — the exact arithmetic ``Generator.uniform`` performs
        on the same single draw, so the stream and the values are
        bit-identical while skipping the broadcasting machinery (this
        loop runs a million times a day).
        """
        random = rng.random
        integers = rng.integers
        base_tables = self._base_tables
        depends: tuple[str, ...] = ()
        submit_hour = day * HOURS_PER_DAY + 24.0 * random()
        if producers and random() < self.config.adhoc_dependency_fraction:
            table, producer_job, producer_hour = producers[
                int(integers(0, len(producers)))
            ]
            depends = (producer_job,)
            # A consumer cannot start before its producer ran.
            submit_hour = day * HOURS_PER_DAY + min(
                23.9, producer_hour + (0.5 + 3.5 * random())
            )
        else:
            table = base_tables[int(integers(0, len(base_tables)))]
        candidates = self._filter_candidates(table)
        if candidates:
            column = candidates[int(integers(0, len(candidates)))]
        else:
            column = table.columns[0]
        value = column.low + (column.high - column.low) * random()
        join_table = (
            base_tables[int(integers(0, len(base_tables)))].name
            if random() < 0.5
            else None
        )
        aggregate = random() < 0.5
        return (
            table.name, column.name, value, join_table, aggregate,
            submit_hour, depends,
        )

    def _adhoc_plan(
        self,
        table: str,
        column: str,
        value: float,
        join_table: str | None,
        aggregate: bool,
    ) -> Expression:
        """Build the ad-hoc plan an :meth:`_adhoc_draws` tuple describes."""
        shape = self._adhoc_shape(table, column, join_table, aggregate)
        return _stamp_adhoc_plan(shape, column, value)

    def _adhoc_job(
        self,
        rng: np.random.Generator,
        day: int,
        index: int,
        producers: list[tuple[str, str, float]],
    ) -> Job:
        """A one-off job with randomized structure and literals.

        With probability ``adhoc_dependency_fraction`` the job consumes a
        pipeline's derived output table (ad-hoc analysis over production
        data), giving it an inter-job dependency.
        """
        table, column, value, join_table, aggregate, submit_hour, depends = (
            self._adhoc_draws(rng, day, producers)
        )
        return Job(
            job_id=f"d{day:03d}-adhoc{index:03d}",
            plan=self._adhoc_plan(table, column, value, join_table, aggregate),
            submit_hour=submit_hour,
            depends_on=depends,
        )

    # -- fused batch generation ----------------------------------------------
    def _recurring_meta(self) -> list[tuple[_Template, list[str] | None]]:
        """Per template (by-hour order): the template plus dependency tails.

        A consumer instance depends on its producer's matching instance
        *iff* the producer was stamped earlier in by-hour order — the
        exact ``template_job_ids.get`` behaviour of ``_generate_day``
        (equal-hour ties resolve by template id, so a chain wired
        "backwards" at the 23.0 clamp yields no edge there either).
        """
        if self._rec_meta is None:
            instances = self.config.instances_per_template
            meta: list[tuple[_Template, list[str] | None]] = []
            stamped: set[int] = set()
            for template in self._templates_by_hour:
                upstream = template.upstream_template
                tails = (
                    [self._id_suffix(upstream, k) for k in range(instances)]
                    if upstream is not None and upstream in stamped
                    else None
                )
                meta.append((template, tails))
                stamped.add(template.template_id)
            self._rec_meta = meta
        return self._rec_meta

    def _recurring_columns(self) -> tuple[np.ndarray, list[str]]:
        """(submit-hour offsets, id tails), one per recurring instance."""
        if self._rec_offsets is None or self._rec_id_suffixes is None:
            instances = self.config.instances_per_template
            meta = self._recurring_meta()
            self._rec_offsets = np.repeat(
                np.asarray(
                    [t.submit_hour_offset for t, _tails in meta],
                    dtype=np.float64,
                ),
                instances,
            )
            self._rec_id_suffixes = [
                self._id_suffix(t.template_id, k)
                for t, _tails in meta
                for k in range(instances)
            ]
        return self._rec_offsets, self._rec_id_suffixes

    def _adhoc_tails(self) -> list[str]:
        if self._adhoc_id_suffixes is None:
            self._adhoc_id_suffixes = [
                f"adhoc{k:03d}" for k in range(self.adhoc_per_day)
            ]
        return self._adhoc_id_suffixes

    def _adhoc_shape(
        self, table: str, column: str, join_table: str | None, aggregate: bool
    ) -> _AdhocShape:
        """Cached signature scaffolding for one ad-hoc plan shape."""
        key = (table, column, join_table, aggregate)
        shape = self._adhoc_shapes.get(key)
        if shape is not None:
            return shape
        scan_sig = _digest(f"Scan:{table}()")
        filt_template = _digest(f"Filter:{column}<=?({scan_sig})")
        if join_table is not None:
            jscan_sig = _digest(f"Scan:{join_table}()")
            join_pre = "Join:key=key("
            join_post = f"|{jscan_sig})"
            top_template = _digest(
                f"{join_pre}{filt_template}{join_post}"
            )
            root_size = 5
        else:
            jscan_sig = join_pre = join_post = None
            top_template = filt_template
            root_size = 3
        root_desc = (
            f"Aggregate:{column}" if aggregate else f"Project:{column},key"
        )
        if len(self._adhoc_shapes) >= self._ADHOC_SHAPE_CAP:
            # FIFO-evict: shapes are pure functions of the key, so a
            # re-derived shape is identical — the cap only bounds
            # resident memory over long runs (the shape space is the
            # catalog's full table x column x join x aggregate product,
            # which at 100k-job scale never stops minting new combos).
            del self._adhoc_shapes[next(iter(self._adhoc_shapes))]
        shape = _AdhocShape(
            scan_raw=bytes.fromhex(scan_sig),
            jscan_raw=(
                bytes.fromhex(jscan_sig) if jscan_sig is not None else None
            ),
            filt_pre=f"Filter:{column}<=".encode(),
            filt_post=f"({scan_sig})".encode(),
            join_pre=join_pre.encode() if join_pre is not None else None,
            join_post=join_post.encode() if join_post is not None else None,
            root_pre=f"{root_desc}(".encode(),
            root_size=root_size,
            root_template=_digest(f"{root_desc}({top_template})"),
            scan_node=Scan(table),
            jscan_node=Scan(join_table) if join_table is not None else None,
            aggregate=aggregate,
            root_cols=(column,) if aggregate else (column, "key"),
        )
        self._adhoc_shapes[key] = shape
        return shape

    def day_batch(self, day: int) -> "JobBatch":
        """One day, fused straight into :class:`JobBatch` columns.

        Bit-identical to ``JobBatch.from_jobs(self.day_jobs(day))`` —
        same columns, pools, interning order, and RNG advancement — but
        no per-job ``Job`` objects, no Python sort, and only 2–3 SHA1
        calls per unique ad-hoc plan instead of a full signature pass:
        recurring instances are stamped from one per-template skeleton
        via columnar repeats, and the day never exists as a
        million-element list.  Interleaves freely with
        :meth:`day_jobs`/:meth:`stream_days` (shared day-state cache).
        """
        if day < 0:
            raise ValueError("day must be >= 0")
        rng = self._replay_to(day)
        # One day is a pure allocation burst of acyclic objects (frozen
        # plan trees, strings, arrays): pausing collection while it runs
        # saves the collector re-scanning a million young objects it can
        # never free (~30% of wall time at 1M jobs/day).
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            batch = self._build_day_batch(day, rng)
        finally:
            if was_enabled:
                gc.enable()
        self._day_states.setdefault(day + 1, deepcopy(rng.bit_generator.state))
        return batch

    def _build_day_batch(self, day: int, rng: np.random.Generator) -> "JobBatch":
        from repro.core.peregrine.repository import JobBatch

        cfg = self.config
        instances = cfg.instances_per_template
        prefix = f"d{day:03d}-"
        meta = self._recurring_meta()
        n_templates = len(meta)
        n_rec = n_templates * instances
        n_adhoc = self.adhoc_per_day

        # Per-ref pools in draw order (refs 0..T-1 are the recurring
        # skeletons, T..T+A-1 the ad-hoc plans).  Signature names and
        # node sizes go into one flat draw-order stream with per-ref
        # lengths; a single vectorized gather permutes them to plan-code
        # order below instead of juggling 350k small lists.
        ref_plans: list[Expression] = []
        ref_templates: list[str] = []
        ref_stricts: list[str] = []
        ref_params: list[dict | None] = []
        names_flat: list[bytes] = []
        sizes_flat: list[int] = []
        ref_lens: list[int] = []
        pre_deps: dict[int, tuple[str, ...]] = {}
        for j, (template, dep_tails) in enumerate(meta):
            plan, params = template.instantiate(day, cfg.drift_per_day)
            strict_map, _template_map = enumerate_all_signatures(plan)
            sigs = signatures(plan)
            ref_plans.append(plan)
            ref_templates.append(sigs.template)
            ref_stricts.append(sigs.strict)
            names_flat.extend(bytes.fromhex(s) for s in strict_map)
            sizes_flat.extend(node.size for node in strict_map.values())
            ref_lens.append(len(strict_map))
            ref_params.append(params)
            if dep_tails is not None:
                base = j * instances
                for k, tail in enumerate(dep_tails):
                    pre_deps[base + k] = (prefix + tail,)
        rec_offsets, rec_tails = self._recurring_columns()
        rec_hours = rec_offsets + day * HOURS_PER_DAY

        # Ad-hoc refs: the draws stay strictly sequential (the RNG
        # contract — see :meth:`_adhoc_draws`), everything downstream of
        # each draw runs on prebound locals.  The signature block mirrors
        # ``enumerate_all_signatures``'s post-order walk with setdefault
        # dedup — the joined scan re-reading the filtered base table is
        # the only duplicate a 4-node ad-hoc shape can produce.
        producers = self._day_producers(day)
        adhoc_hours = np.empty(n_adhoc, dtype=np.float64)
        draws = self._adhoc_draws
        get_shape = self._adhoc_shape
        _sha1 = sha1
        _hex = hexlify
        plans_append = ref_plans.append
        templates_append = ref_templates.append
        stricts_append = ref_stricts.append
        params_append = ref_params.append
        names_extend = names_flat.extend
        sizes_extend = sizes_flat.extend
        lens_append = ref_lens.append
        for k in range(n_adhoc):
            table, column, value, join_table, aggregate, hour, depends = (
                draws(rng, day, producers)
            )
            adhoc_hours[k] = hour
            if depends:
                pre_deps[n_rec + k] = depends
            shape = get_shape(table, column, join_table, aggregate)
            filt_raw = _sha1(
                shape.filt_pre + repr(value).encode() + shape.filt_post
            ).digest()[:8]
            if shape.jscan_raw is not None:
                top_raw = _sha1(
                    shape.join_pre + _hex(filt_raw) + shape.join_post
                ).digest()[:8]
                root_raw = _sha1(
                    shape.root_pre + _hex(top_raw) + b")"
                ).digest()[:8]
                if join_table == table:
                    names_extend((shape.scan_raw, filt_raw, top_raw, root_raw))
                    sizes_extend((1, 2, 4, shape.root_size))
                    lens_append(4)
                else:
                    names_extend((
                        shape.scan_raw, filt_raw, shape.jscan_raw,
                        top_raw, root_raw,
                    ))
                    sizes_extend((1, 2, 1, 4, shape.root_size))
                    lens_append(5)
            else:
                root_raw = _sha1(
                    shape.root_pre + _hex(filt_raw) + b")"
                ).digest()[:8]
                names_extend((shape.scan_raw, filt_raw, root_raw))
                sizes_extend((1, 2, shape.root_size))
                lens_append(3)
            plans_append(_stamp_adhoc_plan(shape, column, value))
            templates_append(shape.root_template)
            stricts_append(root_raw.hex())
            params_append(None)

        # Stable sort by submit hour == the legacy per-day Python sort.
        hours = (
            np.concatenate([rec_hours, adhoc_hours]) if n_adhoc else rec_hours
        )
        refs = np.concatenate(
            [
                np.repeat(np.arange(n_templates, dtype=np.int64), instances),
                np.arange(n_templates, n_templates + n_adhoc, dtype=np.int64),
            ]
        )
        order = np.argsort(hours, kind="stable")
        sorted_refs = refs[order]

        # Plan codes by first appearance in sorted order — the exact
        # ``plan_index.setdefault`` numbering of ``JobBatch.from_jobs``.
        uniq, first_idx, inverse = np.unique(
            sorted_refs, return_index=True, return_inverse=True
        )
        code_of_uniq = np.empty(len(uniq), dtype=np.uint32)
        appearance = np.argsort(first_idx, kind="stable")
        code_of_uniq[appearance] = np.arange(len(uniq), dtype=np.uint32)
        plan_codes = code_of_uniq[inverse].astype(np.uint32, copy=False)
        ref_order_arr = uniq[appearance]
        ref_order = ref_order_arr.tolist()

        all_tails = rec_tails + self._adhoc_tails()
        order_list = order.tolist()
        job_ids = [prefix + all_tails[i] for i in order_list]

        # Pools in plan-code order; signature interning in first-sighting
        # order across plans — one gather permutes the draw-order name
        # stream to plan-code order, then ``np.unique`` over the
        # fixed-width digest bytes plus an appearance-rank remap replaces
        # a million dict probes with a handful of array ops.  One params
        # entry per plan (``from_jobs`` keys params on the plan code, so
        # codes and param codes agree).
        plans = [ref_plans[r] for r in ref_order]
        plan_templates = [ref_templates[r] for r in ref_order]
        plan_stricts = [ref_stricts[r] for r in ref_order]
        params_pool: list[dict] = []
        for r in ref_order:
            params = ref_params[r]
            params_pool.append({} if params is None else dict(params))
        lens_draw = np.asarray(ref_lens, dtype=np.int64)
        offs_draw = np.concatenate(([0], np.cumsum(lens_draw)))[:-1]
        # Raw 8-byte digests are bijective with the 16-hex-char names,
        # so dedup runs on a uint64 view (~6x faster than S16 strings)
        # and only the surviving pool is hexlified, wholesale.
        flat_draw = np.frombuffer(b"".join(names_flat), dtype=np.uint64)
        sizes_draw = np.asarray(sizes_flat, dtype=np.int64)
        lens_sorted = lens_draw[ref_order_arr]
        total = int(lens_sorted.sum())
        seg_base = np.repeat(np.cumsum(lens_sorted) - lens_sorted, lens_sorted)
        gather = (
            np.repeat(offs_draw[ref_order_arr], lens_sorted)
            + np.arange(total, dtype=np.int64)
            - seg_base
        )
        flat_sorted = flat_draw[gather]
        uniq_names, name_first, name_inverse = np.unique(
            flat_sorted, return_index=True, return_inverse=True
        )
        name_rank = np.argsort(name_first, kind="stable")
        sig_code_of = np.empty(len(uniq_names), dtype=np.uint32)
        sig_code_of[name_rank] = np.arange(len(uniq_names), dtype=np.uint32)
        codes_flat = sig_code_of[name_inverse].astype(np.uint32, copy=False)
        plan_sig_codes = np.split(codes_flat, np.cumsum(lens_sorted)[:-1])
        hex_pool = uniq_names[name_rank].tobytes().hex()
        sig_names = [
            hex_pool[i:i + 16] for i in range(0, len(hex_pool), 16)
        ]
        sig_sizes = sizes_draw[gather[name_first[name_rank]]].tolist()

        inv = np.empty(len(order), dtype=np.int64)
        inv[order] = np.arange(len(order))
        deps_rows = sorted(
            (int(inv[pre]), deps) for pre, deps in pre_deps.items()
        )
        return JobBatch(
            day=day,
            job_ids=job_ids,
            submit_hours=hours[order],
            plan_codes=plan_codes,
            param_codes=plan_codes.copy(),
            plans=plans,
            plan_templates=plan_templates,
            plan_stricts=plan_stricts,
            plan_sig_codes=plan_sig_codes,
            sig_names=sig_names,
            sig_sizes=sig_sizes,
            params_pool=params_pool,
            deps_map=dict(deps_rows),
        )
