"""SCOPE-like recurring job and pipeline trace generator.

Section 4.2's learning opportunities all come from workload structure:
"over 60% of jobs are recurring (involving periodic runs of scripts with
the same operations but different predicate values), and nearly 40% of
daily jobs share common subexpressions with at least one other job", and
"70% of daily SCOPE jobs have inter-job dependencies".

The generator is calibrated to those statistics:

- *recurring templates* re-run daily with drifting predicate literals
  (same template signature, new strict signature),
- a pool of *shared fragments* — day-parameterized subplans whose
  literals depend only on (fragment, day) — appears inside several
  templates, so jobs within a day share strictly-equal subexpressions,
- templates are chained into *pipelines*: a consumer scans the derived
  output table of its producer and depends on the producer's job,
- the remainder are *ad-hoc* one-off jobs with random structure.
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.engine import (
    Aggregate,
    Catalog,
    ColumnStats,
    DefaultCardinalityEstimator,
    Expression,
    Filter,
    Join,
    Predicate,
    Project,
    Scan,
    TableDef,
)
from repro.parallel import DEFAULT_N_SHARDS, shard_items

HOURS_PER_DAY = 24.0


def _job_shard_key(job: "Job") -> str:
    """Stable shard key: template for recurring jobs, job id for ad-hoc.

    Keying recurring jobs by template keeps every instance of a template
    in one shard, so per-template analyses (candidate enumeration,
    micromodel training) never straddle a shard boundary.  Module-level
    so sharded job lists stay picklable for process pools.
    """
    if job.template_id is not None:
        return f"template:{job.template_id}"
    return f"job:{job.job_id}"


@dataclass
class Job:
    """A single submitted job (one plan, one submit time)."""

    job_id: str
    plan: Expression
    submit_hour: float
    template_id: int | None = None   # None marks an ad-hoc job
    pipeline_id: int | None = None
    params: dict[str, float] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()

    @property
    def is_recurring(self) -> bool:
        return self.template_id is not None

    @property
    def day(self) -> int:
        return int(self.submit_hour // HOURS_PER_DAY)


@dataclass
class Workload:
    """A multi-day trace of jobs plus the catalog they run against.

    ``by_day`` and ``shards`` return memoized tuples: the trace is
    immutable once built, so callers get zero-copy views instead of a
    fresh list per call (both sit in per-day fabric loops).
    """

    jobs: list[Job]
    catalog: Catalog
    n_days: int

    def __post_init__(self) -> None:
        self._day_cache: dict[int, tuple[Job, ...]] = {}
        self._shard_cache: dict[int, tuple[tuple[Job, ...], ...]] = {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_day_cache"] = {}
        state["_shard_cache"] = {}
        return state

    def __len__(self) -> int:
        return len(self.jobs)

    def by_day(self, day: int) -> tuple[Job, ...]:
        cached = self._day_cache.get(day)
        if cached is None:
            cached = tuple(j for j in self.jobs if j.day == day)
            self._day_cache[day] = cached
        return cached

    def by_template(self, template_id: int) -> list[Job]:
        return [j for j in self.jobs if j.template_id == template_id]

    def recurring_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.is_recurring for j in self.jobs) / len(self.jobs)

    def pipeline_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.pipeline_id is not None for j in self.jobs) / len(self.jobs)

    def dependency_fraction(self) -> float:
        """Fraction of jobs participating in an inter-job dependency."""
        if not self.jobs:
            return 0.0
        involved: set[str] = set()
        for job in self.jobs:
            if job.depends_on:
                involved.add(job.job_id)
                involved.update(job.depends_on)
        return len(involved) / len(self.jobs)

    def job(self, job_id: str) -> Job:
        for j in self.jobs:
            if j.job_id == job_id:
                return j
        raise KeyError(f"unknown job {job_id!r}")

    def shards(self, n_shards: int = DEFAULT_N_SHARDS) -> tuple[tuple[Job, ...], ...]:
        """Deterministic fan-out-ready partition of the trace.

        Shard membership depends only on each job's stable key (template
        id for recurring jobs, job id for ad-hoc) and the shard count —
        never on worker count or hash seed — so sharded analyses merge
        back identically on every run.  Submit order is preserved within
        each shard.  The assignment is memoized per shard count and
        returned as tuples — treat them as read-only views.
        """
        cached = self._shard_cache.get(n_shards)
        if cached is None:
            cached = tuple(
                tuple(shard)
                for shard in shard_items(
                    self.jobs, key=_job_shard_key, n_shards=n_shards
                )
            )
            self._shard_cache[n_shards] = cached
        return cached


@dataclass
class ScopeWorkloadConfig:
    """Calibration knobs (defaults match the paper's published fractions)."""

    n_recurring_templates: int = 30
    recurring_fraction: float = 0.65
    n_shared_fragments: int = 6
    shared_fragment_templates: float = 0.65  # templates embedding a fragment
    pipeline_fraction: float = 0.8          # templates that sit in pipelines
    pipeline_length: tuple[int, int] = (2, 4)
    adhoc_dependency_fraction: float = 0.5  # ad-hoc jobs reading pipeline output
    drift_per_day: float = 0.01             # predicate literal drift rate
    instances_per_template: int = 1         # daily runs per recurring template

    def __post_init__(self) -> None:
        if self.n_recurring_templates < 1:
            raise ValueError("n_recurring_templates must be >= 1")
        if self.instances_per_template < 1:
            raise ValueError("instances_per_template must be >= 1")
        for name in ("recurring_fraction", "shared_fragment_templates",
                     "pipeline_fraction", "adhoc_dependency_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        lo, hi = self.pipeline_length
        if lo < 2 or hi < lo:
            raise ValueError("pipeline_length must satisfy 2 <= lo <= hi")

    @classmethod
    def for_scale(cls, jobs_per_day: int, **overrides) -> "ScopeWorkloadConfig":
        """Calibrated config sized for roughly ``jobs_per_day`` daily jobs.

        Keeps the paper's recurring/pipeline/dependency fractions but
        scales the template catalog and per-template instance count so a
        single generated day lands near the requested size.  Template
        diversity is capped (structural variety, not volume, is what
        costs memory downstream), and the remaining volume comes from
        extra daily instances per template — matching how real SCOPE
        clusters get to 100k+ jobs/day from a few thousand scripts.
        """
        if jobs_per_day < 1:
            raise ValueError("jobs_per_day must be >= 1")
        fraction = overrides.get("recurring_fraction", cls.recurring_fraction)
        recurring = max(1, int(round(jobs_per_day * fraction)))
        overrides.setdefault(
            "n_recurring_templates", max(30, min(2000, recurring // 32))
        )
        overrides.setdefault(
            "instances_per_template",
            max(1, round(recurring / overrides["n_recurring_templates"])),
        )
        return cls(**overrides)


@dataclass
class _Fragment:
    """A shared subplan: literals depend only on (fragment, day)."""

    fragment_id: int
    table: str
    column: str
    base_value: float

    def instantiate(self, day: int, drift: float) -> Expression:
        value = self.base_value * (1.0 + drift * day)
        return Filter(Scan(self.table), (Predicate(self.column, "<=", value),))


@dataclass
class _Template:
    """A recurring script: fixed structure, day-parameterized literals."""

    template_id: int
    fragment: _Fragment | None
    base_table: str            # scanned when there is no fragment
    join_table: str | None
    filter_column: str
    filter_base_value: float
    group_column: str | None
    submit_hour_offset: float  # within-day submit time
    pipeline_id: int | None = None
    upstream_template: int | None = None  # producer in the pipeline
    output_table: str | None = None       # derived table this job writes

    def instantiate(self, day: int, drift: float) -> tuple[Expression, dict]:
        value = self.filter_base_value * (1.0 + drift * day)
        if self.upstream_template is not None:
            # Consumers read their producer's derived output table,
            # enriching it with the shared fragment when they have one.
            core: Expression = Scan(f"out_t{self.upstream_template}")
            if self.fragment is not None:
                core = Join(
                    core, self.fragment.instantiate(day, drift), "key", "key"
                )
        elif self.fragment is not None:
            core = self.fragment.instantiate(day, drift)
        else:
            core = Scan(self.base_table)
        if self.join_table is not None:
            core = Join(core, Scan(self.join_table), "key", "key")
        core = Filter(core, (Predicate(self.filter_column, "<=", value),))
        if self.group_column is not None:
            core = Aggregate(core, (self.group_column,))
        params = {"filter_value": value}
        if self.fragment is not None:
            params["fragment_value"] = self.fragment.base_value * (
                1.0 + drift * day
            )
        return core, params


class ScopeWorkloadGenerator:
    """Builds templates once, then stamps out daily jobs."""

    #: Row-count bounds for derived (pipeline output) tables.  Real
    #: pipeline stages filter/aggregate, so outputs stay bounded instead
    #: of compounding down the chain.
    _DERIVED_MIN_ROWS = 1_000
    _DERIVED_MAX_ROWS = 20_000_000

    @classmethod
    def _derived_columns(cls, n_rows: int) -> tuple[ColumnStats, ...]:
        """Columns every derived table exposes, key distincts scaled to size."""
        return (
            ColumnStats("key", distinct=max(1_000, n_rows // 2)),
            ColumnStats("a0", distinct=200, low=0, high=1000, skew=0.5),
            ColumnStats("a1", distinct=50, low=0, high=100),
        )

    def __init__(
        self,
        catalog: Catalog | None = None,
        config: ScopeWorkloadConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or ScopeWorkloadConfig()
        self._rng = np.random.default_rng(rng)
        self.catalog = catalog or Catalog.synthetic(n_tables=8, rng=self._rng)
        self._base_tables = self.catalog.tables()
        self._fragments = self._build_fragments()
        self.templates = self._build_templates()
        self._register_derived_tables()
        self._templates_by_hour = sorted(
            self.templates, key=lambda t: t.submit_hour_offset
        )
        # Streaming state: the RNG position a fresh generator's first
        # ``generate()`` starts from, plus the position at the start of
        # every day already replayed — day-addressable random access.
        self._day_states: dict[int, dict] = {0: deepcopy(self._rng.bit_generator.state)}

    # -- construction --------------------------------------------------------
    def _random_table_rng(self, rng: np.random.Generator) -> TableDef:
        # Only base tables: derived pipeline outputs are never scanned by
        # templates other than their pipeline consumer.
        return self._base_tables[int(rng.integers(0, len(self._base_tables)))]

    def _random_table(self) -> TableDef:
        return self._random_table_rng(self._rng)

    def _random_fact_table(self) -> TableDef:
        """One of the largest base tables (the shared-log-scan pattern).

        Shared fragments model the expensive common computation of real
        SCOPE workloads — scans/filters over massive shared logs — so
        they draw from the top quartile of tables by row count.
        """
        ranked = sorted(self._base_tables, key=lambda t: -t.n_rows)
        top = ranked[: max(1, len(ranked) // 4)]
        return top[int(self._rng.integers(0, len(top)))]

    def _random_dim_table(self) -> TableDef:
        """One of the smaller base tables (typical join partners)."""
        ranked = sorted(self._base_tables, key=lambda t: t.n_rows)
        bottom = ranked[: max(1, 3 * len(ranked) // 4)]
        return bottom[int(self._rng.integers(0, len(bottom)))]

    def _random_filter_column_rng(
        self, rng: np.random.Generator, table: TableDef
    ) -> ColumnStats:
        candidates = [c for c in table.columns if c.name != "key"]
        if not candidates:
            return table.columns[0]
        return candidates[int(rng.integers(0, len(candidates)))]

    def _random_filter_column(self, table: TableDef) -> ColumnStats:
        return self._random_filter_column_rng(self._rng, table)

    def _build_fragments(self) -> list[_Fragment]:
        fragments = []
        for i in range(self.config.n_shared_fragments):
            table = self._random_fact_table()
            column = self._random_filter_column(table)
            fragments.append(
                _Fragment(
                    fragment_id=i,
                    table=table.name,
                    column=column.name,
                    base_value=float(
                        self._rng.uniform(column.low + 1, column.high)
                    ),
                )
            )
        return fragments

    def _build_templates(self) -> list[_Template]:
        cfg = self.config
        templates: list[_Template] = []
        for tid in range(cfg.n_recurring_templates):
            use_fragment = (
                self._fragments
                and self._rng.random() < cfg.shared_fragment_templates
            )
            fragment = (
                self._fragments[int(self._rng.integers(0, len(self._fragments)))]
                if use_fragment
                else None
            )
            base_table = self._random_table()
            anchor = (
                self.catalog.get(fragment.table) if fragment else base_table
            )
            filter_col = self._random_filter_column(anchor)
            join_table = (
                self._random_dim_table().name
                if self._rng.random() < 0.6
                else None
            )
            group_col = filter_col.name if self._rng.random() < 0.5 else None
            templates.append(
                _Template(
                    template_id=tid,
                    fragment=fragment,
                    base_table=base_table.name,
                    join_table=join_table,
                    filter_column=filter_col.name,
                    filter_base_value=float(
                        self._rng.uniform(filter_col.low + 1, filter_col.high)
                    ),
                    group_column=group_col,
                    submit_hour_offset=float(self._rng.uniform(0, 20)),
                )
            )
        self._wire_pipelines(templates)
        return templates

    def _wire_pipelines(self, templates: list[_Template]) -> None:
        """Chain a ``pipeline_fraction`` share of templates into pipelines."""
        cfg = self.config
        n_in_pipelines = int(round(cfg.pipeline_fraction * len(templates)))
        order = self._rng.permutation(len(templates))[:n_in_pipelines]
        cursor = 0
        pipeline_id = 0
        lo, hi = cfg.pipeline_length
        while cursor < len(order):
            length = int(self._rng.integers(lo, hi + 1))
            chain = [templates[i] for i in order[cursor : cursor + length]]
            if len(chain) < 2:
                break
            for position, template in enumerate(chain):
                template.pipeline_id = pipeline_id
                template.output_table = f"out_t{template.template_id}"
                if position > 0:
                    producer = chain[position - 1]
                    template.upstream_template = producer.template_id
                    # Consumers run after their producer within the day and
                    # filter on a column the derived table actually has.
                    template.submit_hour_offset = min(
                        23.0, producer.submit_hour_offset + 1.0
                    )
                    template.filter_column = "a0"
                    template.group_column = (
                        "a1" if template.group_column else None
                    )
                    template.join_table = None
            cursor += length
            pipeline_id += 1

    def _register_derived_tables(self) -> None:
        """Register pipeline output tables with plausible statistics."""
        estimator = DefaultCardinalityEstimator(self.catalog)
        # Producers first (template order is not topological, so iterate
        # until all derived tables resolve).
        pending = [t for t in self.templates if t.output_table is not None]
        for _ in range(len(pending) + 1):
            still_pending = []
            for template in pending:
                upstream = template.upstream_template
                if (
                    upstream is not None
                    and f"out_t{upstream}" not in self.catalog
                ):
                    still_pending.append(template)
                    continue
                plan, _ = template.instantiate(day=0, drift=0.0)
                rows = int(
                    np.clip(
                        estimator.estimate(plan),
                        self._DERIVED_MIN_ROWS,
                        self._DERIVED_MAX_ROWS,
                    )
                )
                self.catalog.add(
                    TableDef(
                        name=template.output_table,
                        n_rows=rows,
                        columns=self._derived_columns(rows),
                        row_bytes=120,
                    )
                )
            pending = still_pending
            if not pending:
                break

    # -- generation ----------------------------------------------------------
    @property
    def recurring_per_day(self) -> int:
        return len(self.templates) * self.config.instances_per_template

    @property
    def adhoc_per_day(self) -> int:
        cfg = self.config
        return int(
            round(
                self.recurring_per_day * (1.0 - cfg.recurring_fraction)
                / max(cfg.recurring_fraction, 1e-9)
            )
        )

    def _recurring_job_id(self, day: int, template_id: int, instance: int) -> str:
        if self.config.instances_per_template == 1:
            return f"d{day:03d}-t{template_id:03d}"
        return f"d{day:03d}-t{template_id:03d}-i{instance:03d}"

    def _generate_day(self, day: int, rng: np.random.Generator) -> list[Job]:
        """One day's jobs, sorted by submit hour.

        All randomness comes from ``rng`` (only ad-hoc jobs draw), so the
        same RNG state always reproduces the same day.  Because every
        day's submit hours fall strictly inside ``[24*day, 24*(day+1))``
        and Python's sort is stable, concatenating per-day sorted lists
        is bit-identical to the old whole-trace global sort.
        """
        cfg = self.config
        instances = cfg.instances_per_template
        jobs: list[Job] = []
        template_job_ids: dict[int, list[str]] = {}
        for template in self._templates_by_hour:
            plan, params = template.instantiate(day, cfg.drift_per_day)
            upstream_ids = (
                template_job_ids.get(template.upstream_template)
                if template.upstream_template is not None
                else None
            )
            ids: list[str] = []
            for k in range(instances):
                job_id = self._recurring_job_id(day, template.template_id, k)
                depends = ()
                if upstream_ids is not None:
                    depends = (upstream_ids[min(k, len(upstream_ids) - 1)],)
                jobs.append(
                    Job(
                        job_id=job_id,
                        plan=plan,
                        submit_hour=day * HOURS_PER_DAY
                        + template.submit_hour_offset,
                        template_id=template.template_id,
                        pipeline_id=template.pipeline_id,
                        params=params,
                        depends_on=depends,
                    )
                )
                ids.append(job_id)
            template_job_ids[template.template_id] = ids
        producers = [
            (
                t.output_table,
                template_job_ids[t.template_id][0],
                t.submit_hour_offset,
            )
            for t in self.templates
            if t.output_table is not None and t.template_id in template_job_ids
        ]
        for k in range(self.adhoc_per_day):
            jobs.append(self._adhoc_job(rng, day, k, producers))
        jobs.sort(key=lambda j: j.submit_hour)
        return jobs

    def generate(self, n_days: int = 7) -> Workload:
        """Stamp out ``n_days`` of jobs (recurring daily + ad-hoc filler)."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        jobs: list[Job] = []
        for day in range(n_days):
            jobs.extend(self._generate_day(day, self._rng))
        return Workload(jobs=jobs, catalog=self.catalog, n_days=n_days)

    # -- streaming -----------------------------------------------------------
    def day_jobs(self, day: int) -> list[Job]:
        """One day's jobs without materializing any other day.

        Replays the seeded stream to ``day`` if needed (caching the RNG
        state at each day boundary, so forward iteration is O(1) per
        day) and returns exactly the jobs a fresh generator's first
        ``generate()`` would place on that day.  Never consumes
        ``self._rng``: eager and streaming reads can interleave freely.
        """
        if day < 0:
            raise ValueError("day must be >= 0")
        rng = np.random.default_rng()
        start = max(d for d in self._day_states if d <= day)
        rng.bit_generator.state = deepcopy(self._day_states[start])
        for replay in range(start, day):
            self._generate_day(replay, rng)
            self._day_states.setdefault(
                replay + 1, deepcopy(rng.bit_generator.state)
            )
        jobs = self._generate_day(day, rng)
        self._day_states.setdefault(day + 1, deepcopy(rng.bit_generator.state))
        return jobs

    def iter_jobs(self, day: int) -> Iterator[Job]:
        """Iterate one day's jobs in submit order (see :meth:`day_jobs`)."""
        return iter(self.day_jobs(day))

    def stream_days(self, n_days: int, start_day: int = 0) -> Iterator[list[Job]]:
        """Yield one day's job list at a time, never a full ``Workload``.

        ``list(stream_days(n))`` flattens to the same jobs as
        ``generate(n)`` at the same seed — the pinned equivalence the
        scale tests gate on — but peak memory is one day, not the trace.
        """
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        for day in range(start_day, start_day + n_days):
            yield self.day_jobs(day)

    def _adhoc_job(
        self,
        rng: np.random.Generator,
        day: int,
        index: int,
        producers: list[tuple[str, str, float]],
    ) -> Job:
        """A one-off job with randomized structure and literals.

        With probability ``adhoc_dependency_fraction`` the job consumes a
        pipeline's derived output table (ad-hoc analysis over production
        data), giving it an inter-job dependency.
        """
        depends: tuple[str, ...] = ()
        submit_hour = day * HOURS_PER_DAY + float(rng.uniform(0, 24))
        if producers and rng.random() < self.config.adhoc_dependency_fraction:
            table_name, producer_job, producer_hour = producers[
                int(rng.integers(0, len(producers)))
            ]
            table = self.catalog.get(table_name)
            depends = (producer_job,)
            # A consumer cannot start before its producer ran.
            submit_hour = day * HOURS_PER_DAY + min(
                23.9, producer_hour + float(rng.uniform(0.5, 4.0))
            )
        else:
            table = self._random_table_rng(rng)
        column = self._random_filter_column_rng(rng, table)
        value = float(rng.uniform(column.low, column.high))
        plan: Expression = Filter(
            Scan(table.name), (Predicate(column.name, "<=", value),)
        )
        if rng.random() < 0.5:
            plan = Join(plan, Scan(self._random_table_rng(rng).name), "key", "key")
        if rng.random() < 0.5:
            plan = Aggregate(plan, (column.name,))
        else:
            plan = Project(plan, (column.name, "key"))
        return Job(
            job_id=f"d{day:03d}-adhoc{index:03d}",
            plan=plan,
            submit_hour=submit_hour,
            depends_on=depends,
        )
