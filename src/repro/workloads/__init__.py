"""Synthetic workload generators standing in for proprietary Azure traces.

Each generator is calibrated to the workload statistics the paper
publishes, so the autonomous services in :mod:`repro.core` face the same
learning problem they faced in production:

- :mod:`repro.workloads.scope` — recurring SCOPE-like jobs and pipelines
  (>60% recurring, ~40% sharing subexpressions, 70% in pipelines),
- :mod:`repro.workloads.usage` — per-tenant seasonal activity traces
  (Moneyball's 77% predictable population, Seagull's server load),
- :mod:`repro.workloads.demand` — diurnal cluster-creation demand,
- :mod:`repro.workloads.customers` — customer resource profiles and the
  Azure-like SKU catalog for Doppler,
- :mod:`repro.workloads.machines` — machine telemetry with linear
  ground-truth dynamics for KEA-style behaviour models.
"""

from repro.workloads.customers import (
    AZURE_SKUS,
    CustomerProfile,
    Sku,
    generate_customers,
    ground_truth_sku,
)
from repro.workloads.demand import DemandTrace, generate_demand
from repro.workloads.machines import MachineFleetSimulator, MachineObservation
from repro.workloads.scope import (
    Job,
    ScopeWorkloadConfig,
    ScopeWorkloadGenerator,
    Workload,
)
from repro.workloads.usage import TenantTrace, UsagePopulationConfig, generate_population

__all__ = [
    "Job",
    "Workload",
    "ScopeWorkloadConfig",
    "ScopeWorkloadGenerator",
    "TenantTrace",
    "UsagePopulationConfig",
    "generate_population",
    "DemandTrace",
    "generate_demand",
    "CustomerProfile",
    "Sku",
    "AZURE_SKUS",
    "generate_customers",
    "ground_truth_sku",
    "MachineFleetSimulator",
    "MachineObservation",
]
