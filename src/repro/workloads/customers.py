"""Customer resource profiles and SKU catalog for Doppler-style migration.

Doppler [6] recommends a right-sized Azure SQL SKU for an on-premise
database by profiling its resource consumption and comparing it to
segments of existing cloud customers, achieving >95% recommendation
accuracy.  We synthesize (a) an Azure-like SKU ladder and (b) a customer
population drawn from latent segments, each customer with a
resource-usage profile and a ground-truth best SKU (cheapest SKU whose
capacities cover the customer's effective requirements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Sku:
    """A purchasable service tier."""

    name: str
    vcores: float
    memory_gb: float
    max_iops: float
    price: float  # $ / month

    def covers(self, vcores: float, memory_gb: float, iops: float) -> bool:
        return (
            self.vcores >= vcores
            and self.memory_gb >= memory_gb
            and self.max_iops >= iops
        )


#: A simplified Azure SQL General-Purpose-like SKU ladder.
AZURE_SKUS: tuple[Sku, ...] = (
    Sku("GP_2", vcores=2, memory_gb=10, max_iops=800, price=380),
    Sku("GP_4", vcores=4, memory_gb=21, max_iops=1600, price=760),
    Sku("GP_8", vcores=8, memory_gb=41, max_iops=3200, price=1520),
    Sku("GP_16", vcores=16, memory_gb=83, max_iops=6400, price=3040),
    Sku("GP_32", vcores=32, memory_gb=166, max_iops=12800, price=6080),
    Sku("BC_8", vcores=8, memory_gb=41, max_iops=24000, price=4100),
    Sku("BC_16", vcores=16, memory_gb=83, max_iops=48000, price=8200),
    Sku("BC_32", vcores=32, memory_gb=166, max_iops=96000, price=16400),
)


@dataclass
class CustomerProfile:
    """An on-premise workload profile considered for migration."""

    customer_id: str
    segment: int                       # latent generator segment (hidden)
    peak_vcores: float
    peak_memory_gb: float
    peak_iops: float
    utilization_headroom: float        # over-provisioning factor on-prem

    def effective_requirements(self) -> tuple[float, float, float]:
        """Right-sized needs: peaks corrected for on-prem over-provisioning."""
        factor = 1.0 / self.utilization_headroom
        return (
            self.peak_vcores * factor,
            self.peak_memory_gb * factor,
            self.peak_iops * factor,
        )

    def feature_vector(self) -> np.ndarray:
        """Observable features: log-scaled resource peaks.

        The on-prem over-provisioning headroom is deliberately *not*
        observable — estimating the true right-sizing factor from
        comparable customers is exactly the problem Doppler's segment
        knowledge solves.
        """
        return np.array(
            [
                np.log1p(self.peak_vcores),
                np.log1p(self.peak_memory_gb),
                np.log1p(self.peak_iops),
            ]
        )


#: Latent segments: (vcore scale, memory-per-core, iops scale, headroom).
_SEGMENTS = (
    ("small-oltp", 2.0, 4.0, 500.0, 2.0),
    ("mid-oltp", 6.0, 5.0, 2000.0, 1.8),
    ("analytics", 14.0, 8.0, 3000.0, 1.5),
    ("io-heavy", 8.0, 5.0, 30000.0, 1.4),
    ("large-mixed", 24.0, 5.0, 9000.0, 1.6),
)


def generate_customers(
    n_customers: int = 500,
    rng: np.random.Generator | int | None = None,
) -> list[CustomerProfile]:
    """Draw customers from the latent segments with lognormal scatter."""
    if n_customers < 1:
        raise ValueError("n_customers must be >= 1")
    generator = np.random.default_rng(rng)
    customers = []
    for i in range(n_customers):
        seg = int(generator.integers(0, len(_SEGMENTS)))
        _, vcores, mem_per_core, iops, headroom = _SEGMENTS[seg]
        scatter = generator.lognormal(mean=0.0, sigma=0.25, size=3)
        peak_vcores = vcores * scatter[0]
        customers.append(
            CustomerProfile(
                customer_id=f"cust-{i:05d}",
                segment=seg,
                peak_vcores=peak_vcores,
                peak_memory_gb=peak_vcores * mem_per_core * scatter[1],
                peak_iops=iops * scatter[2],
                utilization_headroom=float(
                    np.clip(generator.normal(headroom, 0.15), 1.1, 3.0)
                ),
            )
        )
    return customers


def ground_truth_sku(
    customer: CustomerProfile, skus: tuple[Sku, ...] = AZURE_SKUS
) -> Sku:
    """The cheapest SKU covering the customer's effective requirements.

    Falls back to the largest SKU when nothing covers the requirements.
    """
    vcores, memory, iops = customer.effective_requirements()
    covering = [s for s in skus if s.covers(vcores, memory, iops)]
    if not covering:
        return max(skus, key=lambda s: s.price)
    return min(covering, key=lambda s: s.price)
