"""Command-line interface: quick looks at the autonomous services.

Subcommands::

    repro stats       [--days N --seed S --workers W]  workload structure statistics
    repro cloudviews  [--days N --day D --workers W]   one day of computation reuse
    repro moneyball   [--tenants N]         pause/resume policy comparison
    repro seagull     [--servers N]         backup-window accuracy
    repro doppler     [--customers N]       SKU recommendation accuracy
    repro explain     [--seed S]            EXPLAIN a sample optimized plan
    repro algorithms  QUERY                 search the AlgorithmStore
    repro trace       [--jobs N --seed S]   traced workload->engine->service run
    repro fabric      [--days N --full --list --checkpoint P --resume P
                       --store DIR --inject-fault SPEC]  the control plane
    repro chaos       [--days N --kill-tick K --workers W
                       --inject-fault SPEC]  kill -9 mid-day, resume, compare
    repro serve       [--requests N --days D --warm-days W --resume P]
                      async query plane over the fleet

Every subcommand exits nonzero on failure, printing a one-line
``repro <command>: error: <reason>`` to stderr — scripts and CI can
gate on the exit code alone.

Every subcommand is deterministic given its seed and prints a compact
table, so the CLI doubles as a smoke test of the installation.  Every
subcommand also runs inside the shared observability runtime
(:mod:`repro.obs`): pass ``--trace`` to print the span tree and
per-layer metric rollup after the command's own output.  Analysis
subcommands accept ``--workers`` to fan the fleet-scale scans across
the persistent worker pool (:mod:`repro.parallel`); results are
identical for every worker count, and the pool is shut down before the
command exits.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


def _cmd_stats(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.peregrine import WorkloadRepository, analyze
    from repro.workloads import ScopeWorkloadGenerator

    with obs.span("workload.generate", layer="workload", days=args.days):
        workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=args.days)
    with obs.span("peregrine.analyze", layer="engine", workers=args.workers):
        stats = analyze(
            WorkloadRepository().ingest(workload), workers=args.workers
        )
    print(f"workload: {args.days} days, seed {args.seed}")
    for name, value in stats.summary_rows():
        print(f"  {name:26s} {value:10.3f}")
    return 0


def _cmd_cloudviews(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.cloudviews import CloudViews
    from repro.engine import (
        DefaultCardinalityEstimator,
        DefaultCostModel,
        TrueCardinalityModel,
    )
    from repro.workloads import ScopeWorkloadGenerator

    with obs.span("workload.generate", layer="workload", days=args.days):
        workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=args.days)
    day = args.day if args.day is not None else args.days - 1
    jobs = [(j.job_id, j.plan) for j in workload.by_day(day)]
    if not jobs:
        print(f"no jobs on day {day} (workload has {args.days} days)")
        return 1
    est = DefaultCostModel(
        workload.catalog, DefaultCardinalityEstimator(workload.catalog)
    )
    truth = TrueCardinalityModel(workload.catalog, seed=args.seed)
    service = CloudViews(workload.catalog, est, obs=obs)
    report = service.run_day(
        jobs, truth, containment=args.containment, workers=args.workers
    )
    print(
        f"day {day}: {report.n_jobs} jobs, {report.n_views} views selected"
        f" (workers={args.workers})"
    )
    print(
        f"  latency improvement:  {report.latency_improvement:8.1%}"
        " (paper: 34%)"
    )
    print(
        f"  processing reduction: {report.processing_reduction:8.1%}"
        " (paper: 37%)"
    )
    return 0


def _cmd_moneyball(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.moneyball import MoneyballPolicy
    from repro.workloads import UsagePopulationConfig, generate_population

    with obs.span("workload.generate", layer="workload", tenants=args.tenants):
        tenants = generate_population(
            UsagePopulationConfig(n_tenants=args.tenants, n_days=42), rng=args.seed
        )
    service = MoneyballPolicy()
    service.bind(obs)
    for trace in tenants:
        service.observe(trace)
    report = service.report()
    obs.replay(report)
    print(
        f"predictable tenants: {report.predictable_fraction:.1%}"
        " (paper: 77%)"
    )
    for name, point in report.points.items():
        print(
            f"  {name:12s} cold-starts/active-hr={point.qos_penalty:.4f}"
            f"  billed/active-hr={point.cost:.3f}"
        )
    return 0


def _cmd_seagull(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.seagull import (
        PreviousDayPolicy,
        SeagullService,
    )
    from repro.workloads import UsagePopulationConfig, generate_population

    with obs.span("workload.generate", layer="workload", servers=args.servers):
        population = generate_population(
            UsagePopulationConfig(n_tenants=args.servers, n_days=42), rng=args.seed
        )
    servers = [t for t in population if t.is_predictable]
    days = range(29, 41)
    heuristic = SeagullService(policy=PreviousDayPolicy()).bind(obs)
    ml = SeagullService().bind(obs)
    for service in (heuristic, ml):
        for trace in servers:
            service.observe(trace)
        for trace in servers:
            for day in days:
                service.recommend(trace.tenant_id, day)
    heuristic_report = heuristic.report()
    ml_report = ml.report()
    obs.replay(ml_report)
    print(
        f"previous-day heuristic accuracy: {heuristic_report.accuracy:.1%}"
        " (paper: 96%)"
    )
    print(
        f"ML forecast accuracy:            {ml_report.accuracy:.1%}"
        " (paper: 99%)"
    )
    return 0


def _cmd_doppler(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.doppler import SkuRecommender, recommendation_accuracy
    from repro.workloads import generate_customers

    recommender = SkuRecommender(rng=args.seed).bind(obs)
    with obs.span("doppler.observe", layer="service"):
        recommender.observe(generate_customers(2 * args.customers, rng=args.seed))
    migrating = generate_customers(args.customers, rng=args.seed + 1)
    accuracy = recommendation_accuracy(recommender, migrating)
    exact = recommendation_accuracy(recommender, migrating, within_one_tier=False)
    obs.replay(recommender.report())
    print(f"SKU recommendation accuracy: {accuracy:.1%} within one tier "
          f"({exact:.1%} exact; paper: >95%)")
    return 0


def _cmd_explain(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.engine import Optimizer
    from repro.engine.serialize import explain
    from repro.workloads import ScopeWorkloadGenerator

    with obs.span("workload.generate", layer="workload"):
        workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=1)
    job = next(j for j in workload.jobs if j.plan.size >= 5)
    optimizer = Optimizer(workload.catalog, obs=obs)
    print(f"job {job.job_id} (logical):")
    print(explain(job.plan))
    print("\noptimized:")
    print(explain(optimizer.optimize(job.plan).plan))
    return 0


def _cmd_algorithms(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    from repro.core.algorithmstore import default_store

    store = default_store()
    with obs.span("algorithmstore.search", layer="service"):
        results = store.search(" ".join(args.query))
    if not results:
        print("no matching algorithms")
        return 1
    for entry in results:
        print(f"{entry.name:26s} [{entry.category}] {entry.description}")
    return 0


def _trace_driver():
    """The end-to-end pipeline behind ``repro trace``, built lazily.

    One job per fabric tick: optimize -> execute -> steer.  Defined
    inside a factory so importing the CLI stays cheap.
    """
    from repro.fabric.pipeline import PipelineDriver, TickContext

    class _TraceDriver(PipelineDriver):
        name = "trace"
        layer = "engine"

        def __init__(
            self, jobs, optimizer, executor, est_cost, true_cost, steering
        ) -> None:
            self.jobs = list(jobs)
            self.optimizer = optimizer
            self.executor = executor
            self.est_cost = est_cost
            self.true_cost = true_cost
            self.steering = steering

        def services(self):
            return [self.steering]

        def bind_obs(self, obs) -> None:
            self.optimizer.bind(obs)
            self.executor.bind(obs)
            super().bind_obs(obs)

        def act(self, ctx: TickContext) -> None:
            from repro.engine import compile_stages

            if ctx.tick >= len(self.jobs):
                return
            job = self.jobs[ctx.tick]
            optimized = self.optimizer.optimize(job.plan).plan
            graph = compile_stages(
                optimized, self.est_cost, truth=self.true_cost
            )
            self.executor.run(graph)
            self.steering.observe(job.job_id, job.plan)

        def final_report(self) -> dict:
            report = self.steering.report()
            return {
                "jobs": len(self.jobs),
                "improvement": round(report.improvement, 10),
            }

    return _TraceDriver


def _cmd_trace(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    """One traced end-to-end scenario: workload -> engine -> service.

    Jobs arrive as fabric pipeline ticks on the DES event queue (infra
    layer); each tick optimizes the plan, executes the stage DAG on the
    simulated cluster (engine layer), and feeds the plan through the
    steering service (service layer).  Spans, fabric health events, and
    metrics land in one TelemetryStore.
    """
    from repro.core.steering import SteeringService
    from repro.engine import (
        ClusterExecutor,
        DefaultCardinalityEstimator,
        DefaultCostModel,
        Optimizer,
        TrueCardinalityModel,
    )
    from repro.fabric import ControlPlane
    from repro.fabric.fleet import TrueCostFn
    from repro.workloads import ScopeWorkloadGenerator

    with obs.span("workload.generate", layer="workload"):
        workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=1)
    truth = TrueCardinalityModel(workload.catalog, seed=args.seed)
    est_cost = DefaultCostModel(
        workload.catalog, DefaultCardinalityEstimator(workload.catalog)
    )
    true_cost = DefaultCostModel(workload.catalog, truth)
    optimizer = Optimizer(workload.catalog)
    executor = ClusterExecutor(rng=args.seed)
    steering = SteeringService(optimizer, TrueCostFn(true_cost), rng=args.seed)

    jobs = workload.jobs[: args.jobs]
    driver = _trace_driver()(
        jobs, optimizer, executor, est_cost, true_cost, steering
    )
    plane = ControlPlane(obs=obs)
    plane.register(driver)
    plane.run_days(max(1, len(jobs)))
    obs.replay(steering.report())
    points = obs.flush()

    print(obs.render())
    print(
        f"\ntraced {len(jobs)} jobs on the fabric: "
        f"{len(obs.tracer.spans)} spans, "
        f"{len(obs.events)} events, {points} metric points exported"
    )
    return 0


def _cmd_fabric(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    """Run the whole fleet on the control plane (or resume a checkpoint)."""
    from repro.fabric import (
        CORE_FLEET,
        FULL_FLEET,
        CheckpointStore,
        ControlPlane,
        FaultInjector,
        FleetConfig,
        build_fleet,
    )
    from repro.fabric.faults import parse_fault_specs

    scratch_spill_dir = None
    if args.resume:
        plane = ControlPlane.restore(args.resume, obs=obs)
        if args.store:
            plane.attach_store(CheckpointStore(args.store))
        if args.chaos_kill_tick:
            from repro.fabric.chaos import make_kill_hook

            plane.tick_hook = make_kill_hook(args.chaos_kill_tick)
        remaining = args.days - plane.day
        if remaining <= 0:
            raise ValueError(
                f"checkpoint already covers day {plane.day}"
                f" (target {args.days}); nothing to run"
            )
        plane.run_days(remaining)
    else:
        if args.services:
            include = tuple(args.services.split(","))
        else:
            include = FULL_FLEET if args.full else CORE_FLEET
        injector = FaultInjector(specs=parse_fault_specs(args.inject_fault))
        plane = ControlPlane(injector=injector, obs=obs)
        if args.store:
            plane.attach_store(CheckpointStore(args.store))
        if args.chaos_kill_tick:
            from repro.fabric.chaos import make_kill_hook

            plane.tick_hook = make_kill_hook(args.chaos_kill_tick)
        config = FleetConfig(
            seed=args.seed,
            days=args.days,
            jobs_per_day=args.jobs_per_day,
            workers=args.workers,
            include=include,
            repo_memory_budget_mb=args.memory_budget_mb,
            repo_spill_dir=args.spill_dir,
        )
        if config.resolve_streaming() and config.repo_spill_dir is None:
            # Streaming scale needs somewhere to spill cold day chunks:
            # colocate with the store if one is attached, else scratch.
            import tempfile
            from pathlib import Path

            if args.store:
                config.repo_spill_dir = str(
                    Path(args.store) / "peregrine-chunks"
                )
            else:
                config.repo_spill_dir = tempfile.mkdtemp(
                    prefix="repro-chunks-"
                )
                scratch_spill_dir = config.repo_spill_dir
            if config.repo_memory_budget_mb is None:
                config.repo_memory_budget_mb = 256
        build_fleet(plane, config)
        if args.list:
            print(f"{'service':<12} {'layer':<8} {'cadence':>8}  stages")
            for binding in plane.bindings:
                stages = ", ".join(s for s, _ in binding.driver.stages())
                print(
                    f"{binding.name:<12} {binding.driver.layer:<8}"
                    f" {binding.cadence_days:>7.1f}d  {stages}"
                )
            return 0
        checkpoint_day = args.checkpoint_day
        if args.checkpoint and 0 < checkpoint_day < args.days:
            plane.run_days(checkpoint_day)
            plane.checkpoint(args.checkpoint)
            plane.run_days(args.days - checkpoint_day)
        else:
            plane.run_days(args.days)
            if args.checkpoint:
                plane.checkpoint(args.checkpoint)

    report = plane.final_report()
    if args.report_out:
        from pathlib import Path

        Path(args.report_out).write_bytes(plane.report_bytes())
    print(f"fabric: {report['days']} days, {len(plane.bindings)} services")
    for name, entry in report["services"].items():
        print(f"  {name:<12} ticks={entry['ticks']}")
    lifecycle = report["lifecycle"]
    print(
        f"lifecycle: {lifecycle['actions']}"
        f"  serving={lifecycle['serving']}"
    )
    print(plane.render_health())
    if plane.injector.fired:
        print(f"injected faults fired: {plane.injector.fired}")
    if plane.pool.generation:
        stats = plane.pool.stats()
        print(
            f"worker pool: {stats['dispatches']} dispatches over"
            f" {stats['generation']} pool start(s)"
            f" (spawn {stats['spawn_seconds']:.3f}s)"
        )
    import resource

    peak_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"peak RSS: {peak_mib:.0f} MiB")
    for binding in plane.bindings:
        repo = getattr(binding.driver, "repo", None)
        if repo is not None and hasattr(repo, "chunk_stats"):
            cs = repo.chunk_stats()
            print(
                f"repository: {cs['jobs']} jobs over {cs['days']} days,"
                f" {cs['hot_chunks']} hot / {cs['spilled_chunks']} spilled"
                f" chunks, ~{cs['hot_bytes'] / 2**20:.1f} MiB hot"
                f" ({cs['spills']} spills, {cs['loads']} loads)"
            )
    plane.close()
    if scratch_spill_dir is not None:
        import shutil

        shutil.rmtree(scratch_spill_dir, ignore_errors=True)
    return 0


def _cmd_chaos(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    """Kill-and-resume experiment: prove crash recovery is byte-exact."""
    from repro.fabric.chaos import run_chaos

    with obs.span("fabric.chaos", layer="fabric", kill_tick=args.kill_tick):
        result = run_chaos(
            days=args.days,
            kill_tick=args.kill_tick,
            services=tuple(args.services.split(",")) if args.services else None,
            workers=args.workers,
            faults=args.inject_fault,
            seed=args.seed,
            workdir=args.workdir or None,
        )
    print(result.summary())
    print(f"store: {result.store_path}")
    return 0 if result.identical else 1


def _cmd_serve(args: argparse.Namespace, obs: "ObservabilityRuntime") -> int:
    """Serve the fleet: async endpoints over a live or restored fabric."""
    import asyncio

    from repro.fabric import ControlPlane, FleetConfig, build_fleet
    from repro.serve import QueryPlane, TrafficGenerator

    if args.requests < 1:
        raise ValueError("--requests must be >= 1")
    if args.resume:
        fabric = ControlPlane.restore(args.resume, obs=obs)
    else:
        fabric = ControlPlane(obs=obs)
        horizon = max(1, args.warm_days + args.days)
        build_fleet(
            fabric, FleetConfig(seed=args.seed, days=horizon)
        )
        if args.warm_days:
            with obs.span("serve.warmup", layer="serve", days=args.warm_days):
                fabric.run_days(args.warm_days)
    plane = QueryPlane(
        fabric,
        obs=obs,
        rate_per_tenant=args.rate,
        max_queue_depth=args.max_queue_depth,
        max_batch=args.max_batch,
    )
    generator = TrafficGenerator(fabric, seed=args.seed)

    async def _serve() -> None:
        ticker = None
        if args.days:
            ticker = asyncio.ensure_future(
                plane.tick_background(args.days, pause=0.001)
            )
        sent = 0
        while sent < args.requests:
            burst = generator.stream(
                min(args.concurrency, args.requests - sent)
            )
            await asyncio.gather(
                *(plane.handle(endpoint, request) for endpoint, request in burst)
            )
            sent += len(burst)
        if ticker is not None:
            await ticker
        plane.drain()

    with obs.span("serve.loop", layer="serve", requests=args.requests):
        asyncio.run(_serve())
    stats = plane.stats()
    print(
        f"served {stats['requests']} requests over"
        f" {len(generator.endpoints())} endpoints"
        f" ({stats['ticked_days']} background days ticked)"
    )
    print("  by status: " + ", ".join(
        f"{status}={count}" for status, count in stats["by_status"].items()
    ))
    latency = stats["latency"]
    print(
        f"  latency p50={latency['p50'] * 1e3:.2f}ms"
        f" p99={latency['p99'] * 1e3:.2f}ms"
    )
    cache = stats["cache"]
    print(
        f"  cache: {cache['hits']} hits / {cache['misses']} misses"
        f" (hit rate {cache['hit_rate']:.1%},"
        f" {cache['invalidations']} invalidated)"
    )
    admission = stats["admission"]
    print(
        f"  admission: {admission['admitted']} admitted,"
        f" {admission['throttled']} throttled, {admission['shed']} shed,"
        f" {admission['expired']} expired"
    )
    batching = stats["batching"]
    print(
        f"  batching: {batching['coalesced']} coalesced into"
        f" {batching['batches']} batches"
        f" (largest {batching['largest_batch']})"
    )
    sessions = stats["sessions"]
    print(
        f"  sessions: {sessions['active']} active across"
        f" {len(sessions['tenants'])} tenants"
    )
    if args.stats_out:
        import json
        from pathlib import Path

        Path(args.stats_out).write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n"
        )
    fabric.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Autonomous data services reproduction — quick looks.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree and per-layer rollup after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser(
        "stats", help="workload structure statistics", parents=[common]
    )
    stats.add_argument("--days", type=int, default=7)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for the per-day sharing analysis",
    )
    stats.set_defaults(func=_cmd_stats)

    cloudviews = sub.add_parser(
        "cloudviews",
        help="one day of CloudViews computation reuse",
        parents=[common],
    )
    cloudviews.add_argument("--days", type=int, default=3)
    cloudviews.add_argument(
        "--day", type=int, default=None,
        help="which day to evaluate (default: the last generated day)",
    )
    cloudviews.add_argument("--seed", type=int, default=0)
    cloudviews.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for candidate enumeration",
    )
    cloudviews.add_argument(
        "--containment", action="store_true",
        help="widen the candidate pool with drifted-bound families",
    )
    cloudviews.set_defaults(func=_cmd_cloudviews)

    moneyball = sub.add_parser(
        "moneyball", help="pause/resume comparison", parents=[common]
    )
    moneyball.add_argument("--tenants", type=int, default=60)
    moneyball.add_argument("--seed", type=int, default=0)
    moneyball.set_defaults(func=_cmd_moneyball)

    seagull = sub.add_parser(
        "seagull", help="backup-window accuracy", parents=[common]
    )
    seagull.add_argument("--servers", type=int, default=40)
    seagull.add_argument("--seed", type=int, default=0)
    seagull.set_defaults(func=_cmd_seagull)

    doppler = sub.add_parser(
        "doppler", help="SKU recommendation accuracy", parents=[common]
    )
    doppler.add_argument("--customers", type=int, default=150)
    doppler.add_argument("--seed", type=int, default=0)
    doppler.set_defaults(func=_cmd_doppler)

    explain = sub.add_parser(
        "explain", help="EXPLAIN a sample plan", parents=[common]
    )
    explain.add_argument("--seed", type=int, default=0)
    explain.set_defaults(func=_cmd_explain)

    algorithms = sub.add_parser(
        "algorithms", help="search the AlgorithmStore", parents=[common]
    )
    algorithms.add_argument("query", nargs="+")
    algorithms.set_defaults(func=_cmd_algorithms)

    trace = sub.add_parser(
        "trace",
        help="traced end-to-end run (workload -> engine -> service)",
        parents=[common],
    )
    trace.add_argument("--jobs", type=int, default=6)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    fabric = sub.add_parser(
        "fabric",
        help="run every service on the control plane",
        parents=[common],
    )
    fabric.add_argument("--days", type=int, default=7)
    fabric.add_argument("--seed", type=int, default=0)
    fabric.add_argument(
        "--jobs-per-day", type=int, default=8,
        help="SCOPE jobs per day; >= 1000 switches to streaming worlds",
    )
    fabric.add_argument(
        "--memory-budget-mb", type=int, default=None,
        help="repository chunk-cache budget (streaming default: 256)",
    )
    fabric.add_argument(
        "--spill-dir", default=None,
        help="directory for cold day chunks (default: store dir or scratch)",
    )
    fabric.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for fleet-scale analyses",
    )
    fabric.add_argument(
        "--full", action="store_true",
        help="include the heavier infra/engine tuners (kea, autotune, joint)",
    )
    fabric.add_argument(
        "--services", default="",
        help="comma-separated service subset (overrides --full)",
    )
    fabric.add_argument(
        "--list", action="store_true",
        help="list the registered pipelines and exit without running",
    )
    fabric.add_argument(
        "--checkpoint", default="",
        help="snapshot fabric state to this path (see --checkpoint-day)",
    )
    fabric.add_argument(
        "--checkpoint-day", type=int, default=0,
        help="snapshot mid-run after this day, then continue (default: at the end)",
    )
    fabric.add_argument(
        "--resume", default="",
        help="restore from a checkpoint and run up to --days total",
    )
    fabric.add_argument(
        "--inject-fault", action="append", default=[],
        metavar="SERVICE:STAGE[:DAY[:TIMES]]",
        help="plant a deterministic stage fault (repeatable; day '*' = any)",
    )
    fabric.add_argument(
        "--store", default="",
        help="durable checkpoint store: persist a delta frame after every tick",
    )
    fabric.add_argument(
        "--chaos-kill-tick", type=int, default=0,
        help="SIGKILL this process after N completed ticks (chaos testing)",
    )
    fabric.add_argument(
        "--report-out", default="",
        help="write the canonical final-report bytes to this file",
    )
    fabric.set_defaults(func=_cmd_fabric)

    chaos = sub.add_parser(
        "chaos",
        help="kill -9 a fabric mid-day, resume it, verify byte-identity",
        parents=[common],
    )
    chaos.add_argument("--days", type=int, default=5)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--kill-tick", type=int, default=12,
        help="completed-tick count (across all services) to SIGKILL at",
    )
    chaos.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width inside the baseline/victim/resumed runs",
    )
    chaos.add_argument(
        "--services", default="",
        help="comma-separated service subset (default: the core fleet)",
    )
    chaos.add_argument(
        "--inject-fault", action="append", default=[],
        metavar="SERVICE:STAGE[:DAY[:TIMES]]",
        help="plant a deterministic stage fault in all three runs",
    )
    chaos.add_argument(
        "--workdir", default="",
        help="where to keep the store and reports (default: a temp dir)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="async query plane over the fleet (sessions, cache, batching)",
        parents=[common],
    )
    serve.add_argument(
        "--requests", type=int, default=400,
        help="total requests to serve from the seeded traffic stream",
    )
    serve.add_argument(
        "--days", type=int, default=2,
        help="fabric days to tick in the background while serving",
    )
    serve.add_argument(
        "--warm-days", type=int, default=2,
        help="fabric days to run before the plane starts serving",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--concurrency", type=int, default=32,
        help="in-flight requests per burst",
    )
    serve.add_argument(
        "--rate", type=float, default=500.0,
        help="per-tenant admission rate (requests/second)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="queued+in-flight requests before load shedding kicks in",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size cap for coalesced recommend calls",
    )
    serve.add_argument(
        "--resume", default="",
        help="serve from a checkpoint-restored fabric instead of a fresh one",
    )
    serve.add_argument(
        "--stats-out", default="",
        help="write the full serve stats rollup to this JSON file",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.obs import ObservabilityRuntime
    from repro.parallel import shutdown_pool

    parser = build_parser()
    args = parser.parse_args(argv)
    obs = ObservabilityRuntime()
    try:
        with obs.span(f"cli.{args.command}", layer="cli"):
            code = args.func(args, obs)
    except Exception as exc:  # noqa: BLE001 — CLI boundary: one line, exit 1
        message = str(exc) or type(exc).__name__
        print(f"repro {args.command}: error: {message}", file=sys.stderr)
        code = 1
    finally:
        # Commands that fanned out leave the warm pool behind; stop the
        # workers before the process lingers (atexit is the backstop).
        shutdown_pool()
    obs.flush()
    if getattr(args, "trace", False) and args.command != "trace":
        print()
        print(obs.render())
    return code


if __name__ == "__main__":
    sys.exit(main())
