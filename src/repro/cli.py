"""Command-line interface: quick looks at the autonomous services.

Subcommands::

    repro stats       [--days N --seed S]   workload structure statistics
    repro moneyball   [--tenants N]         pause/resume policy comparison
    repro seagull     [--servers N]         backup-window accuracy
    repro doppler     [--customers N]       SKU recommendation accuracy
    repro explain     [--seed S]            EXPLAIN a sample optimized plan
    repro algorithms  QUERY                 search the AlgorithmStore

Every subcommand is deterministic given its seed and prints a compact
table, so the CLI doubles as a smoke test of the installation.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.peregrine import WorkloadRepository, analyze
    from repro.workloads import ScopeWorkloadGenerator

    workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=args.days)
    stats = analyze(WorkloadRepository().ingest(workload))
    print(f"workload: {args.days} days, seed {args.seed}")
    for name, value in stats.summary_rows():
        print(f"  {name:26s} {value:10.3f}")
    return 0


def _cmd_moneyball(args: argparse.Namespace) -> int:
    from repro.core.moneyball import (
        PredictabilityClassifier,
        evaluate_policies,
        policy_tradeoff,
    )
    from repro.infra import ServerlessSimulator
    from repro.workloads import UsagePopulationConfig, generate_population

    tenants = generate_population(
        UsagePopulationConfig(n_tenants=args.tenants, n_days=42), rng=args.seed
    )
    classifier = PredictabilityClassifier()
    print(
        f"predictable tenants: {classifier.predictable_fraction(tenants):.1%}"
        " (paper: 77%)"
    )
    simulator = ServerlessSimulator()
    for name, reports in evaluate_policies(tenants, simulator).items():
        point = policy_tradeoff(reports, name)
        print(
            f"  {name:12s} cold-starts/active-hr={point.qos_penalty:.4f}"
            f"  billed/active-hr={point.cost:.3f}"
        )
    return 0


def _cmd_seagull(args: argparse.Namespace) -> int:
    from repro.core.seagull import (
        ForecastWindowPolicy,
        PreviousDayPolicy,
        evaluate_policy,
    )
    from repro.workloads import UsagePopulationConfig, generate_population

    population = generate_population(
        UsagePopulationConfig(n_tenants=args.servers, n_days=42), rng=args.seed
    )
    servers = [t for t in population if t.is_predictable]
    days = range(29, 41)
    heuristic = evaluate_policy(servers, PreviousDayPolicy(), days)
    ml = evaluate_policy(servers, ForecastWindowPolicy(), days)
    print(f"previous-day heuristic accuracy: {heuristic:.1%} (paper: 96%)")
    print(f"ML forecast accuracy:            {ml:.1%} (paper: 99%)")
    return 0


def _cmd_doppler(args: argparse.Namespace) -> int:
    from repro.core.doppler import SkuRecommender, recommendation_accuracy
    from repro.workloads import generate_customers

    recommender = SkuRecommender(rng=args.seed).fit(
        generate_customers(2 * args.customers, rng=args.seed)
    )
    migrating = generate_customers(args.customers, rng=args.seed + 1)
    accuracy = recommendation_accuracy(recommender, migrating)
    exact = recommendation_accuracy(recommender, migrating, within_one_tier=False)
    print(f"SKU recommendation accuracy: {accuracy:.1%} within one tier "
          f"({exact:.1%} exact; paper: >95%)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.engine import Optimizer
    from repro.engine.serialize import explain
    from repro.workloads import ScopeWorkloadGenerator

    workload = ScopeWorkloadGenerator(rng=args.seed).generate(n_days=1)
    job = next(j for j in workload.jobs if j.plan.size >= 5)
    optimizer = Optimizer(workload.catalog)
    print(f"job {job.job_id} (logical):")
    print(explain(job.plan))
    print("\noptimized:")
    print(explain(optimizer.optimize(job.plan).plan))
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.core.algorithmstore import default_store

    store = default_store()
    results = store.search(" ".join(args.query))
    if not results:
        print("no matching algorithms")
        return 1
    for entry in results:
        print(f"{entry.name:26s} [{entry.category}] {entry.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Autonomous data services reproduction — quick looks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="workload structure statistics")
    stats.add_argument("--days", type=int, default=7)
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    moneyball = sub.add_parser("moneyball", help="pause/resume comparison")
    moneyball.add_argument("--tenants", type=int, default=60)
    moneyball.add_argument("--seed", type=int, default=0)
    moneyball.set_defaults(func=_cmd_moneyball)

    seagull = sub.add_parser("seagull", help="backup-window accuracy")
    seagull.add_argument("--servers", type=int, default=40)
    seagull.add_argument("--seed", type=int, default=0)
    seagull.set_defaults(func=_cmd_seagull)

    doppler = sub.add_parser("doppler", help="SKU recommendation accuracy")
    doppler.add_argument("--customers", type=int, default=150)
    doppler.add_argument("--seed", type=int, default=0)
    doppler.set_defaults(func=_cmd_doppler)

    explain = sub.add_parser("explain", help="EXPLAIN a sample plan")
    explain.add_argument("--seed", type=int, default=0)
    explain.set_defaults(func=_cmd_explain)

    algorithms = sub.add_parser("algorithms", help="search the AlgorithmStore")
    algorithms.add_argument("query", nargs="+")
    algorithms.set_defaults(func=_cmd_algorithms)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
