"""Portable model exchange and generic model containers (Direction 2).

"To simplify the reuse of models for deployment within a common
infrastructure, we also adopt standard representations for ML models,
such as ONNX.  Furthermore, we package an ML model (along with any
additional required code and libraries) into a standard generic
container that can be efficiently reused across systems [44]."

This module provides the miniature equivalents:

- :func:`export_model` / :func:`import_model` — an ONNX-like portable
  dict format for the model families in :mod:`repro.ml` (linear family
  and CART trees, the Insight-1 production diet), and
- :class:`ModelContainer` — a generic serving wrapper with a uniform
  ``predict`` interface, metadata, and input validation, portable across
  every service in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression
from repro.ml.trees import DecisionTreeClassifier, DecisionTreeRegressor, _Node

FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """Raised for malformed or unsupported model payloads."""


# -- linear family ---------------------------------------------------------


def _export_linear(model) -> dict[str, Any]:
    if model.coef_ is None:
        raise ModelFormatError("model is not fitted")
    return {
        "coef": [float(c) for c in model.coef_],
        "intercept": float(model.intercept_),
    }


def _import_linear(cls, payload: dict[str, Any]):
    model = cls()
    model.coef_ = np.asarray(payload["coef"], dtype=float)
    model.intercept_ = float(payload["intercept"])
    return model


# -- trees -------------------------------------------------------------------


def _export_tree_node(node: _Node) -> dict[str, Any]:
    out: dict[str, Any] = {
        "prediction": node.prediction,
        "n_samples": node.n_samples,
    }
    if not node.is_leaf:
        out.update(
            feature=node.feature,
            threshold=node.threshold,
            left=_export_tree_node(node.left),
            right=_export_tree_node(node.right),
        )
    return out


def _import_tree_node(payload: dict[str, Any]) -> _Node:
    node = _Node(
        prediction=float(payload["prediction"]),
        n_samples=int(payload.get("n_samples", 0)),
    )
    if "left" in payload:
        node.feature = int(payload["feature"])
        node.threshold = float(payload["threshold"])
        node.left = _import_tree_node(payload["left"])
        node.right = _import_tree_node(payload["right"])
    return node


def _export_tree(model) -> dict[str, Any]:
    if model.root_ is None:
        raise ModelFormatError("model is not fitted")
    return {
        "n_features": model.n_features_,
        "root": _export_tree_node(model.root_),
    }


def _import_tree(cls, payload: dict[str, Any]):
    model = cls()
    model.n_features_ = int(payload["n_features"])
    model.root_ = _import_tree_node(payload["root"])
    return model


_EXPORTERS = {
    LinearRegression: ("linear_regression", _export_linear),
    RidgeRegression: ("ridge_regression", _export_linear),
    LogisticRegression: ("logistic_regression", _export_linear),
    DecisionTreeRegressor: ("decision_tree_regressor", _export_tree),
    DecisionTreeClassifier: ("decision_tree_classifier", _export_tree),
}

_IMPORTERS = {
    "linear_regression": lambda p: _import_linear(LinearRegression, p),
    "ridge_regression": lambda p: _import_linear(RidgeRegression, p),
    "logistic_regression": lambda p: _import_linear(LogisticRegression, p),
    "decision_tree_regressor": lambda p: _import_tree(DecisionTreeRegressor, p),
    "decision_tree_classifier": lambda p: _import_tree(DecisionTreeClassifier, p),
}


def export_model(model: Any) -> dict[str, Any]:
    """Model -> portable dict.  Exact round trip with :func:`import_model`."""
    for cls, (kind, exporter) in _EXPORTERS.items():
        if type(model) is cls:
            return {
                "version": FORMAT_VERSION,
                "kind": kind,
                "payload": exporter(model),
            }
    raise ModelFormatError(
        f"no portable format for {type(model).__name__}"
    )


def import_model(payload: dict[str, Any]) -> Any:
    if not isinstance(payload, dict):
        raise ModelFormatError("model payload must be a dict")
    if payload.get("version") != FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported model format version: {payload.get('version')!r}"
        )
    kind = payload.get("kind")
    importer = _IMPORTERS.get(kind)
    if importer is None:
        raise ModelFormatError(f"unknown model kind: {kind!r}")
    return importer(payload["payload"])


def to_json(model: Any) -> str:
    return json.dumps(export_model(model), sort_keys=True)


def from_json(text: str) -> Any:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"invalid JSON: {exc}") from exc
    return import_model(payload)


# -- the generic container ---------------------------------------------------------


@dataclass
class ModelContainer:
    """A standard serving wrapper: model + schema + metadata [44].

    The container validates inputs against the declared feature count,
    exposes one ``predict`` call regardless of the wrapped family, and
    serializes as a single JSON document (model + metadata together), so
    any serving system in the repo can host any model.
    """

    model: Any
    n_features: int
    name: str = "model"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_features < 1:
            raise ValueError("n_features must be >= 1")

    def predict(self, x: np.ndarray) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(x, dtype=float))
        if arr.shape[1] != self.n_features:
            raise ValueError(
                f"container {self.name!r} expects {self.n_features} features, "
                f"got {arr.shape[1]}"
            )
        return np.asarray(self.model.predict(arr))

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": FORMAT_VERSION,
                "name": self.name,
                "n_features": self.n_features,
                "metadata": self.metadata,
                "model": export_model(self.model),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelContainer":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelFormatError(f"invalid JSON: {exc}") from exc
        if payload.get("version") != FORMAT_VERSION:
            raise ModelFormatError("unsupported container version")
        return cls(
            model=import_model(payload["model"]),
            n_features=int(payload["n_features"]),
            name=payload.get("name", "model"),
            metadata=payload.get("metadata", {}),
        )
