"""Drift detection for deployed models (Insight 3: feedback loop).

Workload patterns change over time due to data or concept drift, and
"regression is a genuine concern" (Section 4.2).  These detectors feed the
monitoring half of the feedback loop in :mod:`repro.core.feedback`.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

import numpy as np
from scipy import stats


class DriftDetector(Protocol):
    """A detector consumes one observation at a time and reports drift."""

    def update(self, value: float) -> bool:
        """Feed one observation; return True if drift is detected."""
        ...

    def reset(self) -> None:
        """Clear detector state (called after a model retrain/rollback)."""
        ...


class PageHinkley:
    """Page-Hinkley test for upward mean shift in a stream.

    Detects when the cumulative deviation of observations above their
    running mean exceeds ``threshold``.  ``delta`` is the magnitude of
    tolerated change.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 5.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._min_cumulative = 0.0

    def update(self, value: float) -> bool:
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._min_cumulative = min(self._min_cumulative, self._cumulative)
        return (self._cumulative - self._min_cumulative) > self.threshold


class WindowedKSDetector:
    """Two-sample Kolmogorov-Smirnov test between a reference and a window.

    The reference window is frozen at construction-time size; subsequent
    observations fill a sliding current window, and drift is flagged when
    the KS test rejects distributional equality at ``p_value``.
    """

    def __init__(self, window: int = 50, p_value: float = 0.01) -> None:
        if window < 5:
            raise ValueError("window must be >= 5")
        if not 0.0 < p_value < 1.0:
            raise ValueError("p_value must be in (0, 1)")
        self.window = window
        self.p_value = p_value
        self.reset()

    def reset(self) -> None:
        self._reference: list[float] = []
        self._current: deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> bool:
        if len(self._reference) < self.window:
            self._reference.append(float(value))
            return False
        self._current.append(float(value))
        if len(self._current) < self.window:
            return False
        statistic = stats.ks_2samp(
            np.asarray(self._reference), np.asarray(self._current)
        )
        return bool(statistic.pvalue < self.p_value)
