"""Provenance tracking for ML-for-Systems pipelines (Vamsa [34]).

"In a production environment, when encountering regression, a complex
data lineage across a multitude of systems and language is needed for a
close investigation from data ingestion to model (deployed) inference.
Debuggability needs to be well-supported with tracking/versioning
through MLOps."

The tracker records a DAG of artifacts (datasets, feature sets, models,
deployments) and the operations that produced them, so an on-call
engineer can answer the two incident questions in one call each:
*upstream* — everything a bad model was derived from — and *downstream*
— everything a bad dataset contaminated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

import networkx as nx

VALID_KINDS = ("dataset", "featureset", "model", "deployment", "metric")


@dataclass(frozen=True)
class Artifact:
    """One node in the provenance DAG."""

    artifact_id: str
    kind: str
    name: str
    metadata: tuple[tuple[str, Any], ...] = ()

    def meta(self, key: str, default: Any = None) -> Any:
        for k, v in self.metadata:
            if k == key:
                return v
        return default


class LineageTracker:
    """Append-only provenance DAG with upstream/downstream queries."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._ids = itertools.count(1)
        self._artifacts: dict[str, Artifact] = {}

    def __len__(self) -> int:
        return len(self._artifacts)

    # -- recording --------------------------------------------------------------
    def record(
        self,
        kind: str,
        name: str,
        inputs: Iterable[Artifact | str] = (),
        operation: str = "",
        **metadata: Any,
    ) -> Artifact:
        """Record a new artifact derived from ``inputs`` via ``operation``."""
        if kind not in VALID_KINDS:
            raise ValueError(
                f"unknown artifact kind {kind!r}; expected one of {VALID_KINDS}"
            )
        if not name:
            raise ValueError("artifact name must be non-empty")
        artifact = Artifact(
            artifact_id=f"{kind}-{next(self._ids):05d}",
            kind=kind,
            name=name,
            metadata=tuple(sorted(metadata.items())),
        )
        self._artifacts[artifact.artifact_id] = artifact
        self._graph.add_node(artifact.artifact_id)
        for parent in inputs:
            parent_id = (
                parent.artifact_id if isinstance(parent, Artifact) else parent
            )
            if parent_id not in self._artifacts:
                raise KeyError(f"unknown input artifact {parent_id!r}")
            self._graph.add_edge(parent_id, artifact.artifact_id, op=operation)
        return artifact

    def get(self, artifact_id: str) -> Artifact:
        try:
            return self._artifacts[artifact_id]
        except KeyError:
            raise KeyError(f"unknown artifact {artifact_id!r}") from None

    # -- incident queries ---------------------------------------------------------
    def upstream(self, artifact: Artifact | str) -> list[Artifact]:
        """Everything this artifact was derived from (the Vamsa question:
        where did the bad model's behaviour come from?)."""
        node = artifact.artifact_id if isinstance(artifact, Artifact) else artifact
        self.get(node)
        return sorted(
            (self._artifacts[a] for a in nx.ancestors(self._graph, node)),
            key=lambda a: a.artifact_id,
        )

    def downstream(self, artifact: Artifact | str) -> list[Artifact]:
        """Everything derived from this artifact (contamination blast radius)."""
        node = artifact.artifact_id if isinstance(artifact, Artifact) else artifact
        self.get(node)
        return sorted(
            (self._artifacts[a] for a in nx.descendants(self._graph, node)),
            key=lambda a: a.artifact_id,
        )

    def path_between(
        self, source: Artifact | str, target: Artifact | str
    ) -> list[tuple[Artifact, str]]:
        """One derivation chain source -> target as (artifact, operation).

        Raises :class:`networkx.NetworkXNoPath` when unconnected.
        """
        src = source.artifact_id if isinstance(source, Artifact) else source
        dst = target.artifact_id if isinstance(target, Artifact) else target
        nodes = nx.shortest_path(self._graph, src, dst)
        out = [(self._artifacts[nodes[0]], "")]
        for a, b in zip(nodes, nodes[1:]):
            out.append(
                (self._artifacts[b], self._graph.edges[a, b].get("op", ""))
            )
        return out

    def by_kind(self, kind: str) -> list[Artifact]:
        if kind not in VALID_KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return sorted(
            (a for a in self._artifacts.values() if a.kind == kind),
            key=lambda a: a.artifact_id,
        )

    # -- reporting ---------------------------------------------------------------
    def incident_report(self, artifact: Artifact | str) -> str:
        """Markdown incident sheet: the artifact, its inputs, its victims."""
        node = artifact if isinstance(artifact, Artifact) else self.get(artifact)
        upstream = self.upstream(node)
        downstream = self.downstream(node)
        lines = [
            f"# Lineage incident report: {node.name}",
            f"- id: `{node.artifact_id}`  kind: {node.kind}",
            "",
            f"## Derived from ({len(upstream)})",
        ]
        lines += [f"- `{a.artifact_id}` {a.kind}: {a.name}" for a in upstream] or ["- (nothing)"]
        lines += ["", f"## Contaminates ({len(downstream)})"]
        lines += [f"- `{a.artifact_id}` {a.kind}: {a.name}" for a in downstream] or ["- (nothing)"]
        return "\n".join(lines)
