"""Model registry with staged rollout, monitoring hooks, and rollback.

Implements the MLOps requirements of Insight 3: every deployed model must
be (1) monitored so regressions are spotted, and (2) quickly revertible.
The registry versions models per logical *name*, tracks which version is
serving, supports flighting (a candidate serving a fraction of traffic),
and keeps an audit log of every transition.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


class ModelStage(enum.Enum):
    """Lifecycle stage of a registered model version."""

    REGISTERED = "registered"
    FLIGHTING = "flighting"
    PRODUCTION = "production"
    RETIRED = "retired"


@dataclass
class ModelRecord:
    """A single registered model version."""

    name: str
    version: int
    model: Any
    stage: ModelStage = ModelStage.REGISTERED
    metadata: dict = field(default_factory=dict)
    metrics: list[float] = field(default_factory=list)


class ModelRegistry:
    """Versioned model store with flighting and one-call rollback."""

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._records: dict[str, dict[int, ModelRecord]] = {}
        self._versions = itertools.count(1)
        self._flight_fraction: dict[str, float] = {}
        self._promotion_history: dict[str, list[int]] = {}
        self._rng = np.random.default_rng(rng)
        self.audit_log: list[tuple[str, str, int]] = []

    # -- registration --------------------------------------------------------
    def register(self, name: str, model: Any, metadata: dict | None = None) -> int:
        """Register a new version of ``name``; returns the version number."""
        version = next(self._versions)
        record = ModelRecord(name, version, model, metadata=metadata or {})
        self._records.setdefault(name, {})[version] = record
        self.audit_log.append(("register", name, version))
        return version

    def get(self, name: str, version: int) -> ModelRecord:
        try:
            return self._records[name][version]
        except KeyError:
            raise KeyError(f"no model {name!r} version {version}") from None

    def versions(self, name: str) -> list[int]:
        return sorted(self._records.get(name, {}))

    # -- lifecycle -------------------------------------------------------------
    def promote(self, name: str, version: int) -> None:
        """Make ``version`` the production model, retiring the previous one."""
        record = self.get(name, version)
        current = self.production(name)
        if current is not None and current.version != version:
            current.stage = ModelStage.RETIRED
        record.stage = ModelStage.PRODUCTION
        self._promotion_history.setdefault(name, []).append(version)
        self._flight_fraction.pop(name, None)
        self.audit_log.append(("promote", name, version))

    def flight(self, name: str, version: int, fraction: float = 0.1) -> None:
        """Start flighting ``version`` on ``fraction`` of traffic.

        Only one flight per name may be active: a second concurrent
        flight would leave ``flighting()`` answering with one candidate
        while the traffic fraction applies to the other.  Settle the
        active flight (``evaluate_flight``) or roll it back first.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("flight fraction must be in (0, 1)")
        record = self.get(name, version)
        if self.production(name) is None:
            raise RuntimeError(f"cannot flight {name!r}: no production model")
        active = self.flighting(name)
        if active is not None and active.version != version:
            raise RuntimeError(
                f"cannot flight {name!r} v{version}: "
                f"v{active.version} is already flighting"
            )
        record.stage = ModelStage.FLIGHTING
        self._flight_fraction[name] = fraction
        self.audit_log.append(("flight", name, version))

    def rollback(self, name: str) -> int:
        """Revert production to the previously promoted version.

        Returns the version now serving.  Each rollback walks one step
        further back through the promotion history, so repeated rollbacks
        never ping-pong between the last two versions.
        """
        history = self._promotion_history.get(name, [])
        if len(history) < 2:
            raise RuntimeError(f"no previous version of {name!r} to roll back to")
        current_version = history.pop()
        previous = self.get(name, history[-1])
        self.get(name, current_version).stage = ModelStage.RETIRED
        previous.stage = ModelStage.PRODUCTION
        self._flight_fraction.pop(name, None)
        self.audit_log.append(("rollback", name, previous.version))
        return previous.version

    # -- serving ---------------------------------------------------------------
    def production(self, name: str) -> ModelRecord | None:
        for record in self._records.get(name, {}).values():
            if record.stage is ModelStage.PRODUCTION:
                return record
        return None

    def flighting(self, name: str) -> ModelRecord | None:
        for record in self._records.get(name, {}).values():
            if record.stage is ModelStage.FLIGHTING:
                return record
        return None

    def serve(self, name: str) -> ModelRecord:
        """Pick the record that should answer the next request.

        During a flight, the candidate answers its configured fraction of
        traffic; otherwise the production model answers.
        """
        candidate = self.flighting(name)
        if candidate is not None:
            if self._rng.random() < self._flight_fraction.get(name, 0.0):
                return candidate
        record = self.production(name)
        if record is None:
            raise RuntimeError(f"no production model for {name!r}")
        return record

    # -- monitoring ---------------------------------------------------------------
    def record_metric(self, name: str, version: int, value: float) -> None:
        self.get(name, version).metrics.append(float(value))

    def evaluate_flight(
        self,
        name: str,
        better: Callable[[float, float], bool] | None = None,
        min_samples: int = 10,
    ) -> bool | None:
        """Compare flight vs production metrics; promote or abort.

        Returns True if the candidate was promoted, False if aborted, or
        None if there is not enough data yet.  ``better(candidate, prod)``
        defaults to "lower mean metric wins" (error-style metrics).
        """
        candidate = self.flighting(name)
        production = self.production(name)
        if candidate is None or production is None:
            raise RuntimeError(f"no active flight for {name!r}")
        if len(candidate.metrics) < min_samples or len(production.metrics) < min_samples:
            return None
        if better is None:
            better = lambda cand, prod: cand < prod  # noqa: E731
        cand_mean = float(np.mean(candidate.metrics))
        prod_mean = float(np.mean(production.metrics))
        if better(cand_mean, prod_mean):
            self.promote(name, candidate.version)
            return True
        candidate.stage = ModelStage.RETIRED
        self._flight_fraction.pop(name, None)
        self.audit_log.append(("abort_flight", name, candidate.version))
        return False
