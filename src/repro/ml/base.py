"""Shared estimator protocol and validation helpers."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


class FittedError(RuntimeError):
    """Raised when an operation is invalid on an already-fitted estimator."""


@runtime_checkable
class Model(Protocol):
    """Minimal estimator protocol shared by every model in ``repro.ml``."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Model":
        """Fit the model and return ``self``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``x``."""
        ...


def check_2d(x: np.ndarray, name: str = "x") -> np.ndarray:
    """Coerce ``x`` to a 2-D float array, raising on bad shapes.

    A 1-D input is treated as a single feature column, which matches how
    the paper's micromodels are typically trained (one driving feature,
    e.g. input cardinality).
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair."""
    xarr = check_2d(x)
    yarr = np.asarray(y, dtype=float).ravel()
    if yarr.shape[0] != xarr.shape[0]:
        raise ValueError(
            f"x and y disagree on sample count: {xarr.shape[0]} vs {yarr.shape[0]}"
        )
    if not np.all(np.isfinite(yarr)):
        raise ValueError("y contains non-finite values")
    return xarr, yarr


def check_fitted(model: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``model`` has ``attribute`` set."""
    if getattr(model, attribute, None) is None:
        raise NotFittedError(
            f"{type(model).__name__} is not fitted; call fit() first"
        )
