"""K-means clustering (k-means++ init) and silhouette scoring.

Doppler-style SKU recommendation (Section 4.3) stratifies customers into
segments before applying per-segment knowledge; k-means is the natural
stratifier given Insight 2 ("one size does not fit all").
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_2d, check_fitted


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and empty-cluster repair."""

    def __init__(
        self,
        n_clusters: int = 4,
        n_iter: int = 100,
        tol: float = 1e-6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_iter = n_iter
        self.tol = tol
        self._rng = np.random.default_rng(rng)
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    def fit(self, x: np.ndarray) -> "KMeans":
        arr = check_2d(x)
        if arr.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} samples, got {arr.shape[0]}"
            )
        centers = self._init_centers(arr)
        labels = np.zeros(arr.shape[0], dtype=int)
        for _ in range(self.n_iter):
            distances = self._pairwise_sq(arr, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = arr[labels == k]
                if members.shape[0] == 0:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = np.argmax(distances.min(axis=1))
                    new_centers[k] = arr[farthest]
                else:
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift < self.tol:
                break
        self.centers_ = centers
        self.labels_ = labels
        self.inertia_ = float(
            np.sum(self._pairwise_sq(arr, centers)[np.arange(arr.shape[0]), labels])
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "centers_")
        arr = check_2d(x)
        return np.argmin(self._pairwise_sq(arr, self.centers_), axis=1)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).labels_

    def _init_centers(self, arr: np.ndarray) -> np.ndarray:
        n = arr.shape[0]
        centers = [arr[self._rng.integers(0, n)]]
        while len(centers) < self.n_clusters:
            distances = self._pairwise_sq(arr, np.array(centers)).min(axis=1)
            total = distances.sum()
            if total == 0.0:
                # All remaining points coincide with existing centers.
                centers.append(arr[self._rng.integers(0, n)])
                continue
            probabilities = distances / total
            centers.append(arr[self._rng.choice(n, p=probabilities)])
        return np.array(centers)

    @staticmethod
    def _pairwise_sq(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        diff = points[:, None, :] - centers[None, :, :]
        return np.sum(diff**2, axis=2)


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    Returns 0.0 when there is a single cluster (undefined otherwise).
    """
    arr = check_2d(x)
    labels = np.asarray(labels, dtype=int).ravel()
    if labels.shape[0] != arr.shape[0]:
        raise ValueError("labels must match sample count")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        return 0.0
    diff = arr[:, None, :] - arr[None, :, :]
    distances = np.sqrt(np.sum(diff**2, axis=2))
    scores = np.zeros(arr.shape[0])
    for i in range(arr.shape[0]):
        own = labels[i]
        own_mask = labels == own
        n_own = own_mask.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own_mask].sum() / (n_own - 1)
        b = min(
            distances[i, labels == other].mean()
            for other in unique
            if other != own
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(scores))
