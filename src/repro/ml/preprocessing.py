"""Feature preprocessing utilities shared by the autonomous services."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.base import check_2d, check_fitted


class StandardScaler:
    """Zero-mean / unit-variance scaling with degenerate-column protection."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        arr = check_2d(x)
        self.mean_ = arr.mean(axis=0)
        scale = arr.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        arr = check_2d(x)
        if arr.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {arr.shape[1]}"
            )
        return (arr - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        arr = check_2d(x)
        return arr * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encoding for a single categorical column of hashables."""

    def __init__(self, handle_unknown: str = "ignore") -> None:
        if handle_unknown not in ("ignore", "error"):
            raise ValueError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown
        self.categories_: list | None = None
        self._index: dict | None = None

    def fit(self, values: Sequence) -> "OneHotEncoder":
        self.categories_ = sorted(set(values), key=repr)
        self._index = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values: Sequence) -> np.ndarray:
        check_fitted(self, "categories_")
        out = np.zeros((len(values), len(self.categories_)), dtype=float)
        for row, value in enumerate(values):
            col = self._index.get(value)
            if col is None:
                if self.handle_unknown == "error":
                    raise ValueError(f"unknown category: {value!r}")
                continue
            out[row, col] = 1.0
        return out

    def fit_transform(self, values: Sequence) -> np.ndarray:
        return self.fit(values).transform(values)


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(x, y)`` into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    xarr = np.asarray(x)
    yarr = np.asarray(y)
    if xarr.shape[0] != yarr.shape[0]:
        raise ValueError("x and y disagree on sample count")
    generator = np.random.default_rng(rng)
    order = generator.permutation(xarr.shape[0])
    n_test = max(1, int(round(test_fraction * xarr.shape[0])))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if train_idx.size == 0:
        raise ValueError("test_fraction leaves no training samples")
    return xarr[train_idx], xarr[test_idx], yarr[train_idx], yarr[test_idx]


def polynomial_features(x: np.ndarray, degree: int = 2) -> np.ndarray:
    """Expand features with powers up to ``degree`` (no cross terms).

    Cross terms are deliberately omitted: the paper's KEA models use
    single-variable linear/polynomial fits per behaviour (Figure 1), and
    omitting interactions keeps the expansion interpretable.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    arr = check_2d(x)
    columns = [arr**power for power in range(1, degree + 1)]
    return np.hstack(columns)
