"""Regression, classification, and estimation-quality metrics.

``q_error`` is the standard metric for cardinality estimation quality
(max of over/under-estimation ratio); the remaining metrics are the usual
suspects used throughout the paper's micromodel evaluations.
"""

from __future__ import annotations

import numpy as np


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true, dtype=float).ravel()
    p = np.asarray(y_pred, dtype=float).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty inputs")
    return t, p


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean((t - p) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean(np.abs(t - p)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error (with an epsilon guard on zeros)."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean(np.abs(t - p) / np.maximum(np.abs(t), eps)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 0.0 for a constant target perfectly predicted and a negative
    value when the model is worse than predicting the mean.
    """
    t, p = _pair(y_true, y_pred)
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - np.mean(t)) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def q_error(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1.0) -> np.ndarray:
    """Per-sample q-error: ``max(true/pred, pred/true)`` with floors at eps.

    The canonical cardinality-estimation quality metric; 1.0 is perfect.
    """
    t, p = _pair(y_true, y_pred)
    t = np.maximum(np.abs(t), eps)
    p = np.maximum(np.abs(p), eps)
    return np.maximum(t / p, p / t)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty inputs")
    return float(np.mean(t == p))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> np.ndarray:
    """Confusion matrix with rows = true labels, columns = predicted."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if labels is None:
        labels = sorted(set(t.tolist()) | set(p.tolist()))
    index = {label: i for i, label in enumerate(labels)}
    out = np.zeros((len(labels), len(labels)), dtype=int)
    for ti, pi in zip(t, p):
        out[index[ti], index[pi]] += 1
    return out


def precision(y_true: np.ndarray, y_pred: np.ndarray, positive=1) -> float:
    """Precision for the ``positive`` class (0.0 when nothing predicted positive)."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    predicted = p == positive
    if not predicted.any():
        return 0.0
    return float(np.mean(t[predicted] == positive))


def recall(y_true: np.ndarray, y_pred: np.ndarray, positive=1) -> float:
    """Recall for the ``positive`` class (0.0 when no positives exist)."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    actual = t == positive
    if not actual.any():
        return 0.0
    return float(np.mean(p[actual] == positive))


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    pr = precision(y_true, y_pred, positive)
    rc = recall(y_true, y_pred, positive)
    if pr + rc == 0.0:
        return 0.0
    return 2.0 * pr * rc / (pr + rc)
