"""CART decision trees (regression and classification), pure numpy.

Tree models are the second pillar of the paper's Insight 1 model diet:
interpretable, cheap to train, and robust to the skewed telemetry
distributions common in cloud workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_2d, check_fitted, check_xy


@dataclass
class _Node:
    """A single tree node; leaves carry a prediction, splits carry a rule."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class _SplitCandidate:
    feature: int
    threshold: float
    score: float


class _BaseTree:
    """Shared recursive CART builder; subclasses define impurity/prediction."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(rng)
        self.root_: _Node | None = None
        self.n_features_: int = 0

    # -- subclass hooks ----------------------------------------------------
    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # -- fitting -----------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray):
        xarr, yarr = check_xy(x, y)
        self.n_features_ = xarr.shape[1]
        self.root_ = self._build(xarr, yarr, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=self._leaf_value(y), n_samples=y.shape[0])
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        mask = x[:, split.feature] <= split.threshold
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features_:
            return np.arange(self.n_features_)
        return self._rng.choice(
            self.n_features_, size=self.max_features, replace=False
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> _SplitCandidate | None:
        parent_impurity = self._impurity(y)
        best: _SplitCandidate | None = None
        n = y.shape[0]
        for feature in self._candidate_features():
            values = x[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = y[order]
            # candidate thresholds: midpoints between distinct consecutive values
            distinct = np.nonzero(np.diff(sorted_values))[0]
            for idx in distinct:
                n_left = idx + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_y, right_y = sorted_y[:n_left], sorted_y[n_left:]
                weighted = (
                    n_left * self._impurity(left_y)
                    + n_right * self._impurity(right_y)
                ) / n
                gain = parent_impurity - weighted
                if gain <= 1e-12:
                    continue
                if best is None or gain > best.score:
                    threshold = 0.5 * (
                        sorted_values[idx] + sorted_values[idx + 1]
                    )
                    best = _SplitCandidate(feature, float(threshold), gain)
        return best

    # -- prediction ----------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "root_")
        xarr = check_2d(x)
        if xarr.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {xarr.shape[1]}"
            )
        return np.array([self._predict_row(row) for row in xarr])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimizing within-node variance."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimizing Gini impurity.

    Labels may be arbitrary integers; predictions return the majority
    label of the reached leaf.
    """

    def _leaf_value(self, y: np.ndarray) -> float:
        values, counts = np.unique(y, return_counts=True)
        return float(values[np.argmax(counts)])

    def _impurity(self, y: np.ndarray) -> float:
        _, counts = np.unique(y, return_counts=True)
        proportions = counts / y.shape[0]
        return float(1.0 - np.sum(proportions**2))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return super().predict(x).astype(int)
