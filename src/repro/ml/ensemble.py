"""Tree ensembles: random forest and gradient boosting for regression."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_2d, check_fitted, check_xy
from repro.ml.trees import DecisionTreeRegressor


class RandomForestRegressor:
    """Bagged regression trees with per-split feature subsampling."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(rng)
        self.trees_: list[DecisionTreeRegressor] | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        xarr, yarr = check_xy(x, y)
        n = xarr.shape[0]
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, xarr.shape[1] // 2)
        trees = []
        for _ in range(self.n_trees):
            sample = self._rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=self._rng,
            )
            tree.fit(xarr[sample], yarr[sample])
            trees.append(tree)
        self.trees_ = trees
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        xarr = check_2d(x)
        stacked = np.stack([tree.predict(xarr) for tree in self.trees_])
        return stacked.mean(axis=0)

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Per-sample standard deviation across trees (epistemic proxy).

        Used by MLOS-style tuners as a cheap uncertainty estimate when
        trading off exploration against exploitation.
        """
        check_fitted(self, "trees_")
        xarr = check_2d(x)
        stacked = np.stack([tree.predict(xarr) for tree in self.trees_])
        return stacked.std(axis=0)


class GradientBoostingRegressor:
    """Least-squares gradient boosting over shallow regression trees."""

    def __init__(
        self,
        n_trees: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._rng = np.random.default_rng(rng)
        self.base_prediction_: float | None = None
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        xarr, yarr = check_xy(x, y)
        self.base_prediction_ = float(np.mean(yarr))
        self.trees_ = []
        current = np.full(yarr.shape, self.base_prediction_)
        for _ in range(self.n_trees):
            residual = yarr - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self._rng,
            )
            tree.fit(xarr, residual)
            current = current + self.learning_rate * tree.predict(xarr)
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "base_prediction_")
        xarr = check_2d(x)
        out = np.full(xarr.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(xarr)
        return out

    def staged_predict(self, x: np.ndarray):
        """Yield predictions after each boosting round (for early stopping)."""
        check_fitted(self, "base_prediction_")
        xarr = check_2d(x)
        out = np.full(xarr.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(xarr)
            yield out.copy()
