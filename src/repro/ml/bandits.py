"""Multi-armed and contextual bandits.

Section 4.2 describes steering the query optimizer with rule hints using
a *contextual bandit* to minimize pre-production experimentation cost
(QO-Advisor, [35, 51]).  These are the standard algorithms that effort
builds on; ``LinUCB`` is the contextual variant used by the steering
service in :mod:`repro.core.steering`.
"""

from __future__ import annotations

import math

import numpy as np


class _BaseBandit:
    """Shared bookkeeping for the non-contextual bandits."""

    def __init__(self, n_arms: int, rng: np.random.Generator | int | None = None):
        if n_arms < 1:
            raise ValueError("n_arms must be >= 1")
        self.n_arms = n_arms
        self._rng = np.random.default_rng(rng)
        self.counts = np.zeros(n_arms, dtype=int)
        self.rewards = np.zeros(n_arms, dtype=float)

    @property
    def total_pulls(self) -> int:
        return int(self.counts.sum())

    def mean_reward(self, arm: int) -> float:
        if self.counts[arm] == 0:
            return 0.0
        return float(self.rewards[arm] / self.counts[arm])

    def update(self, arm: int, reward: float) -> None:
        if not 0 <= arm < self.n_arms:
            raise ValueError(f"arm {arm} out of range [0, {self.n_arms})")
        self.counts[arm] += 1
        self.rewards[arm] += reward

    def best_arm(self) -> int:
        """The arm with the highest empirical mean so far."""
        means = np.divide(
            self.rewards,
            self.counts,
            out=np.zeros(self.n_arms),
            where=self.counts > 0,
        )
        return int(np.argmax(means))


class EpsilonGreedyBandit(_BaseBandit):
    """Explore uniformly with probability epsilon, else exploit."""

    def __init__(
        self,
        n_arms: int,
        epsilon: float = 0.1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(n_arms, rng)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def select(self) -> int:
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, self.n_arms))
        return self.best_arm()


class UCB1Bandit(_BaseBandit):
    """Upper-confidence-bound selection (Auer et al.)."""

    def select(self) -> int:
        # Each arm must be tried once before UCB scores are defined.
        untried = np.nonzero(self.counts == 0)[0]
        if untried.size:
            return int(untried[0])
        total = self.total_pulls
        means = self.rewards / self.counts
        bonus = np.sqrt(2.0 * math.log(total) / self.counts)
        return int(np.argmax(means + bonus))


class ThompsonSamplingBandit(_BaseBandit):
    """Beta-Bernoulli Thompson sampling for rewards in [0, 1]."""

    def __init__(self, n_arms: int, rng: np.random.Generator | int | None = None):
        super().__init__(n_arms, rng)
        self._alpha = np.ones(n_arms)
        self._beta = np.ones(n_arms)

    def select(self) -> int:
        samples = self._rng.beta(self._alpha, self._beta)
        return int(np.argmax(samples))

    def update(self, arm: int, reward: float) -> None:
        if not 0.0 <= reward <= 1.0:
            raise ValueError("Thompson sampling expects rewards in [0, 1]")
        super().update(arm, reward)
        self._alpha[arm] += reward
        self._beta[arm] += 1.0 - reward


class LinUCB:
    """Contextual linear UCB (Li et al. 2010), one ridge model per arm.

    ``select`` takes a context vector and returns the arm maximizing the
    optimistic linear payoff estimate; ``update`` performs the closed-form
    ridge update for the chosen arm.
    """

    def __init__(
        self,
        n_arms: int,
        n_features: int,
        alpha: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_arms < 1:
            raise ValueError("n_arms must be >= 1")
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n_arms = n_arms
        self.n_features = n_features
        self.alpha = alpha
        self._rng = np.random.default_rng(rng)
        self._a = [np.eye(n_features) for _ in range(n_arms)]
        self._b = [np.zeros(n_features) for _ in range(n_arms)]
        self.counts = np.zeros(n_arms, dtype=int)

    def _check_context(self, context: np.ndarray) -> np.ndarray:
        ctx = np.asarray(context, dtype=float).ravel()
        if ctx.shape[0] != self.n_features:
            raise ValueError(
                f"context must have {self.n_features} features, got {ctx.shape[0]}"
            )
        return ctx

    def scores(self, context: np.ndarray) -> np.ndarray:
        """Optimistic payoff estimate for every arm given ``context``."""
        ctx = self._check_context(context)
        out = np.zeros(self.n_arms)
        for arm in range(self.n_arms):
            a_inv = np.linalg.inv(self._a[arm])
            theta = a_inv @ self._b[arm]
            out[arm] = float(
                theta @ ctx + self.alpha * math.sqrt(ctx @ a_inv @ ctx)
            )
        return out

    def select(self, context: np.ndarray) -> int:
        scores = self.scores(context)
        best = np.flatnonzero(scores == scores.max())
        return int(self._rng.choice(best))

    def update(self, arm: int, context: np.ndarray, reward: float) -> None:
        if not 0 <= arm < self.n_arms:
            raise ValueError(f"arm {arm} out of range [0, {self.n_arms})")
        ctx = self._check_context(context)
        self._a[arm] += np.outer(ctx, ctx)
        self._b[arm] += reward * ctx
        self.counts[arm] += 1

    def point_estimate(self, arm: int, context: np.ndarray) -> float:
        """Non-optimistic payoff estimate (no exploration bonus)."""
        ctx = self._check_context(context)
        theta = np.linalg.solve(self._a[arm], self._b[arm])
        return float(theta @ ctx)
