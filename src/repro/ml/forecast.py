"""Time-series forecasting: the simple methods the paper actually deploys.

Seagull [40] reports that for servers with stable daily/weekly patterns a
previous-day heuristic already reaches 96% accuracy; Moneyball [41]
classifies 77% of serverless usage as predictable before forecasting.
This module provides the corresponding forecasters plus a
``predictability_score`` used to make the predictable/unpredictable call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import NotFittedError


def _as_series(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("series must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("series contains non-finite values")
    return arr


class SeasonalNaiveForecaster:
    """Forecast each step as the value one season earlier.

    This is exactly the "previous day" heuristic from Seagull when the
    period equals one day of samples.
    """

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "SeasonalNaiveForecaster":
        arr = _as_series(series)
        if arr.size < self.period:
            raise ValueError(
                f"need at least one full period ({self.period}), got {arr.size}"
            )
        self._history = arr
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._history is None:
            raise NotFittedError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        last_season = self._history[-self.period :]
        reps = int(np.ceil(horizon / self.period))
        return np.tile(last_season, reps)[:horizon]


class MovingAverageForecaster:
    """Forecast a flat line at the mean of the last ``window`` samples."""

    def __init__(self, window: int = 24) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._level: float | None = None

    def fit(self, series: np.ndarray) -> "MovingAverageForecaster":
        arr = _as_series(series)
        self._level = float(arr[-self.window :].mean())
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._level is None:
            raise NotFittedError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return np.full(horizon, self._level)


class HoltWinters:
    """Additive Holt-Winters (triple exponential smoothing)."""

    def __init__(
        self,
        period: int,
        alpha: float = 0.3,
        beta: float = 0.05,
        gamma: float = 0.2,
    ) -> None:
        if period < 2:
            raise ValueError("period must be >= 2")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1)")
        self.period = period
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._level: float | None = None
        self._trend: float = 0.0
        self._seasonal: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "HoltWinters":
        arr = _as_series(series)
        m = self.period
        if arr.size < 2 * m:
            raise ValueError(f"need at least two periods ({2 * m}), got {arr.size}")
        # Classical initialization from the first two seasons.
        season1 = arr[:m].mean()
        season2 = arr[m : 2 * m].mean()
        level = season1
        trend = (season2 - season1) / m
        seasonal = arr[:m] - season1
        for t in range(m, arr.size):
            value = arr[t]
            idx = t % m
            prev_level = level
            level = self.alpha * (value - seasonal[idx]) + (1 - self.alpha) * (
                level + trend
            )
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
            seasonal[idx] = self.gamma * (value - level) + (1 - self.gamma) * seasonal[
                idx
            ]
        self._level = level
        self._trend = trend
        self._seasonal = seasonal
        self._t = arr.size
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._level is None:
            raise NotFittedError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        steps = np.arange(1, horizon + 1)
        seasonal_idx = (self._t + steps - 1) % self.period
        return self._level + steps * self._trend + self._seasonal[seasonal_idx]


@dataclass
class Decomposition:
    """Result of :func:`seasonal_decompose`."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray


def seasonal_decompose(series: np.ndarray, period: int) -> Decomposition:
    """Additive decomposition: centered-MA trend + mean seasonal + residual."""
    arr = _as_series(series)
    if period < 2:
        raise ValueError("period must be >= 2")
    if arr.size < 2 * period:
        raise ValueError(f"need at least two periods ({2 * period}), got {arr.size}")
    kernel = np.ones(period) / period
    trend = np.convolve(arr, kernel, mode="same")
    detrended = arr - trend
    seasonal_means = np.array(
        [detrended[i::period].mean() for i in range(period)]
    )
    seasonal_means -= seasonal_means.mean()
    seasonal = np.tile(seasonal_means, int(np.ceil(arr.size / period)))[: arr.size]
    residual = arr - trend - seasonal
    return Decomposition(trend=trend, seasonal=seasonal, residual=residual)


def predictability_score(series: np.ndarray, period: int) -> float:
    """Fraction of variance explained by a seasonal-naive one-period model.

    Mirrors the Moneyball-style predictable/unpredictable classification:
    a score near 1.0 means the series repeats its seasonal pattern almost
    exactly; near (or below) 0.0 means the seasonal model explains nothing.
    """
    arr = _as_series(series)
    if period < 1:
        raise ValueError("period must be >= 1")
    if arr.size < 2 * period:
        raise ValueError(f"need at least two periods ({2 * period}), got {arr.size}")
    predicted = arr[:-period]
    actual = arr[period:]
    ss_res = float(np.sum((actual - predicted) ** 2))
    ss_tot = float(np.sum((actual - actual.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
