"""From-scratch ML substrate for the autonomous data services reproduction.

The paper's Insight 1 ("Simplicity rules") observes that production
ML-for-Systems work at Azure overwhelmingly uses simple model families:
linear models, tree ensembles, k-means segmentation, bandits, and classical
time-series forecasting.  This subpackage implements exactly those families
on top of numpy, plus the MLOps scaffolding (model registry, drift
detection, rollback) that Insight 3 ("Feedback loop is indispensable")
calls for.
"""

from repro.ml.base import FittedError, Model, NotFittedError, check_2d, check_fitted
from repro.ml.bandits import (
    EpsilonGreedyBandit,
    LinUCB,
    ThompsonSamplingBandit,
    UCB1Bandit,
)
from repro.ml.cluster import KMeans, silhouette_score
from repro.ml.drift import DriftDetector, PageHinkley, WindowedKSDetector
from repro.ml.ensemble import GradientBoostingRegressor, RandomForestRegressor
from repro.ml.forecast import (
    HoltWinters,
    MovingAverageForecaster,
    SeasonalNaiveForecaster,
    predictability_score,
    seasonal_decompose,
)
from repro.ml.lineage import Artifact, LineageTracker
from repro.ml.linear import (
    LinearRegression,
    LogisticRegression,
    QuantileRegression,
    RidgeRegression,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    mae,
    mape,
    mse,
    precision,
    q_error,
    r2_score,
    recall,
    rmse,
)
from repro.ml.preprocessing import (
    OneHotEncoder,
    StandardScaler,
    polynomial_features,
    train_test_split,
)
from repro.ml.registry import ModelRecord, ModelRegistry, ModelStage
from repro.ml.trees import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "Model",
    "NotFittedError",
    "FittedError",
    "check_2d",
    "check_fitted",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "QuantileRegression",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "KMeans",
    "silhouette_score",
    "EpsilonGreedyBandit",
    "UCB1Bandit",
    "ThompsonSamplingBandit",
    "LinUCB",
    "SeasonalNaiveForecaster",
    "MovingAverageForecaster",
    "HoltWinters",
    "seasonal_decompose",
    "predictability_score",
    "StandardScaler",
    "OneHotEncoder",
    "train_test_split",
    "polynomial_features",
    "ModelRegistry",
    "LineageTracker",
    "Artifact",
    "ModelRecord",
    "ModelStage",
    "DriftDetector",
    "PageHinkley",
    "WindowedKSDetector",
    "mse",
    "rmse",
    "mae",
    "mape",
    "r2_score",
    "q_error",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
]
