"""Linear model family: OLS, ridge, logistic, and quantile regression.

Linear models are the workhorse of the paper (Insight 1): KEA's machine
behaviour models, AutoToken's resource predictors, and many micromodels
are linear fits chosen for interpretability and negligible training cost.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import check_2d, check_fitted, check_xy


class LinearRegression:
    """Ordinary least squares via ``numpy.linalg.lstsq``.

    Attributes after fitting: ``coef_`` (per-feature slopes) and
    ``intercept_``.  Both are plain floats/arrays so downstream services
    can inspect and explain the fit (a recurring production requirement
    in the paper's Insight 1 discussion).
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        xarr, yarr = check_xy(x, y)
        design = self._design(xarr)
        solution, *_ = np.linalg.lstsq(design, yarr, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        xarr = check_2d(x)
        if xarr.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected {self.coef_.shape[0]} features, got {xarr.shape[1]}"
            )
        return xarr @ self.coef_ + self.intercept_

    def _design(self, xarr: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return xarr
        return np.hstack([np.ones((xarr.shape[0], 1)), xarr])


class RidgeRegression(LinearRegression):
    """L2-regularized least squares, solved in closed form.

    The intercept is never penalized.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        xarr, yarr = check_xy(x, y)
        design = self._design(xarr)
        n_params = design.shape[1]
        # Solve the augmented least-squares system [X; sqrt(a) I] b = [y; 0]
        # via lstsq: numerically stable even for terribly conditioned
        # feature matrices (near-constant or hugely scaled columns).
        penalty_rows = np.sqrt(self.alpha) * np.eye(n_params)
        if self.fit_intercept:
            penalty_rows[0, 0] = 0.0
        augmented = np.vstack([design, penalty_rows])
        target = np.concatenate([yarr, np.zeros(n_params)])
        solution, *_ = np.linalg.lstsq(augmented, target, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self


class LogisticRegression:
    """Binary logistic regression fit by gradient descent with L2 penalty."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iter: int = 500,
        alpha: float = 1e-4,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iter <= 0:
            raise ValueError("n_iter must be positive")
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        xarr, yarr = check_xy(x, y)
        unique = set(np.unique(yarr).tolist())
        if not unique <= {0.0, 1.0}:
            raise ValueError(f"labels must be 0/1, got {sorted(unique)}")
        n, d = xarr.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.n_iter):
            prob = self._sigmoid(xarr @ weights + bias)
            error = prob - yarr
            grad_w = xarr.T @ error / n + self.alpha * weights
            grad_b = float(np.mean(error))
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        xarr = check_2d(x)
        return self._sigmoid(xarr @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)


class QuantileRegression:
    """Linear quantile regression via the pinball loss, solved as an LP.

    Phoebe-style stage-time prediction uses conservative quantiles rather
    than means so that checkpoint placement errs on the safe side.
    """

    def __init__(self, quantile: float = 0.5) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "QuantileRegression":
        xarr, yarr = check_xy(x, y)
        n, d = xarr.shape
        design = np.hstack([np.ones((n, 1)), xarr])
        k = d + 1
        # Variables: beta+ (k), beta- (k), u (n, over-estimation slack),
        # v (n, under-estimation slack).  Minimize q*sum(u) + (1-q)*sum(v)
        # s.t. design @ (beta+ - beta-) + u - v = y, u, v >= 0.
        cost = np.concatenate(
            [
                np.zeros(2 * k),
                np.full(n, self.quantile),
                np.full(n, 1.0 - self.quantile),
            ]
        )
        a_eq = np.hstack([design, -design, np.eye(n), -np.eye(n)])
        result = optimize.linprog(
            cost, A_eq=a_eq, b_eq=yarr, bounds=[(0, None)] * (2 * k + 2 * n),
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"quantile LP failed: {result.message}")
        beta = result.x[:k] - result.x[k : 2 * k]
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        xarr = check_2d(x)
        return xarr @ self.coef_ + self.intercept_
