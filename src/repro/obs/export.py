"""Export spans and events into the columnar :class:`TelemetryStore`.

Spans become :data:`Metric.SPAN_SECONDS` / :data:`Metric.SPAN_CPU_SECONDS`
points (timestamp = span start, dimensions = layer/name/status) and
events become :data:`Metric.EVENT_COUNT` points (dimensions =
layer/source/kind), so the existing :class:`~repro.telemetry.query.Query`
pipeline, binned aggregation, and counter analysis all work on traces
without knowing anything about the tracer.

Both exporters batch through ``record_many``: one dimension dict is
interned per distinct (layer, name, status) / (layer, source, kind)
combination, and timestamps may arrive out of order (the store sorts
lazily on read), so exporting a large trace is a few vectorized appends.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.obs.events import ObsEvent
from repro.obs.span import Span
from repro.telemetry.schema import Metric
from repro.telemetry.store import TelemetryStore


def export_spans(spans: Iterable[Span], store: TelemetryStore) -> int:
    """Sink finished spans into ``store``; returns points written.

    Every span contributes one wall-seconds point and one CPU-seconds
    point.  Open spans are skipped — flush again after they close.
    """
    finished = [s for s in spans if s.finished]
    if not finished:
        return 0
    timestamps = np.array([s.start for s in finished])
    wall = np.array([s.wall_seconds for s in finished])
    cpu = np.array([s.cpu_seconds for s in finished])
    # Reuse one dict object per distinct dimension set so record_many's
    # identity memo interns each combination once.
    dim_cache: dict[tuple[str, str, str], dict[str, str]] = {}
    dims = []
    for span in finished:
        key = (span.layer, span.name, span.status)
        cached = dim_cache.get(key)
        if cached is None:
            cached = dim_cache[key] = {
                "layer": span.layer,
                "name": span.name,
                "status": span.status,
            }
        dims.append(cached)
    written = store.record_many(Metric.SPAN_SECONDS, timestamps, wall, dims)
    written += store.record_many(Metric.SPAN_CPU_SECONDS, timestamps, cpu, dims)
    return written


def export_events(events: Iterable[ObsEvent], store: TelemetryStore) -> int:
    """Sink typed events into ``store``; returns points written."""
    events = list(events)
    if not events:
        return 0
    timestamps = np.array([e.timestamp for e in events])
    values = np.array([e.value for e in events])
    dim_cache: dict[tuple[str, str, str], dict[str, str]] = {}
    dims = []
    for event in events:
        key = (event.layer, event.source, event.kind)
        cached = dim_cache.get(key)
        if cached is None:
            cached = dim_cache[key] = {
                "layer": event.layer,
                "source": event.source,
                "kind": event.kind,
            }
        dims.append(cached)
    return store.record_many(Metric.EVENT_COUNT, timestamps, values, dims)
