"""Typed, layer-tagged events and the log that collects them.

An :class:`ObsEvent` is the one event shape every layer reports through.
Pre-existing report shapes (``ExecutionReport``, ``LoopEvent``,
``SteeringReport``, the DES ``Event``) each expose ``to_events()``, so
:meth:`EventLog.replay` can ingest any of them — simulated timelines
(DES time, stage start/end) land in the log next to live emissions.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, NamedTuple


class ObsEvent(NamedTuple):
    """One observable occurrence somewhere in the system.

    ``layer`` tags which architectural layer emitted it ("infra",
    "engine", "service", ...), ``source`` the component, ``kind`` the
    event type within that component.  ``value`` defaults to 1.0 so
    counting events and summing values coincide for plain occurrences.

    A NamedTuple rather than a dataclass: events are created on hot
    paths (one per simulated DES event / executed stage), and tuple
    construction is about half the cost of a frozen-dataclass init.
    """

    timestamp: float
    layer: str
    source: str
    kind: str
    value: float = 1.0
    attributes: tuple[tuple[str, str], ...] = ()
    span_id: int | None = None

    def attribute(self, key: str) -> str | None:
        for k, v in self.attributes:
            if k == key:
                return v
        return None


def freeze_attributes(attributes: dict[str, object] | None) -> tuple[tuple[str, str], ...]:
    """Normalize an attribute dict into the frozen, sorted tuple form."""
    if not attributes:
        return ()
    return tuple(sorted((k, str(v)) for k, v in attributes.items()))


class EventLog:
    """Append-only log of :class:`ObsEvent`.

    Emission is one tuple build + list append, cheap enough for
    per-simulation-event instrumentation; analysis (filtering, counting,
    export) happens on read.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.perf_counter
        self.events: list[ObsEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self.events)

    def emit(
        self,
        layer: str,
        source: str,
        kind: str,
        value: float = 1.0,
        timestamp: float | None = None,
        span_id: int | None = None,
        **attributes: object,
    ) -> ObsEvent:
        """Record one event; ``timestamp`` defaults to the log's clock."""
        event = ObsEvent(
            timestamp=self._clock() if timestamp is None else float(timestamp),
            layer=layer,
            source=source,
            kind=kind,
            value=float(value),
            attributes=freeze_attributes(attributes),
            span_id=span_id,
        )
        self.events.append(event)
        return event

    def replay(self, source: object) -> int:
        """Ingest events from any report shape; returns the count added.

        Accepts an :class:`ObsEvent`, anything with a ``to_events()``
        method, or an iterable mixing both (so a list of ``LoopEvent``
        replays just like one ``SteeringReport``).
        """
        if isinstance(source, ObsEvent):
            self.events.append(source)
            return 1
        to_events = getattr(source, "to_events", None)
        if to_events is not None:
            source = to_events()
            # An ObsEvent is itself a tuple; don't iterate its fields.
            if isinstance(source, ObsEvent):
                self.events.append(source)
                return 1
        # Fast path for the hot shape: a plain list of ObsEvent (every
        # ``to_events()`` returns one) extends in a single C-level call.
        if type(source) is list and all(type(item) is ObsEvent for item in source):
            self.events.extend(source)
            return len(source)
        if not isinstance(source, Iterable):
            raise TypeError(
                f"cannot replay {type(source).__name__}: "
                "expected ObsEvent, to_events(), or an iterable"
            )
        added = 0
        append = self.events.append
        for item in source:
            if isinstance(item, ObsEvent):
                append(item)
                added += 1
            else:
                added += self.replay(item)
        return added

    # -- analysis -------------------------------------------------------------
    def filter(
        self,
        layer: str | None = None,
        source: str | None = None,
        kind: str | None = None,
    ) -> list[ObsEvent]:
        return [
            e
            for e in self.events
            if (layer is None or e.layer == layer)
            and (source is None or e.source == source)
            and (kind is None or e.kind == kind)
        ]

    def counts_by(self, key: str = "layer") -> dict[str, int]:
        """Event counts grouped by ``layer``, ``source``, or ``kind``."""
        if key not in ("layer", "source", "kind"):
            raise ValueError(f"cannot group events by {key!r}")
        counts: dict[str, int] = {}
        for event in self.events:
            group = getattr(event, key)
            counts[group] = counts.get(group, 0) + 1
        return counts
