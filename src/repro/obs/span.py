"""Nested spans with wall + CPU time, produced by a :class:`Tracer`.

A span is one timed unit of work.  Spans nest: entering a span while
another is open links the child to the parent, so a traced end-to-end
run (workload -> engine -> service) comes out as a tree.  Wall time
(tracer clock, ``perf_counter``-based) and CPU time (``process_time``)
are measured with raw clock reads, so span costs line up with the
substrate perf harness numbers without per-span allocation overhead.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable


class EpochClock:
    """``perf_counter`` offsets from construction time.

    Timestamps start at ~0.0 when the runtime is created, which keeps
    them small, comparable across the tracer and the event log (both
    share one clock), and friendly to :class:`TelemetryStore` windows.
    """

    __slots__ = ("_epoch",)

    def __init__(self) -> None:
        self._epoch = time.perf_counter()

    def __call__(self) -> float:
        return time.perf_counter() - self._epoch


@dataclass(slots=True)
class Span:
    """One timed unit of work inside a trace tree."""

    name: str
    span_id: int
    parent_id: int | None = None
    layer: str = ""
    start: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = "open"  # "open" | "ok" | "error"
    error: str | None = None

    @property
    def end(self) -> float:
        return self.start + self.wall_seconds

    @property
    def finished(self) -> bool:
        return self.status != "open"


class _SpanContext:
    """Hand-rolled context manager: spans open on hot paths, and the
    generator machinery of ``@contextmanager`` costs real time there."""

    __slots__ = ("_tracer", "span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        span = self.span
        tracer = self._tracer
        tracer._stack.append(span)
        # Raw clock reads, not Stopwatch objects: spans open on hot paths
        # and two allocations per span are measurable.  Wall time runs on
        # the tracer's clock and ``start`` is the first wall reading, so
        # ``span.end`` lands exactly where the exit reading is taken —
        # events emitted inside the span (same clock) always fall within
        # [start, end].  The wall window is innermost (CPU read first on
        # enter, last on exit) so it never excludes body work.
        self._cpu0 = time.process_time()
        span.start = self._wall0 = tracer._clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        tracer = self._tracer
        span.wall_seconds = tracer._clock() - self._wall0
        span.cpu_seconds = time.process_time() - self._cpu0
        if exc_type is None:
            span.status = "ok"
        else:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        tracer._stack.pop()
        tracer.spans.append(span)
        return False  # exceptions propagate; the span still closed


class Tracer:
    """Produce nested spans; finished spans accumulate in ``spans``.

    ::

        tracer = Tracer()
        with tracer.span("optimize", layer="engine", template="T1") as sp:
            ...
            sp.attributes["passes"] = 3

    Exceptions propagate but the span still closes, flagged
    ``status="error"`` with the exception recorded — a crashed scenario
    leaves a complete trace.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or EpochClock()
        self.spans: list[Span] = []  # finished spans, completion order
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, layer: str = "", **attributes: object) -> _SpanContext:
        stack = self._stack
        parent = stack[-1] if stack else None
        # Positional construction: spans open on hot paths, and keyword
        # binding through the dataclass __init__ costs measurable time.
        # Unlabelled child spans inherit the enclosing layer.
        span = Span(
            name,
            next(self._ids),
            parent.span_id if parent else None,
            layer or (parent.layer if parent else ""),
            0.0,
            0.0,
            0.0,
            attributes,
        )
        return _SpanContext(self, span)

    # -- tree views -----------------------------------------------------------
    def span_tree(self) -> list[tuple[Span, list]]:
        """All spans as a ``(span, children)`` root forest, by start time.

        Still-open spans (e.g. the enclosing scenario span during a
        mid-run render) are included so the tree never loses its root.
        """
        every = self.spans + self._stack
        nodes: dict[int, tuple[Span, list]] = {
            s.span_id: (s, []) for s in every
        }
        roots: list[tuple[Span, list]] = []
        for span in sorted(every, key=lambda s: (s.start, s.span_id)):
            node = nodes[span.span_id]
            parent = (
                nodes.get(span.parent_id) if span.parent_id is not None else None
            )
            if parent is None:
                roots.append(node)
            else:
                parent[1].append(node)
        return roots

    def render_tree(self) -> str:
        """Indented one-line-per-span rendering of the trace forest."""
        lines: list[str] = []

        def _walk(node: tuple[Span, list], depth: int) -> None:
            span, children = node
            label = f"[{span.layer}] " if span.layer else ""
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in span.attributes.items())
                if span.attributes
                else ""
            )
            flag = f"  !! {span.error}" if span.status == "error" else ""
            timing = (
                "(open)"
                if span.status == "open"
                else f"{span.wall_seconds * 1e3:.2f}ms"
                f" (cpu {span.cpu_seconds * 1e3:.2f}ms)"
            )
            lines.append(f"{'  ' * depth}{label}{span.name}  {timing}{attrs}{flag}")
            for child in children:
                _walk(child, depth + 1)

        for root in self.span_tree():
            _walk(root, 0)
        return "\n".join(lines)
