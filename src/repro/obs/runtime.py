"""The one observability object components bind to.

:class:`ObservabilityRuntime` bundles a :class:`Tracer`, an
:class:`EventLog`, and a :class:`TelemetryStore` behind a shared
:class:`EpochClock`, so spans, live events, and exported metrics all
live on one timeline.  Components accept an optional runtime (``obs=``
keyword or :meth:`~repro.core.service.AutonomousService.bind`); passing
``None`` keeps them completely uninstrumented.
"""

from __future__ import annotations

from contextlib import AbstractContextManager

from repro.obs.events import EventLog, ObsEvent
from repro.obs.export import export_events, export_spans
from repro.obs.span import EpochClock, Span, Tracer
from repro.telemetry.query import Query
from repro.telemetry.schema import Metric
from repro.telemetry.store import TelemetryStore


class ObservabilityRuntime:
    """Tracer + event log + telemetry store with one clock.

    ::

        obs = ObservabilityRuntime()
        with obs.span("scenario", layer="cli"):
            run_everything(obs)
        obs.flush()                      # spans/events -> TelemetryStore
        print(obs.render())              # span tree + per-layer rollup
    """

    def __init__(self, store: TelemetryStore | None = None) -> None:
        self.clock = EpochClock()
        self.tracer = Tracer(clock=self.clock)
        self.events = EventLog(clock=self.clock)
        self.store = store if store is not None else TelemetryStore()
        self._flushed_spans = 0
        self._flushed_events = 0
        # Hot-path delegations bind straight to the target methods: the
        # class-level defs below keep the documented surface, these
        # instance attributes skip one Python call per span/replay.
        self.span = self.tracer.span
        self.replay = self.events.replay

    # -- recording ------------------------------------------------------------
    def span(
        self, name: str, layer: str = "", **attributes: object
    ) -> AbstractContextManager[Span]:
        return self.tracer.span(name, layer=layer, **attributes)

    def emit(
        self,
        layer: str,
        source: str,
        kind: str,
        value: float = 1.0,
        timestamp: float | None = None,
        **attributes: object,
    ) -> ObsEvent:
        current = self.tracer.current
        return self.events.emit(
            layer,
            source,
            kind,
            value=value,
            timestamp=timestamp,
            span_id=current.span_id if current else None,
            **attributes,
        )

    def replay(self, report: object) -> int:
        """Replay any ``to_events()``-bearing report into the event log."""
        return self.events.replay(report)

    # -- export ---------------------------------------------------------------
    def flush(self) -> int:
        """Export not-yet-exported spans/events to the store; returns points.

        Incremental: safe to call repeatedly mid-run.  Spans still open
        at flush time are picked up by a later flush.
        """
        spans = [s for s in self.tracer.spans[self._flushed_spans :] if s.finished]
        written = export_spans(spans, self.store)
        self._flushed_spans = len(self.tracer.spans)
        events = self.events.events[self._flushed_events :]
        written += export_events(events, self.store)
        self._flushed_events = len(self.events.events)
        return written

    def query(self) -> Query:
        """A fresh :class:`Query` over the runtime's store."""
        return Query(self.store)

    # -- rollups --------------------------------------------------------------
    def layer_rollup(self) -> dict[str, dict[str, float]]:
        """Per-layer span/event totals, served from the *store*.

        Reading back through the store (not the in-memory tracer) keeps
        the rollup honest: it only shows what a downstream consumer of
        the TelemetryStore would see.  Call :meth:`flush` first.
        """
        layers: set[str] = set()
        layers |= self.store.dimension_values(Metric.SPAN_SECONDS, "layer")
        layers |= self.store.dimension_values(Metric.EVENT_COUNT, "layer")
        rollup: dict[str, dict[str, float]] = {}
        for layer in sorted(layers):
            _, wall = self.store.series(
                Metric.SPAN_SECONDS, dimensions={"layer": layer}
            )
            _, cpu = self.store.series(
                Metric.SPAN_CPU_SECONDS, dimensions={"layer": layer}
            )
            _, events = self.store.series(
                Metric.EVENT_COUNT, dimensions={"layer": layer}
            )
            rollup[layer] = {
                "spans": int(wall.size),
                "wall_seconds": float(wall.sum()),
                "cpu_seconds": float(cpu.sum()),
                "events": int(events.size),
                "event_value": float(events.sum()),
            }
        return rollup

    def render(self) -> str:
        """Span tree plus the per-layer rollup table, as printable text."""
        lines = ["== span tree =="]
        tree = self.tracer.render_tree()
        lines.append(tree if tree else "(no spans)")
        lines.append("")
        lines.append("== per-layer rollup ==")
        rollup = self.layer_rollup()
        if not rollup:
            lines.append("(nothing exported; call flush() first)")
        else:
            lines.append(
                f"{'layer':<10} {'spans':>6} {'wall_s':>10} {'cpu_s':>10} {'events':>7}"
            )
            for layer, row in rollup.items():
                lines.append(
                    f"{layer or '-':<10} {row['spans']:>6d}"
                    f" {row['wall_seconds']:>10.4f} {row['cpu_seconds']:>10.4f}"
                    f" {row['events']:>7d}"
                )
        return "\n".join(lines)
