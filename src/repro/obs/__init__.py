"""Unified tracing + observability runtime (the paper's Direction 2).

Every layer of the reproduction — the DES infrastructure simulators, the
query engine, and the autonomous services — used to self-report through
incompatible ad-hoc shapes.  This package is the shared spine they now
report through:

- :mod:`repro.obs.span` — a :class:`Tracer` producing nested spans with
  wall *and* CPU time (measured with the existing
  :class:`~repro.telemetry.timing.Stopwatch`),
- :mod:`repro.obs.events` — an :class:`EventLog` of typed, layer-tagged
  :class:`ObsEvent` records; any report shape with a ``to_events()``
  method replays into it,
- :mod:`repro.obs.export` — exporters that sink spans/events into the
  :class:`~repro.telemetry.store.TelemetryStore` as standard metrics so
  the existing :class:`~repro.telemetry.query.Query` layer and counters
  work on them,
- :mod:`repro.obs.runtime` — :class:`ObservabilityRuntime`, the one
  object components bind to (``tracer + event log + store`` with a
  shared clock), plus per-layer rollups and a span-tree renderer.
"""

from repro.obs.events import EventLog, ObsEvent
from repro.obs.export import export_events, export_spans
from repro.obs.runtime import ObservabilityRuntime
from repro.obs.span import EpochClock, Span, Tracer

__all__ = [
    "EpochClock",
    "EventLog",
    "ObsEvent",
    "ObservabilityRuntime",
    "Span",
    "Tracer",
    "export_events",
    "export_spans",
]
