"""Lightweight wall-clock instrumentation: stopwatch + section profiler.

The substrate perf harness (``benchmarks/bench_perf_substrate.py``) and
any service that wants to *stay measured* use these instead of ad-hoc
``time.perf_counter()`` arithmetic.  Both are deliberately tiny: no
threads, no global registry — a :class:`Stopwatch` is a resumable timer
and a :class:`SectionProfiler` accumulates named sections into a report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable


class Stopwatch:
    """Resumable timer; also usable as a context manager.

    Times on ``perf_counter`` by default; pass another ``clock`` (e.g.
    ``time.process_time``) to measure CPU seconds with the same API —
    the tracer in :mod:`repro.obs` runs one of each per span.

    ::

        with Stopwatch() as watch:
            do_work()
        print(watch.elapsed)
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._started: float | None = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def elapsed(self) -> float:
        """Total seconds timed so far, including a running segment."""
        total = self._accumulated
        if self._started is not None:
            total += self._clock() - self._started
        return total

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch is already running")
        self._started = self._clock()
        return self

    def stop(self) -> float:
        """Pause the watch; returns total elapsed seconds."""
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        self._accumulated += self._clock() - self._started
        self._started = None
        return self._accumulated

    def reset(self) -> None:
        self._started = None
        self._accumulated = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class SectionStats:
    """Accumulated cost of one named section."""

    seconds: float = 0.0
    calls: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


class SectionProfiler:
    """Accumulate wall-clock time per named section.

    ::

        profiler = SectionProfiler()
        with profiler.section("ingest"):
            store.record_many(...)
        profiler.report()  # {"ingest": {"seconds": ..., "calls": 1, ...}}
    """

    def __init__(self) -> None:
        self.sections: dict[str, SectionStats] = {}

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            stats = self.sections.setdefault(name, SectionStats())
            stats.seconds += time.perf_counter() - start
            stats.calls += 1

    def seconds(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never entered)."""
        stats = self.sections.get(name)
        return stats.seconds if stats else 0.0

    def report(self) -> dict[str, dict[str, float]]:
        """JSON-friendly per-section totals, ordered by cost descending."""
        return {
            name: {
                "seconds": stats.seconds,
                "calls": stats.calls,
                "mean_seconds": stats.mean_seconds,
            }
            for name, stats in sorted(
                self.sections.items(), key=lambda kv: -kv[1].seconds
            )
        }

    def summary(self) -> str:
        """Human-readable one-line-per-section rendering of the report."""
        lines = []
        for name, row in self.report().items():
            lines.append(
                f"{name:<32} {row['seconds']:>10.4f}s"
                f"  x{row['calls']:<6d} {row['mean_seconds'] * 1e3:>10.4f} ms/call"
            )
        return "\n".join(lines)
