"""OS performance counter analysis helpers.

The AlgorithmStore's flagship example of function-level reuse is "time
series analysis of OS performance counter data" (Direction 1).  These
are those functions: summaries, saturation detection, and cross-counter
correlation over a :class:`~repro.telemetry.store.TelemetryStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.schema import Metric
from repro.telemetry.store import TelemetryStore


@dataclass
class CounterSummary:
    """Distributional summary of one counter series."""

    metric: Metric
    n_samples: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def headroom(self, limit: float) -> float:
        """Remaining fraction of ``limit`` at the p99 level."""
        if limit <= 0:
            raise ValueError("limit must be positive")
        return max(0.0, 1.0 - self.p99 / limit)


def counter_summary(
    store: TelemetryStore,
    metric: Metric,
    dimensions: dict[str, str] | None = None,
) -> CounterSummary:
    """Summarize a counter (raises on an empty series)."""
    _, values = store.series(metric, dimensions=dimensions)
    if values.size == 0:
        raise ValueError(f"no samples for {metric}")
    return CounterSummary(
        metric=metric,
        n_samples=int(values.size),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
    )


def detect_saturation(
    store: TelemetryStore,
    metric: Metric,
    limit: float,
    threshold: float = 0.9,
    min_consecutive: int = 3,
    dimensions: dict[str, str] | None = None,
) -> list[tuple[float, float]]:
    """Find intervals where the counter sat above ``threshold * limit``.

    Returns (start_time, end_time) pairs for runs of at least
    ``min_consecutive`` consecutive saturated samples — the hotspot
    episodes capacity reviews care about.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if min_consecutive < 1:
        raise ValueError("min_consecutive must be >= 1")
    times, values = store.series(metric, dimensions=dimensions)
    if times.size == 0:
        return []
    saturated = values >= threshold * limit
    episodes: list[tuple[float, float]] = []
    start = None
    count = 0
    for t, flag in zip(times, saturated):
        if flag:
            if start is None:
                start = t
            count += 1
            end = t
        else:
            if start is not None and count >= min_consecutive:
                episodes.append((float(start), float(end)))
            start, count = None, 0
    if start is not None and count >= min_consecutive:
        episodes.append((float(start), float(end)))
    return episodes


def correlate_counters(
    store: TelemetryStore,
    metric_a: Metric,
    metric_b: Metric,
    bin_width: float,
    dimensions: dict[str, str] | None = None,
) -> float:
    """Pearson correlation of two counters on a shared time grid.

    Series are bin-averaged onto aligned bins first; only bins present in
    both series contribute.  This is the causal-screening step behind
    KEA-style behaviour modelling ("domain knowledge is crucial to
    comprehend the causal links among different components").
    """
    ta, va = store.aggregate(metric_a, bin_width, "mean", dimensions=dimensions)
    tb, vb = store.aggregate(metric_b, bin_width, "mean", dimensions=dimensions)
    if ta.size == 0 or tb.size == 0:
        raise ValueError("one of the counters has no samples")
    common = sorted(set(ta.tolist()) & set(tb.tolist()))
    if len(common) < 3:
        raise ValueError("fewer than 3 aligned bins; widen the range")
    index_a = {t: i for i, t in enumerate(ta)}
    index_b = {t: i for i, t in enumerate(tb)}
    a = np.array([va[index_a[t]] for t in common])
    b = np.array([vb[index_b[t]] for t in common])
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
