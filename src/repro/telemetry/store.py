"""Columnar in-memory telemetry store with dimensional queries.

Points live in per-metric numpy columns (timestamps, values, interned
dimension-set ids) that grow append-mostly with amortized doubling.
Ingestion never shifts data: out-of-order appends just mark the column
dirty, and the sort happens lazily — once, stably — on the next read.
Range scans binary-search the contiguous timestamp array and dimension
filters resolve to a handful of interned ids instead of per-point tuple
scans, so bulk ingestion and grouped queries are vectorized end to end
while the public query semantics match the original list-based store
point for point.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.telemetry.schema import Metric, MetricAliasRegistry

#: Interned per-dimension-set lookup dicts, shared by every MetricPoint
#: carrying the same frozen dimensions tuple.  The universe of distinct
#: dimension sets (machines x SKUs x regions, ...) is tiny next to the
#: point count, so this stays small while making ``dimension`` a dict
#: lookup instead of a linear tuple scan.
_DIM_LOOKUPS: dict[tuple[tuple[str, str], ...], dict[str, str]] = {}


def _dimension_lookup(dimensions: tuple[tuple[str, str], ...]) -> dict[str, str]:
    lookup = _DIM_LOOKUPS.get(dimensions)
    if lookup is None:
        lookup = dict(dimensions)
        _DIM_LOOKUPS[dimensions] = lookup
    return lookup


@dataclass(frozen=True)
class MetricPoint:
    """A single telemetry observation."""

    metric: Metric
    timestamp: float
    value: float
    dimensions: tuple[tuple[str, str], ...] = ()

    def dimension(self, key: str) -> str | None:
        return _dimension_lookup(self.dimensions).get(key)


def _freeze_dimensions(dimensions: Mapping[str, str] | None) -> tuple:
    if not dimensions:
        return ()
    return tuple(sorted(dimensions.items()))


class _Column:
    """Append-mostly columnar storage for one metric."""

    __slots__ = ("_ts", "_vs", "_dims", "size", "_sorted")

    _INITIAL_CAPACITY = 256

    def __init__(self) -> None:
        self._ts = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._vs = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._dims = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self.size = 0
        self._sorted = True

    def _reserve(self, needed: int) -> None:
        capacity = self._ts.size
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_ts", "_vs", "_dims"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def append(self, timestamp: float, value: float, dim_id: int) -> None:
        self._reserve(self.size + 1)
        if self._sorted and self.size and timestamp < self._ts[self.size - 1]:
            self._sorted = False
        self._ts[self.size] = timestamp
        self._vs[self.size] = value
        self._dims[self.size] = dim_id
        self.size += 1

    def extend(
        self, timestamps: np.ndarray, values: np.ndarray, dim_ids: np.ndarray
    ) -> None:
        n = timestamps.size
        if n == 0:
            return
        self._reserve(self.size + n)
        end = self.size + n
        self._ts[self.size : end] = timestamps
        self._vs[self.size : end] = values
        self._dims[self.size : end] = dim_ids
        if self._sorted and (
            (self.size and timestamps[0] < self._ts[self.size - 1])
            or (n > 1 and np.any(np.diff(timestamps) < 0))
        ):
            self._sorted = False
        self.size = end

    def ensure_sorted(self) -> None:
        """Lazily time-order the column.

        The sort is stable, so points with equal timestamps keep their
        ingestion order — the same tie-break the old ``bisect_right``
        insertion produced.
        """
        if self._sorted:
            return
        n = self.size
        order = np.argsort(self._ts[:n], kind="stable")
        self._ts[:n] = self._ts[:n][order]
        self._vs[:n] = self._vs[:n][order]
        self._dims[:n] = self._dims[:n][order]
        self._sorted = True

    @property
    def timestamps(self) -> np.ndarray:
        return self._ts[: self.size]

    @property
    def values(self) -> np.ndarray:
        return self._vs[: self.size]

    @property
    def dim_ids(self) -> np.ndarray:
        return self._dims[: self.size]


class TelemetryStore:
    """Miniature Kusto: per-metric columnar time series.

    Columns are kept (lazily) sorted by timestamp per metric so range
    scans are binary-search bounded.  Dimensions are arbitrary string
    key/values (machine id, SKU, region, ...) interned to integer ids at
    ingestion time.
    """

    def __init__(self, aliases: MetricAliasRegistry | None = None) -> None:
        self._columns: dict[Metric, _Column] = {}
        self._dim_ids: dict[tuple, int] = {(): 0}
        self._dim_tuples: list[tuple] = [()]
        self._metric_dim_ids: dict[Metric, set[int]] = {}
        self.aliases = aliases or MetricAliasRegistry.standard()

    def __len__(self) -> int:
        return sum(column.size for column in self._columns.values())

    def _resolve(self, metric: Metric | str) -> Metric:
        if isinstance(metric, str):
            return self.aliases.resolve(metric)
        return metric

    def _column(self, metric: Metric) -> _Column:
        column = self._columns.get(metric)
        if column is None:
            column = self._columns[metric] = _Column()
        return column

    def _intern(self, dimensions: tuple) -> int:
        dim_id = self._dim_ids.get(dimensions)
        if dim_id is None:
            dim_id = len(self._dim_tuples)
            self._dim_ids[dimensions] = dim_id
            self._dim_tuples.append(dimensions)
            _dimension_lookup(dimensions)
        return dim_id

    # -- ingestion ------------------------------------------------------------
    def record(
        self,
        metric: Metric | str,
        timestamp: float,
        value: float,
        dimensions: dict[str, str] | None = None,
    ) -> MetricPoint:
        """Append one observation; raw string names resolve through aliases."""
        metric = self._resolve(metric)
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"non-finite telemetry value for {metric}")
        frozen = _freeze_dimensions(dimensions)
        dim_id = self._intern(frozen)
        self._column(metric).append(float(timestamp), value, dim_id)
        self._metric_dim_ids.setdefault(metric, set()).add(dim_id)
        return MetricPoint(
            metric=metric,
            timestamp=float(timestamp),
            value=value,
            dimensions=frozen,
        )

    def record_series(
        self,
        metric: Metric | str,
        timestamps: np.ndarray,
        values: np.ndarray,
        dimensions: dict[str, str] | None = None,
    ) -> int:
        """Bulk-append a whole series (timestamps must be sorted).

        One vectorized column append; returns the number of points added.
        """
        ts = np.asarray(timestamps, dtype=float)
        vs = np.asarray(values, dtype=float)
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must have the same shape")
        if ts.size and np.any(np.diff(ts) < 0):
            raise ValueError("timestamps must be non-decreasing")
        return self._record_batch(metric, ts, vs, dimensions)

    def record_many(
        self,
        metric: Metric | str,
        timestamps: np.ndarray,
        values: np.ndarray,
        dimensions: dict[str, str] | Sequence[dict[str, str] | None] | None = None,
    ) -> int:
        """Bulk-append observations in any timestamp order.

        ``dimensions`` is either one dict applied to every point or a
        sequence of per-point dicts (``None`` entries mean no dimensions).
        Ordering is repaired lazily on the next read, so interleaved
        streams from many emitters batch at full speed.  Returns the
        number of points added.
        """
        ts = np.asarray(timestamps, dtype=float)
        vs = np.asarray(values, dtype=float)
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must have the same shape")
        return self._record_batch(metric, ts, vs, dimensions)

    def _record_batch(
        self,
        metric: Metric | str,
        ts: np.ndarray,
        vs: np.ndarray,
        dimensions: dict[str, str] | Sequence[dict[str, str] | None] | None,
    ) -> int:
        metric = self._resolve(metric)
        if ts.size == 0:
            return 0
        if not np.all(np.isfinite(vs)):
            raise ValueError(f"non-finite telemetry value for {metric}")
        used = self._metric_dim_ids.setdefault(metric, set())
        if dimensions is None or isinstance(dimensions, Mapping):
            dim_id = self._intern(_freeze_dimensions(dimensions))
            dim_ids = np.full(ts.size, dim_id, dtype=np.int64)
            used.add(dim_id)
        else:
            if len(dimensions) != ts.size:
                raise ValueError(
                    "per-point dimensions must match the number of points"
                )
            dim_ids = np.empty(ts.size, dtype=np.int64)
            # Identity memo: emitters typically pass the same dict object
            # for every point of one machine/SKU, so freezing + interning
            # happens once per distinct dict, not once per point.  Keyed
            # by id() only within this call, while the dicts are alive.
            memo: dict[int, int] = {}
            for i, dims in enumerate(dimensions):
                key = id(dims) if dims else -1
                dim_id = memo.get(key)
                if dim_id is None:
                    dim_id = self._intern(_freeze_dimensions(dims))
                    memo[key] = dim_id
                dim_ids[i] = dim_id
            used.update(memo.values())
        self._column(metric).extend(ts, vs, dim_ids)
        return int(ts.size)

    # -- querying ---------------------------------------------------------------
    def _window(
        self, metric: Metric, start: float | None, end: float | None
    ) -> tuple[_Column | None, int, int]:
        column = self._columns.get(metric)
        if column is None or column.size == 0:
            return None, 0, 0
        column.ensure_sorted()
        stamps = column.timestamps
        lo = 0 if start is None else int(np.searchsorted(stamps, start, side="left"))
        hi = (
            column.size
            if end is None
            else int(np.searchsorted(stamps, end, side="right"))
        )
        return column, lo, hi

    def _matching_dim_ids(
        self, metric: Metric, dimensions: dict[str, str]
    ) -> np.ndarray:
        """Interned ids whose dimension set matches every filter key."""
        wanted = dimensions.items()
        return np.array(
            [
                dim_id
                for dim_id in self._metric_dim_ids.get(metric, ())
                if all(
                    _dimension_lookup(self._dim_tuples[dim_id]).get(k) == v
                    for k, v in wanted
                )
            ],
            dtype=np.int64,
        )

    def points(
        self,
        metric: Metric,
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> list[MetricPoint]:
        """Time-range scan with optional exact-match dimension filters."""
        column, lo, hi = self._window(metric, start, end)
        if column is None or lo >= hi:
            return []
        ts = column.timestamps[lo:hi]
        vs = column.values[lo:hi]
        dim_ids = column.dim_ids[lo:hi]
        if dimensions:
            mask = np.isin(dim_ids, self._matching_dim_ids(metric, dimensions))
            ts, vs, dim_ids = ts[mask], vs[mask], dim_ids[mask]
        tuples = self._dim_tuples
        return [
            MetricPoint(
                metric=metric,
                timestamp=float(t),
                value=float(v),
                dimensions=tuples[d],
            )
            for t, v, d in zip(ts, vs, dim_ids)
        ]

    def series(
        self,
        metric: Metric,
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`points` but returns (timestamps, values) arrays.

        Served straight from the columns — no point objects are built.
        """
        column, lo, hi = self._window(metric, start, end)
        if column is None or lo >= hi:
            return np.array([]), np.array([])
        ts = column.timestamps[lo:hi]
        vs = column.values[lo:hi]
        if dimensions:
            mask = np.isin(
                column.dim_ids[lo:hi],
                self._matching_dim_ids(metric, dimensions),
            )
            return ts[mask], vs[mask]
        # Copies: later ingestion may lazily re-sort the backing buffers.
        return ts.copy(), vs.copy()

    def aggregate(
        self,
        metric: Metric,
        bin_width: float,
        agg: str = "mean",
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Kusto ``summarize ... by bin(timestamp, width)`` equivalent.

        Returns (bin_start_times, aggregated_values); empty bins are
        dropped.  ``agg`` is one of mean/sum/max/min/count/p95.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if agg not in ("mean", "sum", "max", "min", "count", "p95"):
            raise ValueError(f"unknown aggregation {agg!r}")
        ts, vs = self.series(metric, start, end, dimensions)
        if ts.size == 0:
            return np.array([]), np.array([])
        bins = np.floor(ts / bin_width) * bin_width
        # ``ts`` is ascending, so bins are non-decreasing: segment
        # boundaries come from one diff, aggregation from one reduceat.
        starts = np.r_[0, np.flatnonzero(np.diff(bins)) + 1]
        out_t = bins[starts]
        counts = np.diff(np.r_[starts, bins.size]).astype(float)
        if agg == "count":
            out_v = counts
        elif agg == "sum":
            out_v = np.add.reduceat(vs, starts)
        elif agg == "mean":
            out_v = np.add.reduceat(vs, starts) / counts
        elif agg == "max":
            out_v = np.maximum.reduceat(vs, starts)
        elif agg == "min":
            out_v = np.minimum.reduceat(vs, starts)
        else:  # p95
            bounds = np.r_[starts, bins.size]
            out_v = np.array(
                [
                    float(np.percentile(vs[i:j], 95))
                    for i, j in zip(bounds[:-1], bounds[1:])
                ]
            )
        return out_t, out_v.astype(float)

    def dimension_values(self, metric: Metric, key: str) -> set[str]:
        """Distinct values observed for a dimension key of a metric."""
        out = set()
        for dim_id in self._metric_dim_ids.get(metric, ()):
            value = _dimension_lookup(self._dim_tuples[dim_id]).get(key)
            if value is not None:
                out.add(value)
        return out
