"""Append-only in-memory telemetry store with dimensional queries."""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.schema import Metric, MetricAliasRegistry


@dataclass(frozen=True)
class MetricPoint:
    """A single telemetry observation."""

    metric: Metric
    timestamp: float
    value: float
    dimensions: tuple[tuple[str, str], ...] = ()

    def dimension(self, key: str) -> str | None:
        for k, v in self.dimensions:
            if k == key:
                return v
        return None


def _freeze_dimensions(dimensions: dict[str, str] | None) -> tuple:
    if not dimensions:
        return ()
    return tuple(sorted(dimensions.items()))


class TelemetryStore:
    """Miniature Kusto: per-metric time-ordered point lists.

    Points are kept sorted by timestamp per metric so range scans are
    binary-search bounded.  Dimensions are arbitrary string key/values
    (machine id, SKU, region, ...).
    """

    def __init__(self, aliases: MetricAliasRegistry | None = None) -> None:
        self._points: dict[Metric, list[MetricPoint]] = defaultdict(list)
        self._timestamps: dict[Metric, list[float]] = defaultdict(list)
        self.aliases = aliases or MetricAliasRegistry.standard()

    def __len__(self) -> int:
        return sum(len(points) for points in self._points.values())

    # -- ingestion ------------------------------------------------------------
    def record(
        self,
        metric: Metric | str,
        timestamp: float,
        value: float,
        dimensions: dict[str, str] | None = None,
    ) -> MetricPoint:
        """Append one observation; raw string names resolve through aliases."""
        if isinstance(metric, str):
            metric = self.aliases.resolve(metric)
        if not np.isfinite(value):
            raise ValueError(f"non-finite telemetry value for {metric}")
        point = MetricPoint(
            metric=metric,
            timestamp=float(timestamp),
            value=float(value),
            dimensions=_freeze_dimensions(dimensions),
        )
        stamps = self._timestamps[metric]
        idx = bisect.bisect_right(stamps, point.timestamp)
        stamps.insert(idx, point.timestamp)
        self._points[metric].insert(idx, point)
        return point

    def record_series(
        self,
        metric: Metric | str,
        timestamps: np.ndarray,
        values: np.ndarray,
        dimensions: dict[str, str] | None = None,
    ) -> None:
        """Bulk-append a whole series (timestamps must be sorted)."""
        ts = np.asarray(timestamps, dtype=float)
        vs = np.asarray(values, dtype=float)
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must have the same shape")
        if ts.size and np.any(np.diff(ts) < 0):
            raise ValueError("timestamps must be non-decreasing")
        for t, v in zip(ts, vs):
            self.record(metric, t, v, dimensions)

    # -- querying ---------------------------------------------------------------
    def points(
        self,
        metric: Metric,
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> list[MetricPoint]:
        """Time-range scan with optional exact-match dimension filters."""
        stamps = self._timestamps.get(metric, [])
        all_points = self._points.get(metric, [])
        lo = 0 if start is None else bisect.bisect_left(stamps, start)
        hi = len(stamps) if end is None else bisect.bisect_right(stamps, end)
        selected = all_points[lo:hi]
        if dimensions:
            wanted = dimensions.items()
            selected = [
                p
                for p in selected
                if all(p.dimension(k) == v for k, v in wanted)
            ]
        return selected

    def series(
        self,
        metric: Metric,
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`points` but returns (timestamps, values) arrays."""
        pts = self.points(metric, start, end, dimensions)
        if not pts:
            return np.array([]), np.array([])
        return (
            np.array([p.timestamp for p in pts]),
            np.array([p.value for p in pts]),
        )

    def aggregate(
        self,
        metric: Metric,
        bin_width: float,
        agg: str = "mean",
        start: float | None = None,
        end: float | None = None,
        dimensions: dict[str, str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Kusto ``summarize ... by bin(timestamp, width)`` equivalent.

        Returns (bin_start_times, aggregated_values); empty bins are
        dropped.  ``agg`` is one of mean/sum/max/min/count/p95.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        aggregators = {
            "mean": np.mean,
            "sum": np.sum,
            "max": np.max,
            "min": np.min,
            "count": len,
            "p95": lambda v: float(np.percentile(v, 95)),
        }
        if agg not in aggregators:
            raise ValueError(f"unknown aggregation {agg!r}")
        ts, vs = self.series(metric, start, end, dimensions)
        if ts.size == 0:
            return np.array([]), np.array([])
        bins = np.floor(ts / bin_width) * bin_width
        out_t, out_v = [], []
        fn = aggregators[agg]
        for b in np.unique(bins):
            mask = bins == b
            out_t.append(b)
            out_v.append(float(fn(vs[mask])))
        return np.array(out_t), np.array(out_v)

    def dimension_values(self, metric: Metric, key: str) -> set[str]:
        """Distinct values observed for a dimension key of a metric."""
        return {
            value
            for p in self._points.get(metric, [])
            if (value := p.dimension(key)) is not None
        }
