"""Telemetry substrate: standardized metric schema plus an in-memory store.

The paper's Direction 2 calls for telemetry standardization across
platforms and services (OpenTelemetry-style), including *semantic*
normalization — "CPU utilization metrics on Windows and Linux VMs possess
the same meaning even though they may have different names".  This
subpackage provides:

- :mod:`repro.telemetry.schema`: semantic metric names with per-platform
  alias resolution,
- :mod:`repro.telemetry.store`: an append-only in-memory metric store with
  dimensional filtering and time-bin aggregation (a miniature Kusto),
- :mod:`repro.telemetry.query`: a small fluent query layer over the store,
- :mod:`repro.telemetry.timing`: stopwatch + section profiler, so hot
  paths stay measured (the substrate perf harness builds on these).
"""

from repro.telemetry.counters import (
    CounterSummary,
    correlate_counters,
    counter_summary,
    detect_saturation,
)
from repro.telemetry.query import Query
from repro.telemetry.schema import Metric, MetricAliasRegistry, STANDARD_ALIASES
from repro.telemetry.store import MetricPoint, TelemetryStore
from repro.telemetry.timing import SectionProfiler, SectionStats, Stopwatch

__all__ = [
    "Metric",
    "MetricAliasRegistry",
    "STANDARD_ALIASES",
    "MetricPoint",
    "TelemetryStore",
    "Query",
    "CounterSummary",
    "counter_summary",
    "detect_saturation",
    "correlate_counters",
    "Stopwatch",
    "SectionProfiler",
    "SectionStats",
]
