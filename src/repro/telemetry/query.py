"""A small fluent query layer over :class:`~repro.telemetry.store.TelemetryStore`.

Reads like a Kusto pipeline::

    Query(store).metric(Metric.CPU_UTILIZATION)
        .where(machine="m-03")
        .between(0, 3600)
        .summarize("mean", bin_width=300)
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.schema import Metric
from repro.telemetry.store import MetricPoint, TelemetryStore


class Query:
    """Immutable-ish builder: each call returns self after recording a clause."""

    def __init__(self, store: TelemetryStore) -> None:
        self._store = store
        self._metric: Metric | None = None
        self._dimensions: dict[str, str] = {}
        self._start: float | None = None
        self._end: float | None = None

    def metric(self, metric: Metric | str) -> "Query":
        if isinstance(metric, str):
            metric = self._store.aliases.resolve(metric)
        self._metric = metric
        return self

    def where(self, **dimensions: str) -> "Query":
        self._dimensions.update(dimensions)
        return self

    def between(self, start: float, end: float) -> "Query":
        if end < start:
            raise ValueError("end must be >= start")
        self._start, self._end = start, end
        return self

    def _require_metric(self) -> Metric:
        if self._metric is None:
            raise ValueError("call .metric(...) before executing the query")
        return self._metric

    # -- terminals --------------------------------------------------------------
    def points(self) -> list[MetricPoint]:
        return self._store.points(
            self._require_metric(), self._start, self._end, self._dimensions
        )

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        return self._store.series(
            self._require_metric(), self._start, self._end, self._dimensions
        )

    def summarize(self, agg: str, bin_width: float) -> tuple[np.ndarray, np.ndarray]:
        return self._store.aggregate(
            self._require_metric(),
            bin_width,
            agg,
            self._start,
            self._end,
            self._dimensions,
        )

    def count(self) -> int:
        return len(self.points())
