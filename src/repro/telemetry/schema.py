"""Standardized semantic metric names with platform alias resolution."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Metric(enum.Enum):
    """Semantic metric names shared across every service in the repo."""

    CPU_UTILIZATION = "cpu.utilization"
    MEMORY_UTILIZATION = "memory.utilization"
    DISK_UTILIZATION = "disk.utilization"
    TEMP_STORAGE_BYTES = "storage.temp.bytes"
    RUNNING_CONTAINERS = "containers.running"
    TASK_EXECUTION_SECONDS = "task.execution.seconds"
    QUEUE_LENGTH = "queue.length"
    REQUEST_LATENCY_SECONDS = "request.latency.seconds"
    THROUGHPUT_OPS = "throughput.ops"
    ACTIVE_SESSIONS = "sessions.active"
    JOB_LATENCY_SECONDS = "job.latency.seconds"
    STAGE_OUTPUT_BYTES = "stage.output.bytes"
    COST_DOLLARS = "cost.dollars"
    # Observability runtime (repro.obs): spans and typed events exported
    # into the store so the standard Query layer works on traces too.
    SPAN_SECONDS = "obs.span.seconds"
    SPAN_CPU_SECONDS = "obs.span.cpu.seconds"
    EVENT_COUNT = "obs.events.count"


#: Default platform-specific aliases (Direction 2: a Windows performance
#: counter and a Linux cgroup metric that mean the same thing resolve to
#: the same semantic :class:`Metric`).
STANDARD_ALIASES: dict[str, Metric] = {
    r"\Processor(_Total)\% Processor Time": Metric.CPU_UTILIZATION,
    "node_cpu_seconds_total": Metric.CPU_UTILIZATION,
    "cpu.percent": Metric.CPU_UTILIZATION,
    r"\Memory\% Committed Bytes In Use": Metric.MEMORY_UTILIZATION,
    "node_memory_utilization": Metric.MEMORY_UTILIZATION,
    "mem.percent": Metric.MEMORY_UTILIZATION,
    r"\LogicalDisk(_Total)\% Disk Time": Metric.DISK_UTILIZATION,
    "node_disk_utilization": Metric.DISK_UTILIZATION,
    "container.count": Metric.RUNNING_CONTAINERS,
    "yarn.containers.running": Metric.RUNNING_CONTAINERS,
    "otel.span.duration": Metric.SPAN_SECONDS,
    "otel.span.cpu_time": Metric.SPAN_CPU_SECONDS,
    "otel.events": Metric.EVENT_COUNT,
}


@dataclass
class MetricAliasRegistry:
    """Resolves raw, platform-specific metric names to semantic names.

    Services ingest telemetry under whatever name the emitting platform
    uses; the registry is how the shared analysis code stays
    platform-agnostic.
    """

    aliases: dict[str, Metric]

    @classmethod
    def standard(cls) -> "MetricAliasRegistry":
        return cls(aliases=dict(STANDARD_ALIASES))

    def resolve(self, raw_name: str) -> Metric:
        """Resolve a raw name; exact semantic values also resolve to themselves."""
        if raw_name in self.aliases:
            return self.aliases[raw_name]
        for metric in Metric:
            if metric.value == raw_name:
                return metric
        raise KeyError(f"unknown metric name: {raw_name!r}")

    def add_alias(self, raw_name: str, metric: Metric) -> None:
        existing = self.aliases.get(raw_name)
        if existing is not None and existing is not metric:
            raise ValueError(
                f"alias {raw_name!r} already maps to {existing}, not {metric}"
            )
        self.aliases[raw_name] = metric
