"""Shared-memory data plane: publish shards once, attach everywhere.

The old transport pickled full object shards into every pool task, so
each dispatch paid O(data) serialization on the parent *and* O(data)
deserialization per worker — the dominant cost the honest bench exposed.
This module replaces that with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

- :class:`ShmArray` — a numpy array (plain or structured) published
  once into a named segment; workers receive only the tiny picklable
  :class:`ShmHandle` and :func:`attach` a **read-only, zero-copy** view;
- :class:`BytesArena` — many byte blobs (e.g. per-shard pickles) packed
  into one segment with an offsets table; a worker extracts exactly its
  own blob with :func:`arena_blob`, never touching sibling shards;
- a per-process **attachment cache** — a worker serving many tasks of
  the same epoch maps each segment once, not once per task;
- **lifecycle safety** — every publication is registered for atexit
  cleanup and :func:`close_all`; ``close()`` is idempotent.  Publishers
  must keep the publication alive until all dispatches against it have
  returned (attach-by-name fails after unlink).

Workers attach with resource-tracker registration suppressed (via
``track=False`` on Python >= 3.13, or the standard unregister shim
before that): the *publisher* owns unlinking, and letting every
attaching process register the segment double-frees it at interpreter
shutdown.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Attachment-cache capacity per process; old maps are dropped beyond it.
ATTACH_CACHE_LIMIT = 64


@dataclass(frozen=True)
class ShmHandle:
    """Picklable coordinates of one published array (bytes stay behind)."""

    name: str
    descr: object  # numpy dtype description (handles structured dtypes)
    shape: tuple[int, ...]


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable coordinates of a packed blob arena."""

    data: ShmHandle
    offsets: tuple[int, ...]

    @property
    def n_blobs(self) -> int:
        return len(self.offsets) - 1


# -- publisher side ------------------------------------------------------------
_LIVE: dict[int, "ShmArray"] = {}


class ShmArray:
    """One numpy array published into shared memory (publisher side)."""

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        if array.nbytes:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=self._shm.buf
            )
            view[...] = array
            del view  # drop the buffer reference before any later close()
        self.handle = ShmHandle(
            name=self._shm.name,
            descr=np.lib.format.dtype_to_descr(array.dtype),
            shape=tuple(array.shape),
        )
        self.nbytes = array.nbytes
        self._closed = False
        _LIVE[id(self)] = self

    def close(self) -> None:
        """Unlink and release the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _LIVE.pop(id(self), None)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass

    def __enter__(self) -> "ShmArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BytesArena:
    """Byte blobs packed into one published segment (publisher side)."""

    def __init__(self, blobs: list[bytes]) -> None:
        offsets = [0]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        data = np.empty(offsets[-1], dtype=np.uint8)
        for blob, start in zip(blobs, offsets):
            if blob:
                data[start : start + len(blob)] = np.frombuffer(
                    blob, dtype=np.uint8
                )
        self._array = ShmArray(data)
        self.handle = ArenaHandle(
            data=self._array.handle, offsets=tuple(offsets)
        )
        self.nbytes = self._array.nbytes

    def close(self) -> None:
        self._array.close()

    def __enter__(self) -> "BytesArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def close_all() -> int:
    """Unlink every live publication of this process; returns the count."""
    live = list(_LIVE.values())
    for publication in live:
        publication.close()
    return len(live)


atexit.register(close_all)


# -- worker side ---------------------------------------------------------------
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach by name without registering with the resource tracker."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach(handle: ShmHandle) -> np.ndarray:
    """Read-only zero-copy view of a published array (cached per process)."""
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    if len(_ATTACHED) >= ATTACH_CACHE_LIMIT:
        detach_all()
    segment = _open_untracked(handle.name)
    array = np.ndarray(
        handle.shape,
        dtype=np.lib.format.descr_to_dtype(handle.descr),
        buffer=segment.buf,
    )
    array.setflags(write=False)
    _ATTACHED[handle.name] = (segment, array)
    return array


def arena_blob(handle: ArenaHandle, index: int) -> bytes:
    """Extract one blob from a published arena (copies only that blob)."""
    if not 0 <= index < handle.n_blobs:
        raise IndexError(f"arena has {handle.n_blobs} blobs, asked for {index}")
    data = attach(handle.data)
    start, stop = handle.offsets[index], handle.offsets[index + 1]
    return data[start:stop].tobytes()


def detach_all() -> int:
    """Drop this process's attachment cache; returns segments dropped."""
    released = 0
    for name in list(_ATTACHED):
        segment, array = _ATTACHED.pop(name)
        del array
        try:
            segment.close()
        except BufferError:  # a caller still holds a view; unmap at exit
            pass
        released += 1
    return released
