"""Granularity autotuning: when is a batch worth a process pool?

Fan-out only pays when the work shipped to each worker dwarfs the cost
of shipping it.  The old heuristic — "parallel whenever ``workers > 1``
and there is more than one item" — loses badly on small or cheap
batches: dispatch overhead (task pickling, queue round-trips) eats the
win, and the honest bench showed 0.21–0.23x *slowdowns*.

:class:`GranularityTuner` replaces that with a measured cost model:

- **per-item work** — every serial run of a function updates an EWMA of
  its per-item seconds (keyed by qualified name, so different worker
  functions learn independently);
- **pool overhead** — every parallel run whose per-item cost is known
  updates an EWMA of the residual dispatch overhead (wall time minus
  the ideal ``n * item_seconds / workers``);
- **decision** — :meth:`plan` compares predicted serial time against
  predicted parallel time and falls back to serial when the batch is
  too small to amortize the overhead.  A function never seen serially
  gets one optimistic parallel run ("explore") — the caller asked for
  workers, and the measurement it produces trains the model.

The tuner also owns the **chunk floor**: chunks are sized so each one
carries at least :attr:`target_chunk_seconds` of estimated work, which
keeps tiny batches from degenerating into one-item-per-task dispatch
(the old ``chunksize=0 -> 1`` path).

Decisions never change *results* — the substrate's bit-identical
serial/parallel contract makes serial fallback always safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

#: Warm-pool dispatch overhead assumed before any measurement (seconds).
DEFAULT_WARM_OVERHEAD_SECONDS = 2e-3
#: Target per-chunk duration: chunks are floored to carry this much work.
DEFAULT_TARGET_CHUNK_SECONDS = 5e-3
#: EWMA weight for fresh observations.
DEFAULT_ALPHA = 0.4
#: Bounds keeping a noisy residual from poisoning the overhead estimate.
_OVERHEAD_BOUNDS = (1e-4, 1.0)
#: Upper bound on the chunk floor (guards against absurd estimates).
_MAX_CHUNK_FLOOR = 4096


@dataclass
class FnProfile:
    """What the tuner has learned about one worker function."""

    serial_item_seconds: float | None = None
    serial_calls: int = 0
    parallel_calls: int = 0


@dataclass(frozen=True)
class DispatchPlan:
    """One dispatch decision: route and chunk size, with its rationale."""

    parallel: bool
    chunksize: int
    reason: str


class GranularityTuner:
    """Online cost model deciding serial vs pool per (function, batch)."""

    def __init__(
        self,
        warm_overhead_seconds: float = DEFAULT_WARM_OVERHEAD_SECONDS,
        target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
        alpha: float = DEFAULT_ALPHA,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.warm_overhead_seconds = float(warm_overhead_seconds)
        self.target_chunk_seconds = float(target_chunk_seconds)
        self.alpha = float(alpha)
        self._profiles: dict[str, FnProfile] = {}

    # -- identity --------------------------------------------------------------
    @staticmethod
    def key(fn: Callable) -> str:
        module = getattr(fn, "__module__", None) or "?"
        name = getattr(fn, "__qualname__", None) or repr(fn)
        return f"{module}.{name}"

    def profile(self, fn: Callable) -> FnProfile:
        return self._profiles.setdefault(self.key(fn), FnProfile())

    # -- observations ----------------------------------------------------------
    def _ewma(self, old: float | None, fresh: float) -> float:
        if old is None:
            return fresh
        return self.alpha * fresh + (1.0 - self.alpha) * old

    def note_serial(self, fn: Callable, n_items: int, seconds: float) -> None:
        """Record one serial run; trains the per-item cost estimate."""
        if n_items <= 0 or seconds < 0.0:
            return
        prof = self.profile(fn)
        prof.serial_item_seconds = self._ewma(
            prof.serial_item_seconds, seconds / n_items
        )
        prof.serial_calls += 1

    def note_parallel(
        self,
        fn: Callable,
        n_items: int,
        workers: int,
        seconds: float,
        cold: bool = False,
    ) -> None:
        """Record one pool run; trains the dispatch-overhead estimate.

        Cold runs (the dispatch that paid pool spawn) are counted but
        never train the *warm* overhead — spawn is a one-time cost the
        persistent pool amortizes away, not a per-dispatch tax.
        """
        if n_items <= 0 or workers <= 0:
            return
        prof = self.profile(fn)
        prof.parallel_calls += 1
        if cold or prof.serial_item_seconds is None:
            return
        ideal = n_items * prof.serial_item_seconds / workers
        residual = seconds - ideal
        lo, hi = _OVERHEAD_BOUNDS
        if residual > 0.0:
            self.warm_overhead_seconds = min(
                hi, max(lo, self._ewma(self.warm_overhead_seconds, residual))
            )

    # -- decisions -------------------------------------------------------------
    def chunk_floor(self, fn: Callable) -> int:
        """Minimum items per chunk so a chunk carries real work.

        ``ceil(target_chunk_seconds / item_seconds)`` once the item cost
        is known; 1 (no information, no constraint) before that.
        """
        per_item = self.profile(fn).serial_item_seconds
        if per_item is None or per_item <= 0.0:
            return 1
        return max(
            1, min(_MAX_CHUNK_FLOOR, math.ceil(self.target_chunk_seconds / per_item))
        )

    def plan(self, fn: Callable, n_items: int, workers: int) -> DispatchPlan:
        """Decide the route for one batch.

        Serial when the width or batch is degenerate, or when the cost
        model predicts the pool cannot beat a plain loop; parallel
        otherwise, with the chunk size floored by :meth:`chunk_floor`.
        """
        if workers <= 1 or n_items <= 1:
            return DispatchPlan(False, 1, "degenerate")
        chunksize = max(
            self.chunk_floor(fn), math.ceil(n_items / (workers * 4))
        )
        per_item = self.profile(fn).serial_item_seconds
        if per_item is None:
            return DispatchPlan(True, chunksize, "explore")
        t_serial = n_items * per_item
        t_parallel = self.warm_overhead_seconds + t_serial / workers
        if t_serial <= t_parallel:
            return DispatchPlan(False, chunksize, "amortize")
        return DispatchPlan(True, chunksize, "cost-model")

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything learned, as plain picklable data.

        The payload round-trips through :meth:`load_state_dict`, which is
        how the learned cost model survives pool shutdown/re-arm cycles
        and rides fabric checkpoints across process restarts.
        """
        return {
            "warm_overhead_seconds": self.warm_overhead_seconds,
            "target_chunk_seconds": self.target_chunk_seconds,
            "alpha": self.alpha,
            "profiles": {
                key: {
                    "serial_item_seconds": prof.serial_item_seconds,
                    "serial_calls": prof.serial_calls,
                    "parallel_calls": prof.parallel_calls,
                }
                for key, prof in self._profiles.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` payload in place."""
        alpha = float(state["alpha"])
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.warm_overhead_seconds = float(state["warm_overhead_seconds"])
        self.target_chunk_seconds = float(state["target_chunk_seconds"])
        self.alpha = alpha
        self._profiles = {
            key: FnProfile(
                serial_item_seconds=entry["serial_item_seconds"],
                serial_calls=int(entry["serial_calls"]),
                parallel_calls=int(entry["parallel_calls"]),
            )
            for key, entry in state["profiles"].items()
        }

    # -- introspection ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able view of everything learned (bench/debug output)."""
        return {
            "warm_overhead_seconds": self.warm_overhead_seconds,
            "target_chunk_seconds": self.target_chunk_seconds,
            "functions": {
                key: {
                    "serial_item_seconds": prof.serial_item_seconds,
                    "serial_calls": prof.serial_calls,
                    "parallel_calls": prof.parallel_calls,
                }
                for key, prof in sorted(self._profiles.items())
            },
        }

    def reset(self) -> None:
        """Forget everything (fresh defaults; test isolation)."""
        self.warm_overhead_seconds = DEFAULT_WARM_OVERHEAD_SECONDS
        self._profiles.clear()
