"""Process-parallel fan-out substrate for fleet-scale analysis.

CloudViews mines common subexpressions across hundreds of thousands of
daily jobs and Peregrine analyzes recurrence over the whole fleet
(Section 4.2); this package is the shared scale-out layer both ride:

- :func:`pmap` — order-preserving process-pool map with a serial twin,
- :func:`shard_map` — deterministic shard-then-map by stable key hash,
- :mod:`~repro.parallel.sharding` — the partitioning contract (blake2b
  key hashing, worker-count-independent shard membership).

The invariant every caller relies on: **parallel results are
bit-identical to serial results** — ``workers`` is a throughput knob,
never a semantics knob.
"""

from repro.parallel.pool import FORCE_ENV, pmap, resolve_workers, shard_map
from repro.parallel.sharding import (
    DEFAULT_N_SHARDS,
    shard_items,
    shard_of,
    stable_hash,
)

__all__ = [
    "pmap",
    "shard_map",
    "resolve_workers",
    "shard_items",
    "shard_of",
    "stable_hash",
    "DEFAULT_N_SHARDS",
    "FORCE_ENV",
]
