"""Process-parallel fan-out substrate for fleet-scale analysis.

CloudViews mines common subexpressions across hundreds of thousands of
daily jobs and Peregrine analyzes recurrence over the whole fleet
(Section 4.2); this package is the shared scale-out layer both ride:

- :func:`pmap` — order-preserving map over a **persistent** process
  pool with a serial twin,
- :func:`shard_map` — deterministic shard-then-map by stable key hash,
- :class:`WorkerPool` — the lazily-started, fabric-owned pool reused
  across calls, ticks, and simulated days (:func:`get_pool` is the
  process-wide handle),
- :mod:`~repro.parallel.autotune` — the granularity cost model routing
  too-small batches back to serial and flooring chunk sizes,
- :mod:`~repro.parallel.shm` — the shared-memory data plane (publish
  shards once per epoch, workers attach zero-copy),
- :mod:`~repro.parallel.sharding` — the partitioning contract (blake2b
  key hashing, worker-count-independent shard membership).

The invariant every caller relies on: **parallel results are
bit-identical to serial results** — ``workers`` is a throughput knob,
never a semantics knob.
"""

from repro.parallel.autotune import DispatchPlan, FnProfile, GranularityTuner
from repro.parallel.pool import (
    FORCE_ENV,
    START_METHOD_ENV,
    WorkerPool,
    default_start_method,
    get_pool,
    get_tuner,
    pmap,
    resolve_workers,
    shard_map,
    shutdown_pool,
)
from repro.parallel.sharding import (
    DEFAULT_N_SHARDS,
    shard_items,
    shard_of,
    stable_hash,
)
from repro.parallel.shm import (
    ArenaHandle,
    BytesArena,
    ShmArray,
    ShmHandle,
    arena_blob,
    attach,
    close_all,
    detach_all,
)

__all__ = [
    "pmap",
    "shard_map",
    "resolve_workers",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "get_tuner",
    "default_start_method",
    "GranularityTuner",
    "DispatchPlan",
    "FnProfile",
    "ShmArray",
    "BytesArena",
    "ShmHandle",
    "ArenaHandle",
    "attach",
    "arena_blob",
    "close_all",
    "detach_all",
    "shard_items",
    "shard_of",
    "stable_hash",
    "DEFAULT_N_SHARDS",
    "FORCE_ENV",
    "START_METHOD_ENV",
]
