"""Deterministic sharding: the partitioning contract behind fan-out.

Every fleet-scale analysis in this repo (CloudViews candidate
enumeration, Peregrine per-day sharing statistics, similarity embedding
construction) follows the same shape: partition the work by a *stable*
key hash, analyze each shard independently, and merge partial results in
shard order.  Correctness of the merge step demands two properties that
Python's builtin ``hash`` cannot give:

- **run-to-run stability** — ``hash(str)`` is salted per process
  (``PYTHONHASHSEED``), so shard membership would differ between the
  parent and its pool workers, and between today's run and tomorrow's.
  :func:`stable_hash` uses blake2b, which is a pure function of the key.
- **worker-count independence** — shard membership depends only on the
  key and the shard count, never on how many processes serve the
  shards, so ``workers=1`` and ``workers=8`` see the same partition.

Merges that must *additionally* be shard-count independent (CloudViews
candidate tables) tag each partial record with its global input index
and reassemble in index order — see ``reuse._merge_candidate_shards``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

#: Default shard count: fixed (not derived from the worker count) so the
#: partition — and therefore any per-shard artifact — is reproducible
#: regardless of the machine the analysis lands on.
DEFAULT_N_SHARDS = 16


def stable_hash(key: str) -> int:
    """A 64-bit hash of ``key`` that is identical in every process.

    Unlike ``hash(str)``, this is not salted: the same key maps to the
    same value across interpreter runs, pool workers, and platforms.
    """
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_of(key: str, n_shards: int) -> int:
    """The shard index of ``key`` under an ``n_shards``-way partition."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return stable_hash(key) % n_shards


def shard_items(
    items: Sequence[T] | Iterable[T],
    key: Callable[[T], str],
    n_shards: int = DEFAULT_N_SHARDS,
) -> list[list[T]]:
    """Partition ``items`` into ``n_shards`` lists by stable key hash.

    Input order is preserved *within* each shard, so a merge that walks
    shards in index order and reassembles by original position is fully
    deterministic.  Empty shards are kept (stable shard order).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    for item in items:
        shards[shard_of(key(item), n_shards)].append(item)
    return shards
