"""Persistent process-pool fan-out with a guaranteed serial twin.

The paper's service layer learns from fleet-sized shared repositories —
hundreds of thousands of daily jobs — so the analysis layer must scale
*out* across cores, not just *up* per core.  :func:`pmap` and
:func:`shard_map` are the two fan-out shapes every analysis here uses,
with one contract on top:

**the parallel result is bit-identical to the serial result.**

That holds because (a) worker functions are pure, (b) ``pmap`` preserves
input order, and (c) sharding is by stable key hash
(:mod:`repro.parallel.sharding`), never by worker count.  Callers can
therefore treat ``workers`` as a pure throughput knob.

Three layers make the knob actually pay (it used to *cost* 4–5x on
small batches — pool spawn plus shard pickling ate every win):

- :class:`WorkerPool` — one **persistent** pool per process, started
  lazily on the first real dispatch and reused across every subsequent
  ``pmap`` call, fabric tick, and simulated day.  Spawn is paid once;
  warm dispatches ride the living workers.  ``atexit`` tears it down,
  and :meth:`WorkerPool.shutdown` re-arms lazily afterwards.
- :class:`~repro.parallel.autotune.GranularityTuner` — a measured cost
  model that routes batches too small to amortize dispatch overhead
  back to the serial twin and floors chunk sizes so chunks carry real
  work (see :mod:`repro.parallel.autotune`).
- :mod:`repro.parallel.shm` — the shared-memory data plane: big shards
  are published once per epoch and workers attach zero-copy, so pool
  tasks carry handles instead of pickled object lists.

Serial fallback: ``workers <= 1`` runs in-process with zero pool
machinery, and so does any call made under pytest (pool startup is slow
and sandbox-hostile inside test runs) unless ``REPRO_PARALLEL_FORCE=1``
is set — the equivalence tests set it to exercise the real warm pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.parallel.autotune import DispatchPlan, GranularityTuner
from repro.parallel.sharding import DEFAULT_N_SHARDS, shard_items

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime

T = TypeVar("T")
R = TypeVar("R")

#: Environment switch: run real pools even under pytest.
FORCE_ENV = "REPRO_PARALLEL_FORCE"
#: Environment override for the pool start method (fork/forkserver/spawn).
START_METHOD_ENV = "REPRO_PARALLEL_START"


def resolve_workers(workers: int | None) -> int:
    """The worker count a fan-out call will actually use.

    ``None`` or anything ``<= 1`` means serial.  Under pytest
    (``PYTEST_CURRENT_TEST`` set) the answer is serial unless
    ``REPRO_PARALLEL_FORCE`` is set, so the suite never pays pool
    startup by accident.  The count is *not* clamped to ``cpu_count``:
    oversubscription is harmless for correctness (results never depend
    on the worker count) and lets scaling benches measure honestly.
    """
    if workers is None or workers <= 1:
        return 1
    if "PYTEST_CURRENT_TEST" in os.environ and not os.environ.get(FORCE_ENV):
        return 1
    return int(workers)


def default_start_method() -> str:
    """The multiprocessing start method pools use on this platform.

    ``REPRO_PARALLEL_START`` overrides; otherwise ``fork`` where the OS
    offers it (cheapest cold start) and ``spawn`` elsewhere.  Worker
    functions are module-level and payloads picklable throughout, so
    every start method — including forkserver and spawn — is safe.
    """
    methods = multiprocessing.get_all_start_methods()
    wanted = os.environ.get(START_METHOD_ENV)
    if wanted:
        if wanted not in methods:
            raise ValueError(
                f"{START_METHOD_ENV}={wanted!r} not in {methods}"
            )
        return wanted
    return "fork" if "fork" in methods else "spawn"


def _warmup(_: int = 0) -> int:
    """No-op dispatched at pool start so spawn cost is measured honestly."""
    return os.getpid()


class WorkerPool:
    """A persistent, lazily-started, obs-instrumented process pool.

    The pool does not exist until the first :meth:`ensure`/:meth:`map`
    with real width; after that the same worker processes serve every
    dispatch until :meth:`shutdown` (or interpreter exit).  Asking for
    more width than the current pool has restarts it wider — the
    high-water width then persists.  ``shutdown`` is never final: the
    next dispatch transparently re-arms a fresh pool, which is what
    lets a fabric resume after checkpoint restore without ceremony.
    """

    def __init__(
        self,
        start_method: str | None = None,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        self._start_method = start_method
        self._executor: ProcessPoolExecutor | None = None
        self._width = 0
        self._obs = obs
        #: Pools started over this handle's lifetime (cold starts).
        self.generation = 0
        #: Measured wall seconds of the last cold start (incl. warmup).
        self.spawn_seconds = 0.0
        self.dispatches = 0
        self.items_dispatched = 0

    # -- observability ---------------------------------------------------------
    def bind(self, obs: "ObservabilityRuntime | None") -> "WorkerPool":
        """Attach (or detach) an observability runtime; returns self."""
        self._obs = obs
        return self

    def _emit(self, kind: str, value: float = 1.0, **attributes: object) -> None:
        if self._obs is not None:
            self._obs.emit("parallel", "pool", kind, value=value, **attributes)

    def _span(self, name: str, **attributes: object):
        if self._obs is None:
            return nullcontext()
        return self._obs.span(name, layer="parallel", **attributes)

    # -- lifecycle -------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def width(self) -> int:
        return self._width

    def ensure(self, workers: int) -> ProcessPoolExecutor:
        """An executor at least ``workers`` wide (start or grow-restart)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if self._executor is not None and self._width >= workers:
            return self._executor
        if self._executor is not None:
            self._stop()
        method = self._start_method or default_start_method()
        clock = time.perf_counter()
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
        )
        # Force at least one worker fully up so ``spawn_seconds`` is the
        # honest cold-start latency, not a deferred-fork illusion.
        executor.submit(_warmup).result()
        self.spawn_seconds = time.perf_counter() - clock
        self._executor = executor
        self._width = workers
        self.generation += 1
        self._emit(
            "pool_start",
            value=self.spawn_seconds,
            workers=workers,
            start_method=method,
            generation=self.generation,
        )
        return executor

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        workers: int,
        chunksize: int = 1,
    ) -> list[R]:
        """Order-preserving map over the (possibly grown) warm pool."""
        with self._span(
            "parallel.dispatch",
            fn=getattr(fn, "__qualname__", repr(fn)),
            n_items=len(items),
            workers=workers,
            chunksize=chunksize,
        ):
            executor = self.ensure(workers)
            self.dispatches += 1
            self.items_dispatched += len(items)
            return list(executor.map(fn, items, chunksize=chunksize))

    def submit(self, fn: Callable[[T], R], item: T, workers: int = 1):
        """One async task on the warm pool; returns its Future.

        The single-task escape hatch :meth:`map` doesn't cover: overlap
        work (e.g. prefetching the next fabric day's generation) rides
        the same persistent workers without blocking the caller.  The
        future is process-local — callers must not pickle it; dropping
        it is safe (the task just runs to completion unobserved).
        """
        with self._span(
            "parallel.submit",
            fn=getattr(fn, "__qualname__", repr(fn)),
        ):
            executor = self.ensure(max(workers, 1))
            self.dispatches += 1
            self.items_dispatched += 1
            return executor.submit(fn, item)

    def _stop(self) -> None:
        executor = self._executor
        self._executor = None
        self._width = 0
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def shutdown(self) -> None:
        """Stop the workers now; the next dispatch re-arms lazily."""
        was_started = self.started
        self._stop()
        if was_started:
            self._emit("pool_shutdown", generation=self.generation)

    def stats(self) -> dict:
        """JSON-able lifecycle counters (bench/CLI output)."""
        return {
            "started": self.started,
            "width": self._width,
            "generation": self.generation,
            "spawn_seconds": self.spawn_seconds,
            "dispatches": self.dispatches,
            "items_dispatched": self.items_dispatched,
        }


# -- process-wide shared pool and tuner ---------------------------------------
_SHARED_POOL: WorkerPool | None = None
_TUNER = GranularityTuner()


def get_pool() -> WorkerPool:
    """The process-wide shared pool handle (created cold, started lazily)."""
    global _SHARED_POOL
    if _SHARED_POOL is None:
        _SHARED_POOL = WorkerPool()
        atexit.register(_SHARED_POOL.shutdown)
    return _SHARED_POOL


def shutdown_pool() -> None:
    """Shut the shared pool down (no-op when it never started).

    Only the worker processes go away.  The granularity tuner's learned
    cost model (:func:`get_tuner`) is deliberately untouched, so a pool
    re-armed by the next dispatch resumes with trained per-item EWMAs
    instead of re-exploring from scratch.
    """
    if _SHARED_POOL is not None:
        _SHARED_POOL.shutdown()


def get_tuner() -> GranularityTuner:
    """The process-wide granularity tuner ``pmap`` consults."""
    return _TUNER


# -- fan-out entry points ------------------------------------------------------
def _run_serial(
    fn: Callable[[T], R], work: Sequence[T], tuner: GranularityTuner
) -> list[R]:
    clock = time.perf_counter()
    out = [fn(item) for item in work]
    tuner.note_serial(fn, len(work), time.perf_counter() - clock)
    return out


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    chunksize: int | None = None,
    pool: WorkerPool | None = None,
    tuner: GranularityTuner | None = None,
) -> list[R]:
    """Order-preserving map, fanned across the persistent process pool.

    ``fn`` must be a module-level (picklable) function.  With
    ``workers <= 1`` — or whenever the granularity tuner predicts the
    batch cannot amortize dispatch overhead — this is exactly
    ``[fn(x) for x in items]`` (and that serial run trains the tuner's
    per-item cost model).  An explicit ``chunksize`` bypasses the tuner
    and forces a pool dispatch at exactly that chunking.  ``pool`` and
    ``tuner`` default to the process-wide shared instances.
    """
    work: Sequence[T] = (
        items if isinstance(items, (list, tuple)) else list(items)
    )
    n = resolve_workers(workers)
    tuner = tuner if tuner is not None else _TUNER
    if n <= 1 or len(work) <= 1:
        return _run_serial(fn, work, tuner)
    if chunksize is not None:
        plan = DispatchPlan(True, max(1, int(chunksize)), "explicit")
    else:
        plan = tuner.plan(fn, len(work), n)
    if not plan.parallel:
        return _run_serial(fn, work, tuner)
    pool = pool if pool is not None else get_pool()
    cold = not pool.started or pool.width < n
    clock = time.perf_counter()
    out = pool.map(fn, work, workers=n, chunksize=plan.chunksize)
    tuner.note_parallel(
        fn, len(work), n, time.perf_counter() - clock, cold=cold
    )
    return out


def shard_map(
    fn: Callable[[list[T]], R],
    items: Sequence[T] | Iterable[T],
    key: Callable[[T], str],
    n_shards: int = DEFAULT_N_SHARDS,
    workers: int | None = None,
) -> list[R]:
    """Partition ``items`` by stable key hash and map ``fn`` per shard.

    Returns one result per shard, in shard-index order (including empty
    shards), so downstream merges are deterministic.  ``n_shards`` is
    independent of ``workers`` by design: changing the worker count must
    never change what any shard contains.
    """
    shards = shard_items(items, key, n_shards)
    return pmap(fn, shards, workers=workers)
