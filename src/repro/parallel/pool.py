"""Process-pool fan-out with a guaranteed serial twin.

The paper's service layer learns from fleet-sized shared repositories —
hundreds of thousands of daily jobs — so the analysis layer must scale
*out* across cores, not just *up* per core.  :func:`pmap` and
:func:`shard_map` are the two fan-out shapes every analysis here uses,
with one contract on top of ``concurrent.futures``:

**the parallel result is bit-identical to the serial result.**

That holds because (a) worker functions are pure, (b) ``pmap`` preserves
input order, and (c) sharding is by stable key hash
(:mod:`repro.parallel.sharding`), never by worker count.  Callers can
therefore treat ``workers`` as a pure throughput knob.

Serial fallback: ``workers <= 1`` runs in-process with zero pool
machinery, and so does any call made under pytest (pool startup is slow
and sandbox-hostile inside test runs) unless ``REPRO_PARALLEL_FORCE=1``
is set — the equivalence tests set it to exercise the real pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.parallel.sharding import DEFAULT_N_SHARDS, shard_items

T = TypeVar("T")
R = TypeVar("R")

#: Environment switch: run real pools even under pytest.
FORCE_ENV = "REPRO_PARALLEL_FORCE"


def resolve_workers(workers: int | None) -> int:
    """The worker count a fan-out call will actually use.

    ``None`` or anything ``<= 1`` means serial.  Under pytest
    (``PYTEST_CURRENT_TEST`` set) the answer is serial unless
    ``REPRO_PARALLEL_FORCE`` is set, so the suite never pays pool
    startup by accident.  The count is *not* clamped to ``cpu_count``:
    oversubscription is harmless for correctness (results never depend
    on the worker count) and lets scaling benches measure honestly.
    """
    if workers is None or workers <= 1:
        return 1
    if "PYTEST_CURRENT_TEST" in os.environ and not os.environ.get(FORCE_ENV):
        return 1
    return int(workers)


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Order-preserving map, fanned across a process pool.

    ``fn`` must be a module-level (picklable) function.  With
    ``workers <= 1`` — or a single item, where a pool can only lose —
    this is exactly ``[fn(x) for x in items]``.
    """
    work = list(items)
    n = resolve_workers(workers)
    if n <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (n * 4))
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))


def shard_map(
    fn: Callable[[list[T]], R],
    items: Sequence[T] | Iterable[T],
    key: Callable[[T], str],
    n_shards: int = DEFAULT_N_SHARDS,
    workers: int | None = None,
) -> list[R]:
    """Partition ``items`` by stable key hash and map ``fn`` per shard.

    Returns one result per shard, in shard-index order (including empty
    shards), so downstream merges are deterministic.  ``n_shards`` is
    independent of ``workers`` by design: changing the worker count must
    never change what any shard contains.
    """
    shards = shard_items(items, key, n_shards)
    return pmap(fn, shards, workers=workers)
