"""Fleet drivers: every autonomous service as a fabric pipeline.

This module is the consolidation the paper argues for — the per-service
driver loops that used to live in ``cli.py`` and the examples, rewritten
once as :class:`~repro.fabric.pipeline.PipelineDriver` subclasses and
registered onto one :class:`~repro.fabric.plane.ControlPlane`:

==============  =======================================  ==================
driver          wraps                                    stages
==============  =======================================  ==================
steering        SteeringService                          observe, validate
cloudviews      CloudViews day-runner                    act, validate
peregrine       WorkloadRepository + analyze             observe, learn
moneyball       MoneyballPolicy                          observe, recommend
seagull         SeagullService                           observe, recommend
doppler         SkuRecommender                           learn, recommend, validate
feedback        FeedbackLoop (shared ModelRegistry)      learn, observe, validate
kea             MachineBehaviorModels + Balancer         observe, learn, act, validate
autotune        ApplicationTuner                         learn, act
joint           coordinate descent on the wave/ckpt      learn
==============  =======================================  ==================

Every driver is picklable (fabric checkpoints pickle them between
ticks), so the helpers services need as callables —
:class:`TrueCostFn`, :class:`LinearRetrainer` — are module-level
classes, never lambdas.  :func:`build_fleet` wires a standard
multi-service scenario from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.service import ServeRequest, ServeResponse
from repro.fabric.pipeline import PipelineDriver, TickContext

#: Trace day a seagull simulation day 0 maps to (needs >= 4 weeks of
#: history for the Holt-Winters forecast, traces are 42 days long).
SEAGULL_FIRST_DAY = 30
#: Last usable trace day for the 42-day usage population.
SEAGULL_LAST_DAY = 41


def _round(value: float, digits: int = 10) -> float:
    """Canonical float rounding for deterministic JSON reports."""
    return round(float(value), digits)


class TrueCostFn:
    """Picklable ``plan -> total true cost`` callable over a cost model."""

    def __init__(self, cost_model) -> None:
        self.cost_model = cost_model

    def __call__(self, plan) -> float:
        return self.cost_model.cost(plan).total


class LinearRetrainer:
    """Picklable retrain callback for the feedback loop."""

    def __call__(self, x, y):
        from repro.ml import LinearRegression

        return LinearRegression().fit(x, y)


# ---------------------------------------------------------------------------
# engine layer
# ---------------------------------------------------------------------------


class SteeringDriver(PipelineDriver):
    """Stream each day's jobs through the steering service."""

    name = "steering"
    dirty_aware = True
    frozen_attrs = ("jobs_by_day",)

    def __init__(self, jobs_by_day, optimizer, true_cost, seed: int = 0) -> None:
        from repro.core.steering import SteeringService

        self.jobs_by_day = jobs_by_day
        self.service = SteeringService(optimizer, true_cost, rng=seed)
        self.improvement = 0.0
        self.jobs_seen = 0

    def services(self):
        return [self.service]

    def observe(self, ctx: TickContext) -> None:
        jobs = self.jobs_by_day.get(ctx.day, [])
        if jobs:
            self.mark_dirty()
        for job_id, plan in jobs:
            self.serve(
                ServeRequest(
                    op="observe", subject=plan, params={"job_id": job_id}
                )
            ).unwrap()
            self.jobs_seen += 1

    def validate(self, ctx: TickContext) -> None:
        report = self.service.report()
        self.improvement = report.improvement

    def final_report(self) -> dict:
        report = self.service.report()
        return {
            "jobs": self.jobs_seen,
            "improvement": _round(report.improvement),
            "adoptions": report.adoptions,
            "rollbacks": report.rollbacks,
            "regression_fraction": _round(report.regression_fraction()),
        }


class CloudViewsDriver(PipelineDriver):
    """Run one CloudViews select/materialize/rewrite cycle per day."""

    name = "cloudviews"
    dirty_aware = True
    frozen_attrs = ("jobs_by_day",)

    def __init__(
        self, catalog, est_cost, truth, jobs_by_day, workers: int = 1
    ) -> None:
        from repro.core.cloudviews import CloudViews

        self.service = CloudViews(catalog, est_cost)
        self.truth = truth
        self.jobs_by_day = jobs_by_day
        self.workers = workers
        self.days: list[dict] = []

    def bind_obs(self, obs) -> None:
        self.service.bind(obs)

    def act(self, ctx: TickContext) -> None:
        jobs = self.jobs_by_day.get(ctx.day, [])
        if len(jobs) < 2:
            return
        self.mark_dirty()
        report = self.service.run_day(jobs, self.truth, workers=self.workers)
        self.days.append(
            {
                "day": ctx.day,
                "n_jobs": report.n_jobs,
                "n_views": report.n_views,
                "latency_improvement": _round(report.latency_improvement),
                "processing_reduction": _round(report.processing_reduction),
            }
        )

    def validate(self, ctx: TickContext) -> None:
        if self.days and self.days[-1]["day"] == ctx.day:
            last = self.days[-1]
            if last["latency_improvement"] < -1e-9:
                raise RuntimeError(
                    f"reuse made day {ctx.day} slower: "
                    f"{last['latency_improvement']:.2%}"
                )

    def final_report(self) -> dict:
        return {"days": self.days}


class PeregrineDriver(PipelineDriver):
    """Grow the shared workload repository; re-analyze as it grows."""

    name = "peregrine"
    layer = "engine"
    dirty_aware = True
    frozen_attrs = ("jobs_by_day",)

    #: day sizes at/above which ingestion goes through the columnar
    #: batch path (identical results, ~50x the per-job throughput).
    BATCH_THRESHOLD = 256

    def __init__(
        self,
        jobs_by_day,
        workers: int = 1,
        memory_budget_mb: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        from repro.core.peregrine import WorkloadRepository

        self.jobs_by_day = jobs_by_day
        self.repo = WorkloadRepository(
            memory_budget_bytes=(
                memory_budget_mb * 1024 * 1024 if memory_budget_mb else None
            ),
            spill_dir=spill_dir,
        )
        self.workers = workers
        self.stats: dict = {}

    def observe(self, ctx: TickContext) -> None:
        day_batch = getattr(self.jobs_by_day, "day_batch", None)
        if day_batch is not None:
            # Streaming source: the day arrives as one fused columnar
            # batch (possibly prefetched on the worker pool while the
            # previous day's services ran) — no per-job list, and
            # bit-identical to the record-path ingest.
            batch = day_batch(ctx.day)
            if batch is not None and len(batch):
                self.mark_dirty()
                self.repo.ingest_batch(batch)
            return
        jobs = self.jobs_by_day.get(ctx.day, [])
        if jobs:
            self.mark_dirty()
        if len(jobs) >= self.BATCH_THRESHOLD:
            self.repo.ingest_batch(list(jobs))
            return
        for job in jobs:
            self.repo.ingest_job(job)

    def learn(self, ctx: TickContext) -> None:
        from repro.core.peregrine import analyze

        if len(self.repo) == 0:
            return
        stats = analyze(self.repo, workers=self.workers)
        rounded = {
            name: _round(value) for name, value in stats.summary_rows()
        }
        if rounded != self.stats:
            self.stats = rounded
            self.mark_dirty()

    def serve(self, request: ServeRequest) -> ServeResponse:
        """Query endpoint over the shared repository (``stats`` op).

        Peregrine's queryable state is the repository itself, not an
        AutonomousService, so the driver answers the serve contract
        directly: ``stats`` returns the latest analysis rollup plus the
        repository size.
        """
        if request.op == "stats":
            return ServeResponse(
                status=200,
                result={"jobs": len(self.repo), "stats": dict(self.stats)},
                served_by=self.name,
                op=request.op,
            )
        return super().serve(request)

    def final_report(self) -> dict:
        return {"jobs": len(self.repo), "stats": self.stats}


# ---------------------------------------------------------------------------
# service layer
# ---------------------------------------------------------------------------


class MoneyballDriver(PipelineDriver):
    """Tenant traces arrive daily; policies assigned as they arrive."""

    name = "moneyball"
    dirty_aware = True
    frozen_attrs = ("arrivals_by_day",)

    def __init__(self, arrivals_by_day) -> None:
        from repro.core.moneyball import MoneyballPolicy

        self.arrivals_by_day = arrivals_by_day
        self.service = MoneyballPolicy()
        self.policy_counts: dict[str, int] = {}

    def services(self):
        return [self.service]

    def observe(self, ctx: TickContext) -> None:
        arrivals = self.arrivals_by_day.get(ctx.day, [])
        if arrivals:
            self.mark_dirty()
        for trace in arrivals:
            self.serve(ServeRequest(op="observe", subject=trace)).unwrap()

    def recommend(self, ctx: TickContext) -> None:
        arrivals = self.arrivals_by_day.get(ctx.day, [])
        if arrivals:
            self.mark_dirty()
        for trace in arrivals:
            policy = type(
                self.serve(ServeRequest(op="recommend", subject=trace)).unwrap()
            ).__name__
            self.policy_counts[policy] = self.policy_counts.get(policy, 0) + 1

    def final_report(self) -> dict:
        report = self.service.report()
        return {
            "n_tenants": report.n_tenants,
            "predictable_fraction": _round(report.predictable_fraction),
            "policies": dict(sorted(self.policy_counts.items())),
            "points": {
                name: {
                    "qos_penalty": _round(point.qos_penalty),
                    "cost": _round(point.cost),
                }
                for name, point in sorted(report.points.items())
            },
        }


class SeagullDriver(PipelineDriver):
    """Pick tomorrow's backup window for every server, every day."""

    name = "seagull"
    dirty_aware = True
    frozen_attrs = ("traces",)

    def __init__(self, traces, first_day: int = SEAGULL_FIRST_DAY) -> None:
        from repro.core.seagull import SeagullService

        self.traces = list(traces)
        self.first_day = first_day
        self.service = SeagullService()
        self.fallback_days = 0

    def services(self):
        return [self.service]

    def _trace_day(self, sim_day: int) -> int:
        span = SEAGULL_LAST_DAY - self.first_day + 1
        return self.first_day + (sim_day % span)

    def observe(self, ctx: TickContext) -> None:
        if ctx.tick == 0:
            self.mark_dirty()
            for trace in self.traces:
                self.serve(ServeRequest(op="observe", subject=trace)).unwrap()

    def recommend(self, ctx: TickContext) -> None:
        # Recommends every day forever, so seagull never goes clean —
        # it is the driver that keeps long-run delta frames non-empty.
        self.mark_dirty()
        day = self._trace_day(ctx.day)
        for trace in self.traces:
            self.serve(
                ServeRequest(
                    op="recommend",
                    subject=trace.tenant_id,
                    params={"day": day},
                )
            ).unwrap()

    def degrade(self, stage: str, ctx: TickContext) -> None:
        """Fallback to the previous-day heuristic for this day's windows.

        The paper's degrade-to-default behaviour: when the ML forecast
        path is unavailable, the service still schedules backups — with
        Insight 1's simple heuristic instead of Holt-Winters.
        """
        if stage != "recommend":
            return
        from repro.core.seagull import BackupScheduler, PreviousDayPolicy

        self.mark_dirty()
        scheduler = BackupScheduler(self.service.scheduler.window_hours)
        policy = PreviousDayPolicy()
        day = self._trace_day(ctx.day)
        for trace in self.traces:
            self.service._choices.append(scheduler.choose(trace, day, policy))
        self.fallback_days += 1

    def final_report(self) -> dict:
        report = self.service.report()
        return {
            "servers": len(self.traces),
            "windows": len(report.choices),
            "accuracy": _round(report.accuracy),
            "fallback_days": self.fallback_days,
        }


class DopplerDriver(PipelineDriver):
    """Fit segments once, then recommend SKUs for daily migrations."""

    name = "doppler"
    dirty_aware = True
    frozen_attrs = ("historical", "arrivals_by_day")

    def __init__(self, historical, arrivals_by_day, seed: int = 0) -> None:
        from repro.core.doppler import SkuRecommender

        self.historical = list(historical)
        self.arrivals_by_day = arrivals_by_day
        self.service = SkuRecommender(rng=seed)
        self.hits = 0
        self.total = 0

    def services(self):
        return [self.service]

    def learn(self, ctx: TickContext) -> None:
        if ctx.tick == 0:
            self.mark_dirty()
            self.serve(
                ServeRequest(op="observe", subject=self.historical)
            ).unwrap()

    def recommend(self, ctx: TickContext) -> None:
        from repro.workloads.customers import ground_truth_sku

        arrivals = self.arrivals_by_day.get(ctx.day, [])
        if arrivals:
            self.mark_dirty()
        ladder = sorted(self.service.skus, key=lambda s: s.price)
        index = {sku.name: i for i, sku in enumerate(ladder)}
        for customer in arrivals:
            chosen = self.serve(
                ServeRequest(op="recommend", subject=customer)
            ).unwrap().sku
            truth = ground_truth_sku(customer, self.service.skus)
            if abs(index[chosen.name] - index[truth.name]) <= 1:
                self.hits += 1
            self.total += 1

    def validate(self, ctx: TickContext) -> None:
        if self.total >= 20 and self.hits / self.total < 0.5:
            raise RuntimeError(
                f"SKU accuracy collapsed: {self.hits}/{self.total}"
            )

    def final_report(self) -> dict:
        return {
            "recommendations": self.total,
            "accuracy_within_tier": _round(
                self.hits / self.total if self.total else 0.0
            ),
        }


# ---------------------------------------------------------------------------
# cross-cutting: the feedback loop on the shared registry
# ---------------------------------------------------------------------------


class FeedbackDriver(PipelineDriver):
    """Drive one model name through the fabric's shared registry.

    The observation stream drifts (the slope flips partway through), so
    a multi-day run exercises the full monitor -> retrain -> flight ->
    promote path on the *shared* ModelRegistry — the single model
    deployment path of the tentpole.
    """

    name = "feedback"
    dirty_aware = True
    frozen_attrs = ("stream_x", "stream_y")

    def __init__(
        self,
        model_name: str = "latency-model",
        days: int = 7,
        steps_per_day: int = 40,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        flip_at = max(1, int(days * steps_per_day * 0.4))
        xs, ys = [], []
        for step in range(days * steps_per_day):
            x = float(rng.normal())
            slope = 2.0 if step < flip_at else -1.0
            ys.append(slope * x + float(rng.normal(scale=0.1)))
            xs.append(x)
        self.stream_x = np.array(xs).reshape(-1, 1)
        self.stream_y = np.array(ys)
        self.steps_per_day = steps_per_day
        self.model_name = model_name
        self.warmup_seed = seed + 1
        self.loop = None

    def services(self):
        return [self.loop] if self.loop is not None else []

    def _bootstrap(self, ctx: TickContext) -> None:
        """Seed the shared registry through the lifecycle, once."""
        from repro.core.feedback import FeedbackLoop
        from repro.ml import LinearRegression

        rng = np.random.default_rng(self.warmup_seed)
        x0 = rng.normal(size=(50, 1))
        y0 = 2.0 * x0[:, 0] + rng.normal(scale=0.1, size=50)
        model = LinearRegression().fit(x0, y0)
        error = float(np.mean(np.abs(model.predict(x0) - y0)))
        ctx.lifecycle.propose(
            self.model_name, model, candidate_metric=error, day=ctx.day
        )
        self.loop = FeedbackLoop(
            ctx.lifecycle.registry,
            self.model_name,
            retrain=LinearRetrainer(),
            window=30,
            flight_min_samples=10,
            rollback_patience=20,
        )

    def observe(self, ctx: TickContext) -> None:
        if self.loop is None:
            self.mark_dirty()
            self._bootstrap(ctx)
        start = ctx.tick * self.steps_per_day
        if start < len(self.stream_y):
            self.mark_dirty()
        for i in range(start, min(start + self.steps_per_day, len(self.stream_y))):
            self.loop.observe(self.stream_x[i], float(self.stream_y[i]))

    def validate(self, ctx: TickContext) -> None:
        # The loop's own audit trail is the validation artifact; nothing
        # to veto here — but a missing production model is fatal.
        if ctx.lifecycle.registry.production(self.model_name) is None:
            raise RuntimeError(f"{self.model_name} lost its production model")

    def final_report(self) -> dict:
        report = self.loop.report()
        serving = self.loop.registry.production(self.model_name)
        return {
            "steps": report.steps,
            "actions": report.actions,
            "serving_version": serving.version if serving else None,
        }


# ---------------------------------------------------------------------------
# infrastructure layer
# ---------------------------------------------------------------------------


class KeaDriver(PipelineDriver):
    """Telemetry in, behaviour models out, caps deployed via lifecycle."""

    name = "kea"
    layer = "infra"
    dirty_aware = True
    MODEL_NAME = "kea-caps"

    def __init__(
        self,
        n_machines_per_sku: int = 6,
        steps_per_day: int = 20,
        target_cpu: float = 75.0,
        seed: int = 0,
    ) -> None:
        from repro.telemetry import TelemetryStore
        from repro.workloads import MachineFleetSimulator

        self.sim = MachineFleetSimulator(
            n_machines_per_sku=n_machines_per_sku, rng=seed
        )
        self.store = TelemetryStore()
        self.steps_per_day = steps_per_day
        self.target_cpu = target_cpu
        self.caps: dict[str, int] = {}
        self.last_metric: float | None = None

    def observe(self, ctx: TickContext) -> None:
        # Telemetry collection advances the simulator every day, so kea
        # is never clean.
        self.mark_dirty()
        self.sim.collect(
            self.store,
            n_steps=self.steps_per_day,
            step_seconds=300.0,
        )

    def learn(self, ctx: TickContext) -> None:
        from repro.core.kea import MachineBehaviorModels, WorkloadBalancer

        models = MachineBehaviorModels().fit(self.store)
        result = WorkloadBalancer(models).recommend_caps(self.target_cpu)
        metric = float(
            np.mean(
                [
                    abs(cpu - self.target_cpu)
                    for cpu in result.predicted_cpu.values()
                ]
            )
        )
        ctx.lifecycle.propose(
            self.MODEL_NAME,
            result.caps,
            candidate_metric=metric,
            baseline_metric=self.last_metric,
            day=ctx.day,
        )
        self.last_metric = metric

    def act(self, ctx: TickContext) -> None:
        record = ctx.lifecycle.registry.production(self.MODEL_NAME)
        if record is not None:
            self.caps = dict(record.model)

    def validate(self, ctx: TickContext) -> None:
        if self.last_metric is not None:
            ctx.lifecycle.observe_metric(self.MODEL_NAME, self.last_metric)
            ctx.lifecycle.evaluate(self.MODEL_NAME, day=ctx.day)

    def final_report(self) -> dict:
        return {
            "caps": dict(sorted(self.caps.items())),
            "deviation_from_target": _round(self.last_metric or 0.0),
        }


class AutotuneDriver(PipelineDriver):
    """Warm-start from the global model, fine-tune one app per day."""

    name = "autotune"
    layer = "infra"
    dirty_aware = True

    def __init__(
        self, n_apps: int = 20, runs_per_app: int = 6, seed: int = 0
    ) -> None:
        from repro.core.autotune import ApplicationTuner, benchmark_suite

        apps = benchmark_suite(n_apps=n_apps, rng=seed)
        self.benchmarks = apps[: max(8, n_apps // 2)]
        self.targets = apps[max(8, n_apps // 2) :]
        self.tuner = ApplicationTuner(rng=seed + 1)
        self.runs_per_app = runs_per_app
        self.results: list[dict] = []

    def learn(self, ctx: TickContext) -> None:
        if ctx.tick == 0:
            self.mark_dirty()
            self.tuner.fit_global(self.benchmarks)

    def act(self, ctx: TickContext) -> None:
        if not self.targets:
            return
        self.mark_dirty()
        app = self.targets[ctx.tick % len(self.targets)]
        trace = self.tuner.tune(app, n_runs=self.runs_per_app)
        self.results.append(
            {
                "app": app.app_id,
                "best_runtime": _round(trace.best_runtime),
                "runs": len(trace.runtimes),
            }
        )

    def final_report(self) -> dict:
        return {"tuned": self.results}


class JointTuningDriver(PipelineDriver):
    """One synchronized coordinate-descent round per day (Direction 3)."""

    name = "joint"
    layer = "engine"
    dirty_aware = True

    def __init__(self, objective, grid) -> None:
        self.objective = objective
        self.grid = grid
        self.config = grid.defaults()
        self.score: float | None = None
        self.cache: dict = {}
        self.rounds = 0
        self.evaluations = 0
        self.converged = False

    def learn(self, ctx: TickContext) -> None:
        from repro.core.joint import optimize_one

        if self.converged:
            return
        self.mark_dirty()
        before = dict(self.config)
        for name in self.grid.names:
            self.config, self.score, used = optimize_one(
                self.objective, self.grid, self.config, name, self.cache
            )
            self.evaluations += used
        self.rounds += 1
        if self.config == before:
            self.converged = True

    def final_report(self) -> dict:
        return {
            "config": {k: _round(v) for k, v in sorted(self.config.items())},
            "objective": _round(self.score) if self.score is not None else None,
            "rounds": self.rounds,
            "evaluations": self.evaluations,
            "converged": self.converged,
        }


# ---------------------------------------------------------------------------
# the standard fleet
# ---------------------------------------------------------------------------

#: Fast drivers every test scenario uses.
CORE_FLEET = (
    "steering",
    "cloudviews",
    "peregrine",
    "moneyball",
    "seagull",
    "doppler",
    "feedback",
)
#: Everything, including the heavier infra/engine tuners.
FULL_FLEET = CORE_FLEET + ("kea", "autotune", "joint")


@dataclass
class FleetConfig:
    """One seed, one knob set — everything the standard fleet needs."""

    seed: int = 0
    days: int = 7
    jobs_per_day: int = 8
    tenants: int = 14
    servers: int = 8
    customers: int = 48
    workers: int = 1
    include: tuple[str, ...] = CORE_FLEET
    kea_machines_per_sku: int = 6
    autotune_apps: int = 16
    joint_jobs: int = 3
    feedback_steps_per_day: int = 40
    #: None = stream iff jobs_per_day >= STREAMING_THRESHOLD.
    streaming: bool | None = None
    #: head of each day the plan-facing services sample when streaming.
    service_jobs_per_day: int = 64
    #: repository memory budget + spill target (streaming scale only).
    repo_memory_budget_mb: int | None = None
    repo_spill_dir: str | None = None
    #: None = prefetch day d+1 on the worker pool iff it can overlap
    #: (multi-core and the parallel substrate resolves to > 1 worker).
    overlap_prefetch: bool | None = None

    def __post_init__(self) -> None:
        unknown = set(self.include) - set(FULL_FLEET)
        if unknown:
            raise ValueError(f"unknown fleet services: {sorted(unknown)}")

    def resolve_streaming(self) -> bool:
        from repro.fabric.streams import STREAMING_THRESHOLD

        if self.streaming is not None:
            return self.streaming
        return self.jobs_per_day >= STREAMING_THRESHOLD


def build_fleet(plane, config: FleetConfig | None = None):
    """Register the standard multi-service scenario onto ``plane``.

    Builds the shared worlds (SCOPE workload, usage population,
    customer population) once, slices them into daily arrivals, and
    registers one driver per included service.  Returns the plane.
    """
    config = config or FleetConfig()
    include = set(config.include)

    if include & {"steering", "cloudviews", "peregrine", "joint"}:
        from repro.engine import (
            DefaultCardinalityEstimator,
            DefaultCostModel,
            Optimizer,
            TrueCardinalityModel,
        )
        from repro.workloads import ScopeWorkloadGenerator

        streaming = config.resolve_streaming()
        if streaming:
            # Million-job worlds: days come off the seeded stream as
            # the plane ticks; nothing beyond the current day is ever
            # materialized.  Plan-facing services sample each day's
            # head; the repository ingests the full stream columnar.
            from repro.fabric.streams import StreamingJobSource

            source = StreamingJobSource(
                config.seed,
                config.days,
                config.jobs_per_day,
                overlap=config.overlap_prefetch,
            )
            catalog = source.catalog
            job_pairs = source.pairs(config.service_jobs_per_day)
            jobs_by_day = source
            workload = None
        else:
            workload = ScopeWorkloadGenerator(rng=config.seed).generate(
                n_days=config.days
            )
            catalog = workload.catalog
            job_pairs = {
                day: [
                    (j.job_id, j.plan)
                    for j in workload.by_day(day)[: config.jobs_per_day]
                ]
                for day in range(config.days)
            }
            jobs_by_day = {
                day: list(workload.by_day(day)[: config.jobs_per_day])
                for day in range(config.days)
            }
        truth = TrueCardinalityModel(catalog, seed=config.seed)
        est_cost = DefaultCostModel(
            catalog, DefaultCardinalityEstimator(catalog)
        )
        true_cost = DefaultCostModel(catalog, truth)
        if "steering" in include:
            plane.register(
                SteeringDriver(
                    job_pairs,
                    Optimizer(catalog),
                    TrueCostFn(true_cost),
                    seed=config.seed,
                )
            )
        if "cloudviews" in include:
            plane.register(
                CloudViewsDriver(
                    catalog,
                    est_cost,
                    truth,
                    job_pairs,
                    workers=config.workers,
                )
            )
        if "peregrine" in include:
            plane.register(
                PeregrineDriver(
                    jobs_by_day,
                    workers=config.workers,
                    memory_budget_mb=config.repo_memory_budget_mb,
                    spill_dir=config.repo_spill_dir,
                )
            )
        if "joint" in include:
            from repro.core.joint import ParameterGrid, checkpoint_wave_objective

            if workload is None:
                # Joint tuning needs an eager workload object; at
                # streaming scale it gets its own small default world
                # (own catalog — its plans reference its fragments).
                workload = ScopeWorkloadGenerator(rng=config.seed).generate(
                    n_days=min(config.days, 7)
                )
                joint_truth = TrueCardinalityModel(
                    workload.catalog, seed=config.seed
                )
                world = {
                    "workload": workload,
                    "est_cost": DefaultCostModel(
                        workload.catalog,
                        DefaultCardinalityEstimator(workload.catalog),
                    ),
                    "true_cost": DefaultCostModel(
                        workload.catalog, joint_truth
                    ),
                    "optimizer": Optimizer(workload.catalog),
                }
            else:
                world = {
                    "workload": workload,
                    "est_cost": est_cost,
                    "true_cost": true_cost,
                    "optimizer": Optimizer(catalog),
                }
            plane.register(
                JointTuningDriver(
                    checkpoint_wave_objective(world, n_jobs=config.joint_jobs),
                    ParameterGrid(
                        {
                            "max_stage_seconds": (60.0, 30.0, 120.0),
                            "budget_fraction": (0.1, 0.3, 0.6),
                        }
                    ),
                )
            )

    if include & {"moneyball", "seagull"}:
        from repro.workloads import UsagePopulationConfig, generate_population

        population = generate_population(
            UsagePopulationConfig(
                n_tenants=config.tenants + config.servers, n_days=42
            ),
            rng=config.seed,
        )
        if "moneyball" in include:
            tenants = population[: config.tenants]
            arrivals = {
                day: tenants[day :: config.days] for day in range(config.days)
            }
            plane.register(MoneyballDriver(arrivals))
        if "seagull" in include:
            servers = [t for t in population if t.is_predictable][
                : config.servers
            ]
            plane.register(SeagullDriver(servers))

    if "doppler" in include:
        from repro.workloads import generate_customers

        historical = generate_customers(2 * config.customers, rng=config.seed)
        migrating = generate_customers(config.customers, rng=config.seed + 1)
        arrivals = {
            day: migrating[day :: config.days] for day in range(config.days)
        }
        plane.register(DopplerDriver(historical, arrivals, seed=config.seed))

    if "feedback" in include:
        plane.register(
            FeedbackDriver(
                days=config.days,
                steps_per_day=config.feedback_steps_per_day,
                seed=config.seed,
            )
        )

    if "kea" in include:
        plane.register(
            KeaDriver(
                n_machines_per_sku=config.kea_machines_per_sku,
                seed=config.seed,
            )
        )

    if "autotune" in include:
        plane.register(
            AutotuneDriver(n_apps=config.autotune_apps, seed=config.seed)
        )

    return plane
