"""Fault injection and retry policy for fabric stage execution.

Stage executions are wrapped in retry-with-backoff; a stage that
exhausts its attempts *degrades* (the driver's fallback runs, the tick
continues, the run never aborts).  :class:`FaultInjector` plants
deterministic faults at (service, stage, day) coordinates so the
retry/degrade machinery is testable end to end — injection happens at
stage *entry*, before the stage body touches service state, which keeps
retries idempotent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """The exception planted by :class:`FaultInjector`."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a stage gets and how backoff grows.

    Backoffs are *scheduled*: a failed attempt suspends its tick and
    the retry fires as a real DES event ``backoff(attempt)`` simulated
    days later (see :meth:`repro.fabric.plane.ControlPlane._run_stage`).
    The pending attempt is persisted on the service's durable
    :class:`~repro.fabric.store.ScheduleRecord`, so a process killed
    mid-backoff resumes at the pending attempt, never at attempt one.
    Each retry also records its backoff delay as the ``stage_retry``
    event value so backoff pressure is visible in telemetry.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultSpec:
    """One planted fault: fire ``times`` times at matching executions.

    ``day=None`` matches any day.  Each *attempt* that matches consumes
    one firing, so ``times=1`` exercises the retry path (first attempt
    fails, the retry succeeds) and ``times >= max_attempts`` exercises
    the degrade path.
    """

    service: str
    stage: str
    day: int | None = None
    times: int = 1

    def matches(self, service: str, stage: str, day: int) -> bool:
        return (
            self.times > 0
            and self.service == service
            and self.stage == stage
            and (self.day is None or self.day == day)
        )


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``service:stage[:day[:times]]``.

    Every malformed input raises a :class:`ValueError` naming the
    problem — an empty spec, an unknown stage, a non-integer or
    negative day, a times below one — never a bare unpack or ``int()``
    error.
    """
    from repro.fabric.pipeline import STAGES

    if not text or not text.strip():
        raise ValueError(
            "empty fault spec: expected service:stage[:day[:times]]"
        )
    parts = text.split(":")
    if len(parts) < 2 or len(parts) > 4 or not parts[0] or not parts[1]:
        raise ValueError(
            f"bad fault spec {text!r}: expected service:stage[:day[:times]]"
        )
    if parts[1] not in STAGES:
        raise ValueError(
            f"bad fault spec {text!r}: unknown stage {parts[1]!r}"
            f" (expected one of {', '.join(STAGES)})"
        )
    day = None
    if len(parts) > 2 and parts[2] != "*":
        try:
            day = int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}: day must be an integer or '*',"
                f" got {parts[2]!r}"
            ) from None
        if day < 0:
            raise ValueError(
                f"bad fault spec {text!r}: day must be >= 0, got {day}"
            )
    times = 1
    if len(parts) > 3:
        try:
            times = int(parts[3])
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}: times must be an integer,"
                f" got {parts[3]!r}"
            ) from None
    if times < 1:
        raise ValueError(f"bad fault spec {text!r}: times must be >= 1")
    return FaultSpec(service=parts[0], stage=parts[1], day=day, times=times)


def parse_fault_specs(texts: "list[str] | tuple[str, ...]") -> list[FaultSpec]:
    """Parse a batch of CLI fault specs, rejecting duplicate coordinates.

    Two specs planting faults at the same ``(service, stage, day)`` key
    are almost always a typo (the intent is one spec with a higher
    ``times``), so duplicates raise a :class:`ValueError` instead of
    silently double-firing.
    """
    specs: list[FaultSpec] = []
    seen: dict[tuple[str, str, int | None], str] = {}
    for text in texts:
        spec = parse_fault_spec(text)
        key = (spec.service, spec.stage, spec.day)
        if key in seen:
            raise ValueError(
                f"duplicate fault spec {text!r}: {seen[key]!r} already"
                f" targets {spec.service}.{spec.stage}"
                f" day {'*' if spec.day is None else spec.day}"
                " (use one spec with a larger times value)"
            )
        seen[key] = text
        specs.append(spec)
    return specs


@dataclass
class FaultInjector:
    """Deterministic fault planting for stage executions."""

    specs: list[FaultSpec] = field(default_factory=list)
    fired: int = 0

    def inject(
        self, service: str, stage: str, day: int | None = None, times: int = 1
    ) -> FaultSpec:
        spec = FaultSpec(service=service, stage=stage, day=day, times=times)
        self.specs.append(spec)
        return spec

    def check(self, service: str, stage: str, day: int) -> None:
        """Raise :class:`InjectedFault` when a planted fault matches."""
        for spec in self.specs:
            if spec.matches(service, stage, day):
                spec.times -= 1
                self.fired += 1
                raise InjectedFault(
                    f"injected fault: {service}.{stage} on day {day}"
                )
