"""Fault injection and retry policy for fabric stage execution.

Stage executions are wrapped in retry-with-backoff; a stage that
exhausts its attempts *degrades* (the driver's fallback runs, the tick
continues, the run never aborts).  :class:`FaultInjector` plants
deterministic faults at (service, stage, day) coordinates so the
retry/degrade machinery is testable end to end — injection happens at
stage *entry*, before the stage body touches service state, which keeps
retries idempotent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """The exception planted by :class:`FaultInjector`."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a stage gets and how backoff grows.

    Retries are sub-tick: the DES clock does not advance between
    attempts (ticks are instantaneous in simulated time), but each
    retry records its would-be backoff delay as the ``stage_retry``
    event value so backoff pressure is visible in telemetry.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultSpec:
    """One planted fault: fire ``times`` times at matching executions.

    ``day=None`` matches any day.  Each *attempt* that matches consumes
    one firing, so ``times=1`` exercises the retry path (first attempt
    fails, the retry succeeds) and ``times >= max_attempts`` exercises
    the degrade path.
    """

    service: str
    stage: str
    day: int | None = None
    times: int = 1

    def matches(self, service: str, stage: str, day: int) -> bool:
        return (
            self.times > 0
            and self.service == service
            and self.stage == stage
            and (self.day is None or self.day == day)
        )


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``service:stage[:day[:times]]``."""
    parts = text.split(":")
    if len(parts) < 2 or len(parts) > 4 or not parts[0] or not parts[1]:
        raise ValueError(
            f"bad fault spec {text!r}: expected service:stage[:day[:times]]"
        )
    day = int(parts[2]) if len(parts) > 2 and parts[2] != "*" else None
    times = int(parts[3]) if len(parts) > 3 else 1
    if times < 1:
        raise ValueError("fault times must be >= 1")
    return FaultSpec(service=parts[0], stage=parts[1], day=day, times=times)


@dataclass
class FaultInjector:
    """Deterministic fault planting for stage executions."""

    specs: list[FaultSpec] = field(default_factory=list)
    fired: int = 0

    def inject(
        self, service: str, stage: str, day: int | None = None, times: int = 1
    ) -> FaultSpec:
        spec = FaultSpec(service=service, stage=stage, day=day, times=times)
        self.specs.append(spec)
        return spec

    def check(self, service: str, stage: str, day: int) -> None:
        """Raise :class:`InjectedFault` when a planted fault matches."""
        for spec in self.specs:
            if spec.matches(service, stage, day):
                spec.times -= 1
                self.fired += 1
                raise InjectedFault(
                    f"injected fault: {service}.{stage} on day {day}"
                )
