"""The fabric's single model-deployment path.

Every learned model on the fabric flows through one
:class:`~repro.ml.registry.ModelRegistry` along one staged path::

    shadow -> flight -> promote            (healthy candidates)
                     -> abort              (flight lost on live traffic)
    proposal -> veto                       (guardrail refused the flight)
    production -> rollback                 (post-promotion regression)

:class:`ModelLifecycle` is that path.  Services never talk to the
registry's lifecycle methods directly on the fabric; they *propose*
candidates with before/after metrics and the
:class:`~repro.core.guardrails.RegressionGuardrail` decides whether the
candidate may even start flighting.  Every transition lands in an
ordered ``actions`` log (simulated-day stamped), which the control
plane mirrors into the observability runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.guardrails import RegressionGuardrail
from repro.ml.registry import ModelRegistry

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent


@dataclass
class LifecycleAction:
    """One transition on the deployment path (the audit unit)."""

    day: int
    action: str  # "shadow" | "flight" | "veto" | "promote" | "abort" | "rollback"
    name: str
    version: int | None = None
    reason: str = ""

    def to_events(self) -> "list[ObsEvent]":
        from repro.obs.events import ObsEvent, freeze_attributes

        attributes = {"model": self.name}
        if self.version is not None:
            attributes["version"] = self.version
        if self.reason:
            attributes["reason"] = self.reason
        return [
            ObsEvent(
                timestamp=float(self.day),
                layer="fabric",
                source="lifecycle",
                kind=self.action,
                attributes=freeze_attributes(attributes),
            )
        ]


class ModelLifecycle:
    """Guardrail-gated shadow/flight/promote/rollback over one registry."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        guardrail: RegressionGuardrail | None = None,
        flight_fraction: float = 0.2,
        min_samples: int = 10,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry(rng=0)
        self.guardrail = guardrail or RegressionGuardrail(tolerance=0.05)
        self.flight_fraction = flight_fraction
        self.min_samples = min_samples
        self.actions: list[LifecycleAction] = []

    def _record(
        self,
        day: int,
        action: str,
        name: str,
        version: int | None = None,
        reason: str = "",
    ) -> LifecycleAction:
        entry = LifecycleAction(day, action, name, version, reason)
        self.actions.append(entry)
        return entry

    # -- the deployment path -------------------------------------------------
    def shadow(
        self, name: str, model: Any, day: int = 0, metadata: dict | None = None
    ) -> int:
        """Register a candidate that observes but serves no traffic."""
        meta = dict(metadata or {})
        meta.setdefault("shadow_day", day)
        version = self.registry.register(name, model, metadata=meta)
        self._record(day, "shadow", name, version)
        return version

    def propose(
        self,
        name: str,
        model: Any,
        candidate_metric: float,
        baseline_metric: float | None = None,
        day: int = 0,
        metadata: dict | None = None,
    ) -> LifecycleAction:
        """Offer a candidate for deployment; the guardrail gates the flight.

        Metrics are error-style (lower is better).  With no production
        model yet the candidate is promoted directly (there is nothing
        to regress against); otherwise the regression guardrail reviews
        ``candidate_metric`` vs ``baseline_metric`` and either starts a
        flight or vetoes with a recorded reason.
        """
        if self.registry.production(name) is None:
            version = self.shadow(name, model, day=day, metadata=metadata)
            self.registry.promote(name, version)
            return self._record(day, "promote", name, version, "initial")
        if baseline_metric is None:
            baseline = self.registry.production(name)
            metrics = baseline.metrics if baseline is not None else []
            if not metrics:
                raise ValueError(
                    f"no baseline_metric given and no production metrics "
                    f"recorded for {name!r}"
                )
            baseline_metric = sum(metrics) / len(metrics)
        decision = self.guardrail.review(candidate_metric, baseline_metric)
        if not decision.approved:
            return self._record(day, "veto", name, reason=decision.reason)
        if self.registry.flighting(name) is not None:
            return self._record(
                day, "veto", name, reason="a flight is already active"
            )
        version = self.shadow(name, model, day=day, metadata=metadata)
        self.registry.flight(name, version, self.flight_fraction)
        return self._record(day, "flight", name, version)

    def observe_metric(self, name: str, value: float) -> None:
        """Record one live error-style metric on the serving record."""
        record = self.registry.serve(name)
        self.registry.record_metric(name, record.version, value)

    def evaluate(self, name: str, day: int = 0) -> bool | None:
        """Settle an active flight once it has enough live samples."""
        candidate = self.registry.flighting(name)
        if candidate is None:
            return None
        outcome = self.registry.evaluate_flight(
            name, min_samples=self.min_samples
        )
        if outcome is True:
            self._record(day, "promote", name, candidate.version)
        elif outcome is False:
            self._record(day, "abort", name, candidate.version)
        return outcome

    def rollback(self, name: str, day: int = 0, reason: str = "") -> int | None:
        """Revert production one promotion back; None when impossible."""
        try:
            version = self.registry.rollback(name)
        except RuntimeError as exc:
            self._record(day, "veto", name, reason=f"rollback refused: {exc}")
            return None
        self._record(day, "rollback", name, version, reason)
        return version

    # -- reporting -------------------------------------------------------------
    def serving_versions(self) -> dict[str, int]:
        """Model name -> production version, for deterministic reports."""
        names = sorted({a.name for a in self.actions})
        versions = {}
        for name in names:
            record = self.registry.production(name)
            if record is not None:
                versions[name] = record.version
        return versions

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for action in self.actions:
            counts[action.action] = counts.get(action.action, 0) + 1
        return {
            "actions": counts,
            "serving": self.serving_versions(),
            "guardrail_vetoes": sum(
                1 for d in self.guardrail.audit_log if not d.approved
            ),
        }
