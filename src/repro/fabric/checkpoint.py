"""Checkpoint/restore of full fabric state.

File format (``repro.fabric/checkpoint@1``, documented in DESIGN.md): a
single :mod:`pickle` (protocol 4) of::

    {
        "format": "repro.fabric/checkpoint@1",
        "state": {
            "day":      int,        # completed fabric days
            "now":      float,      # DES clock (days)
            "registry": ModelRegistry,
            "lifecycle": ModelLifecycle,     # shares the registry object
            "retry":    RetryPolicy,
            "injector": FaultInjector,
            "health":   FabricHealth,
            "mirrored": int,        # lifecycle actions already replayed to obs
            "bindings": [           # registration order
                {"name", "cadence_days", "next_due", "ticks", "driver"},
                ...
            ],
        },
    }

Everything is pickled in **one** dump, so object identity is preserved:
a driver holding the shared registry (e.g. the feedback loop) restores
pointing at the same registry instance the lifecycle owns.  The
observability runtime is *never* part of a checkpoint — drivers are
detached before pickling and the caller rebinds a (fresh or existing)
runtime on restore.  The persistent worker pool is excluded the same
way: the state dict above never references it, and the restored plane's
constructor takes a fresh (cold) pool handle that re-arms lazily on the
first parallel dispatch.  Pending DES events are not serialized either:
tick schedules are fully determined by each binding's ``next_due`` and
cadence, so restore simply re-arms every binding in registration order,
which reproduces the original execution order exactly.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.fabric.plane import ControlPlane
    from repro.obs.runtime import ObservabilityRuntime

#: Format tag written into (and required from) every checkpoint file.
CHECKPOINT_FORMAT = "repro.fabric/checkpoint@1"


def checkpoint_bytes(plane: "ControlPlane") -> bytes:
    """Serialize ``plane`` to checkpoint bytes (obs detached throughout)."""
    obs = plane._obs
    plane.bind(None)
    try:
        state = {
            "day": plane.day,
            "now": plane.queue.now,
            "registry": plane.registry,
            "lifecycle": plane.lifecycle,
            "retry": plane.retry,
            "injector": plane.injector,
            "health": plane.health,
            "mirrored": plane._lifecycle_mirrored,
            "bindings": [
                {
                    "name": b.name,
                    "cadence_days": b.cadence_days,
                    "next_due": b.next_due,
                    "ticks": b.ticks,
                    "driver": b.driver,
                }
                for b in plane.bindings
            ],
        }
        return pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "state": state}, protocol=4
        )
    finally:
        plane.bind(obs)


def save_checkpoint(plane: "ControlPlane", path) -> None:
    data = checkpoint_bytes(plane)
    Path(path).write_bytes(data)
    if plane._obs is not None:
        plane._obs.emit(
            "fabric",
            "fabric",
            "checkpoint",
            value=float(len(data)),
            timestamp=plane.queue.now,
            day=plane.day,
        )


def restore_from_bytes(
    data: bytes, obs: "ObservabilityRuntime | None" = None
) -> "ControlPlane":
    """Rebuild a :class:`ControlPlane` from checkpoint bytes."""
    from repro.fabric.plane import ControlPlane, ServiceBinding

    payload = pickle.loads(data)
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"not a fabric checkpoint (expected format {CHECKPOINT_FORMAT!r})"
        )
    state = payload["state"]
    plane = ControlPlane(
        registry=state["registry"],
        retry=state["retry"],
        injector=state["injector"],
    )
    plane.lifecycle = state["lifecycle"]
    plane.health = state["health"]
    plane.day = state["day"]
    plane._lifecycle_mirrored = state["mirrored"]
    plane.queue.now = state["now"]
    for index, saved in enumerate(state["bindings"]):
        binding = ServiceBinding(
            name=saved["name"],
            driver=saved["driver"],
            cadence_days=saved["cadence_days"],
            index=index,
            next_due=saved["next_due"],
            ticks=saved["ticks"],
        )
        plane.bindings.append(binding)
        plane._arm(binding)
    if obs is not None:
        plane.bind(obs)
        plane._emit("restore", value=float(plane.day))
    return plane


def load_checkpoint(path, obs: "ObservabilityRuntime | None" = None) -> "ControlPlane":
    return restore_from_bytes(Path(path).read_bytes(), obs=obs)
