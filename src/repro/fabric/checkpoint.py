"""Deprecated module-function checkpoint API (one-release shims).

The four functions that used to live here — :func:`checkpoint_bytes`,
:func:`save_checkpoint`, :func:`restore_from_bytes`,
:func:`load_checkpoint` — are superseded by
:class:`repro.fabric.store.CheckpointStore`, which adds format-version
negotiation (the legacy ``@1`` full pickle plus the ``@2`` base+delta
chain), per-service delta frames, and durable schedule records.  Each
shim below delegates to the store, emits a :class:`DeprecationWarning`
(an *error* inside this repo's test suite), and will be removed next
release.  Migration is mechanical::

    checkpoint_bytes(plane)        -> CheckpointStore(path).save(plane)  # or checkpoint_bytes_v1
    save_checkpoint(plane, path)   -> CheckpointStore(path, version=1).save(plane)
    restore_from_bytes(data)       -> pickle round-trip via CheckpointStore.load
    load_checkpoint(path, obs)     -> CheckpointStore.load(path, obs=obs)
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

from repro.fabric.store import FORMAT_V1, checkpoint_bytes_v1, restore_v1

if TYPE_CHECKING:
    from repro.fabric.plane import ControlPlane
    from repro.obs.runtime import ObservabilityRuntime

#: Format tag of the legacy single-pickle checkpoints these shims write.
CHECKPOINT_FORMAT = FORMAT_V1


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.fabric.checkpoint.{old}() is deprecated; use "
        f"repro.fabric.store.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def checkpoint_bytes(plane: "ControlPlane") -> bytes:
    """Deprecated: use :class:`~repro.fabric.store.CheckpointStore`."""
    _warn("checkpoint_bytes", "CheckpointStore.save")
    return checkpoint_bytes_v1(plane)


def save_checkpoint(plane: "ControlPlane", path) -> None:
    """Deprecated: use :meth:`CheckpointStore.save`."""
    _warn("save_checkpoint", "CheckpointStore(path).save")
    data = checkpoint_bytes_v1(plane)
    Path(path).write_bytes(data)
    if plane._obs is not None:
        plane._obs.emit(
            "fabric",
            "fabric",
            "checkpoint",
            value=float(len(data)),
            timestamp=plane.queue.now,
            day=plane.day,
        )


def restore_from_bytes(
    data: bytes, obs: "ObservabilityRuntime | None" = None
) -> "ControlPlane":
    """Deprecated: use :meth:`CheckpointStore.load`."""
    _warn("restore_from_bytes", "CheckpointStore.load")
    plane = restore_v1(pickle.loads(data))
    if obs is not None:
        plane.bind(obs)
        plane._emit("restore", value=float(plane.day))
    return plane


def load_checkpoint(path, obs: "ObservabilityRuntime | None" = None) -> "ControlPlane":
    """Deprecated: use :meth:`CheckpointStore.load`."""
    _warn("load_checkpoint", "CheckpointStore.load")
    from repro.fabric.store import CheckpointStore

    return CheckpointStore.load(path, obs=obs)
