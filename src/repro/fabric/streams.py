"""Streaming job sources: million-job worlds without the world in RAM.

The legacy fleet wiring materializes a full :class:`Workload` and
slices it into ``jobs_by_day`` dicts.  At 100k+ jobs per day that is
gigabytes of :class:`~repro.workloads.scope.Job` objects pinned for the
whole run.  :class:`StreamingJobSource` replaces the dicts with a
day-addressable view over :meth:`ScopeWorkloadGenerator.day_jobs`: a
tick generates its day on demand (bit-identical to the eager generator
at the same seed), every driver on the plane shares the one-day cache,
and the previous day's objects are garbage the moment the tick moves
on.

The source quacks like the dict the drivers already consume
(``.get(day, default)``), so :class:`SteeringDriver`,
:class:`CloudViewsDriver`, and :class:`PeregrineDriver` work unchanged;
:meth:`pairs` wraps it as the head-limited ``(job_id, plan)`` view the
plan-facing services expect.
"""

from __future__ import annotations

from repro.workloads.scope import (
    Job,
    ScopeWorkloadConfig,
    ScopeWorkloadGenerator,
)

#: jobs/day at or above which :func:`repro.fabric.fleet.build_fleet`
#: switches from eager worlds to streaming sources.
STREAMING_THRESHOLD = 1000


class StreamingJobSource:
    """Day-addressable job feed over the seeded streaming generator.

    Jobs for a day are generated on first access and cached until a
    different day is requested (capacity-1 cache: every driver ticks
    the same day, so one generation serves the whole fleet).  Days
    outside ``[0, days)`` return the default, mirroring the legacy
    per-day dict.  Pickles carry the generator (catalog + RNG day
    states, a few MB) but never the cached jobs, so checkpoints stay
    manifest-sized and a resumed source replays deterministically.
    """

    def __init__(
        self,
        seed: int,
        days: int,
        jobs_per_day: int,
        config: ScopeWorkloadConfig | None = None,
    ) -> None:
        if days < 1:
            raise ValueError("days must be >= 1")
        self.seed = seed
        self.days = days
        self.jobs_per_day = jobs_per_day
        self.config = config or ScopeWorkloadConfig.for_scale(jobs_per_day)
        self._generator = ScopeWorkloadGenerator(
            rng=seed, config=self.config
        )
        self._cache: tuple[int, list[Job]] | None = None

    @property
    def generator(self) -> ScopeWorkloadGenerator:
        return self._generator

    @property
    def catalog(self):
        """The live catalog (grows in place as days are generated)."""
        return self._generator.catalog

    def day_jobs(self, day: int) -> list[Job]:
        if self._cache is not None and self._cache[0] == day:
            return self._cache[1]
        jobs = self._generator.day_jobs(day)
        self._cache = (day, jobs)
        return jobs

    def get(self, day: int, default=None) -> list[Job]:
        """Dict-style access: the day's jobs, or ``default`` off-range."""
        if not 0 <= day < self.days:
            return default
        return self.day_jobs(day)

    def pairs(self, head: int | None = None) -> "JobPairsView":
        return JobPairsView(self, head)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_cache"] = None
        return state


class JobPairsView:
    """``(job_id, plan)`` pairs per day, optionally head-limited.

    The plan-facing services (steering, CloudViews) optimize every plan
    they see, so at streaming scale they sample the first ``head`` jobs
    of each day — the repository still ingests the full stream.
    """

    def __init__(self, source: StreamingJobSource, head: int | None) -> None:
        self.source = source
        self.head = head

    def get(self, day: int, default=None):
        jobs = self.source.get(day, [])
        if not jobs:
            return default
        if self.head is not None:
            jobs = jobs[: self.head]
        return [(job.job_id, job.plan) for job in jobs]
