"""Streaming job sources: million-job worlds without the world in RAM.

The legacy fleet wiring materializes a full :class:`Workload` and
slices it into ``jobs_by_day`` dicts.  At 100k+ jobs per day that is
gigabytes of :class:`~repro.workloads.scope.Job` objects pinned for the
whole run.  :class:`StreamingJobSource` replaces the dicts with a
day-addressable view over the seeded generator: a tick generates its
day on demand (bit-identical to the eager generator at the same seed),
every driver on the plane shares the one-day cache, and the previous
day's data is garbage the moment the tick moves on.

Two generation paths share the cache:

- :meth:`StreamingJobSource.day_batch` — the fused columnar path
  (:meth:`ScopeWorkloadGenerator.day_batch`): one day straight into
  :class:`~repro.core.peregrine.repository.JobBatch` columns, never a
  million-element job list.  This is what the fleet consumes.
- :meth:`StreamingJobSource.day_jobs` — the legacy per-job list, kept
  for callers that want :class:`Job` objects.

When overlap is enabled, accessing day ``d`` also submits day ``d+1``'s
generation to the persistent :class:`~repro.parallel.WorkerPool`: the
worker process replays the generator from the exact per-day RNG state
the parent hands it, so the prefetched batch is bit-identical to a
local build, and the returned day-``d+2`` RNG state keeps the parent's
replay chain seamless.  Futures are process-local and never pickled —
a checkpoint restored mid-overlap simply regenerates locally.

The source quacks like the dict the drivers already consume
(``.get(day, default)``), so :class:`SteeringDriver`,
:class:`CloudViewsDriver`, and :class:`PeregrineDriver` work unchanged;
:meth:`pairs` wraps it as the head-limited ``(job_id, plan)`` view the
plan-facing services expect (reading straight off the batch columns).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.parallel import get_pool, resolve_workers
from repro.workloads.scope import (
    Job,
    ScopeWorkloadConfig,
    ScopeWorkloadGenerator,
)

if TYPE_CHECKING:
    from repro.core.peregrine.repository import JobBatch

#: jobs/day at or above which :func:`repro.fabric.fleet.build_fleet`
#: switches from eager worlds to streaming sources.
STREAMING_THRESHOLD = 1000

#: Worker-process generator cache: one generator per world identity,
#: reused across prefetch tasks so catalog/template construction and
#: the per-day replay states are paid once per worker, not per day.
_PREFETCH_GENERATORS: dict[tuple, ScopeWorkloadGenerator] = {}


def _prefetch_day(payload: tuple) -> tuple["JobBatch", object]:
    """Worker task: build one day's batch on the warm pool.

    ``payload`` is ``(seed, days, jobs_per_day, config, day, state)``
    where ``state`` is the parent's cached RNG state at the start of
    ``day`` (or ``None``, forcing a from-scratch replay).  Returns the
    batch plus the generator's RNG state at the start of ``day + 1`` so
    the parent can extend its own replay chain without regenerating.
    Generation is pure given the seed/config/day, so the result is
    bit-identical to a parent-local :meth:`day_batch` call.
    """
    seed, days, jobs_per_day, config, day, state = payload
    key = (seed, days, jobs_per_day)
    generator = _PREFETCH_GENERATORS.get(key)
    if generator is None:
        generator = ScopeWorkloadGenerator(rng=seed, config=config)
        _PREFETCH_GENERATORS[key] = generator
    if state is not None:
        generator._day_states.setdefault(day, state)
    batch = generator.day_batch(day)
    return batch, generator._day_states[day + 1]


class StreamingJobSource:
    """Day-addressable job feed over the seeded streaming generator.

    Days are generated on first access and cached until a different day
    is requested (capacity-1 cache: every driver ticks the same day, so
    one generation serves the whole fleet).  Days outside ``[0, days)``
    return the default, mirroring the legacy per-day dict.  Pickles
    carry the generator (catalog + RNG day states, a few MB) but never
    cached days or in-flight prefetch futures, so checkpoints stay
    manifest-sized and a resumed source replays deterministically.

    ``overlap`` controls next-day prefetch on the shared worker pool:
    ``True``/``False`` force it, ``None`` (default) enables it only
    when more than one CPU is available and the parallel substrate
    would actually fan out (so single-core boxes and test runs never
    pay pool startup for a prefetch that can't overlap anything).
    """

    def __init__(
        self,
        seed: int,
        days: int,
        jobs_per_day: int,
        config: ScopeWorkloadConfig | None = None,
        overlap: bool | None = None,
    ) -> None:
        if days < 1:
            raise ValueError("days must be >= 1")
        self.seed = seed
        self.days = days
        self.jobs_per_day = jobs_per_day
        self.config = config or ScopeWorkloadConfig.for_scale(jobs_per_day)
        self.overlap = overlap
        self._generator = ScopeWorkloadGenerator(
            rng=seed, config=self.config
        )
        self._cache: tuple[int, list[Job]] | None = None
        self._batch_cache: tuple[int, "JobBatch"] | None = None
        self._pending: tuple[int, object] | None = None  # (day, Future)
        self.prefetch_hits = 0
        self.prefetch_misses = 0

    @property
    def generator(self) -> ScopeWorkloadGenerator:
        return self._generator

    @property
    def catalog(self):
        """The catalog (fully built at construction, shared fleet-wide)."""
        return self._generator.catalog

    # -- overlap ------------------------------------------------------------
    def overlap_enabled(self) -> bool:
        if self.overlap is not None:
            return self.overlap
        if (os.cpu_count() or 1) <= 1:
            return False
        return resolve_workers(2) > 1

    def _maybe_prefetch(self, day: int) -> None:
        if not 0 <= day < self.days or not self.overlap_enabled():
            return
        if self._pending is not None:
            return
        state = self._generator._day_states.get(day)
        payload = (
            self.seed, self.days, self.jobs_per_day, self.config, day, state,
        )
        try:
            future = get_pool().submit(_prefetch_day, payload)
        except Exception:
            return  # pool unavailable: next access generates locally
        self._pending = (day, future)

    def _take_prefetched(self, day: int) -> "JobBatch | None":
        pending = self._pending
        if pending is None:
            return None
        self._pending = None
        pending_day, future = pending
        if pending_day != day:
            future.cancel()
            return None
        try:
            batch, next_state = future.result()
        except Exception:
            self.prefetch_misses += 1
            return None  # worker died / pool torn down: regenerate
        self._generator._day_states.setdefault(day + 1, next_state)
        self.prefetch_hits += 1
        return batch

    # -- access -------------------------------------------------------------
    def day_batch(self, day: int) -> "JobBatch | None":
        """The day's fused columnar batch (``None`` off-range).

        Serves the capacity-1 batch cache, then a finished prefetch,
        then a local build — and queues day ``d+1``'s prefetch before
        returning, so generation overlaps the services consuming day
        ``d``.  All three paths are bit-identical.
        """
        if not 0 <= day < self.days:
            return None
        cached = self._batch_cache
        if cached is not None and cached[0] == day:
            return cached[1]
        batch = self._take_prefetched(day)
        if batch is None:
            batch = self._generator.day_batch(day)
        self._batch_cache = (day, batch)
        self._maybe_prefetch(day + 1)
        return batch

    def day_jobs(self, day: int) -> list[Job]:
        if self._cache is not None and self._cache[0] == day:
            return self._cache[1]
        jobs = self._generator.day_jobs(day)
        self._cache = (day, jobs)
        return jobs

    def get(self, day: int, default=None) -> list[Job]:
        """Dict-style access: the day's jobs, or ``default`` off-range."""
        if not 0 <= day < self.days:
            return default
        return self.day_jobs(day)

    def pairs(self, head: int | None = None) -> "JobPairsView":
        return JobPairsView(self, head)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_cache"] = None
        state["_batch_cache"] = None
        state["_pending"] = None
        return state


class JobPairsView:
    """``(job_id, plan)`` pairs per day, optionally head-limited.

    The plan-facing services (steering, CloudViews) optimize every plan
    they see, so at streaming scale they sample the first ``head`` jobs
    of each day — the repository still ingests the full stream.  Pairs
    are read straight off the shared day batch's columns (job ids plus
    the interned plan pool), so the plan-facing sample and the
    repository ingest share one generation per day.
    """

    def __init__(self, source: StreamingJobSource, head: int | None) -> None:
        self.source = source
        self.head = head

    def get(self, day: int, default=None):
        batch = self.source.day_batch(day)
        if batch is None or not len(batch):
            return default
        n = len(batch) if self.head is None else min(self.head, len(batch))
        plans = batch.plans
        codes = batch.plan_codes
        return [
            (batch.job_ids[i], plans[int(codes[i])]) for i in range(n)
        ]
