"""Durable schedule state and incremental checkpoints for the fabric.

This module is the fabric's persistence layer, in two halves:

**Schedule records.**  Every hosted pipeline owns a
:class:`ScheduleRecord` — interval, next-run time, tick count, paused
flag, and (when a stage is waiting out a retry backoff) a
:class:`RetryState`.  The records are the source of truth for
scheduling: the DES heap is only a cache rebuilt from them
(:meth:`~repro.fabric.plane.ControlPlane.rebuild_schedule`), which is
what lets a killed-and-restarted fleet resume exactly where it died,
including mid-backoff retries and paused services (the Pipelit
self-rescheduling pattern: each run persists its own next-run/retry
state instead of trusting an in-memory scheduler).

**Checkpoint store.**  :class:`CheckpointStore` is the one checkpoint
API.  It writes either of two formats and reads both:

- ``repro.fabric/checkpoint@1`` — the legacy single-pickle full
  snapshot (see DESIGN.md §6).  Still readable forever; written when
  the store is constructed with ``version=1``.
- ``repro.fabric/checkpoint@2`` — a **base snapshot plus an
  append-only chain of deltas**.  Each :meth:`CheckpointStore.save`
  appends one frame containing the always-changing core state
  (registry, lifecycle, health, clock) plus the serialized drivers of
  only the services that changed since the previous frame —
  *O(changed services)*, not *O(world)*.  Dirty services are found via
  :meth:`~repro.fabric.pipeline.PipelineDriver.mark_dirty` when the
  driver opts in (``dirty_aware = True``) and via a content-hash
  fallback otherwise.  :meth:`CheckpointStore.compact` collapses the
  chain back into a single base frame.

Cross-frame object identity is preserved with pickle persistent ids:
driver blobs never embed the shared :class:`~repro.ml.registry.
ModelRegistry` (or the lifecycle) — they reference it symbolically and
are re-attached to the restored instance on load, so a feedback loop
restored from a day-3 delta still mutates the same registry the
lifecycle owns.

A ``schedule.json`` sidecar (atomic replace) mirrors the latest
schedule records in human-readable form, so operators can inspect
where a crashed fleet will resume without unpickling anything.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.fabric.pipeline import PipelineDriver
    from repro.fabric.plane import ControlPlane
    from repro.obs.runtime import ObservabilityRuntime

#: Legacy full-pickle format tag (still written with ``version=1``).
FORMAT_V1 = "repro.fabric/checkpoint@1"
#: Base + append-only delta chain (the default).
FORMAT_V2 = "repro.fabric/checkpoint@2"
#: Chain file name used when the store is given a directory.
CHAIN_FILENAME = "fabric.ckpt"
#: Sidecar with the latest schedule records, as JSON.
SCHEDULE_FILENAME = "schedule.json"

#: Persistent-id tokens for objects shared between driver blobs and the
#: core frame.  Driver pickles reference these symbolically so every
#: frame — whichever day it was written — re-attaches to the restored
#: core instances.
_SHARED_TOKENS = ("@registry", "@lifecycle")


# ---------------------------------------------------------------------------
# schedule records
# ---------------------------------------------------------------------------


@dataclass
class RetryState:
    """A stage waiting out its backoff: the durable mid-tick position.

    ``attempt`` is the 1-based number of the *upcoming* attempt;
    ``resume_at`` is the DES time the retry fires.  ``day``/``tick``
    pin the interrupted tick's context and ``degraded`` carries the
    tick's degraded flag across the backoff, so a resumed process
    rebuilds the exact :class:`~repro.fabric.pipeline.TickContext`.
    """

    stage: str
    stage_index: int
    attempt: int
    resume_at: float
    day: int
    tick: int
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "stage_index": self.stage_index,
            "attempt": self.attempt,
            "resume_at": self.resume_at,
            "day": self.day,
            "tick": self.tick,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryState":
        return cls(**payload)


@dataclass
class ScheduleRecord:
    """One pipeline's durable schedule row (the Pipelit pattern).

    The control plane mutates these in place as ticks run; checkpoints
    persist them verbatim, and restore rebuilds the DES heap from them
    alone — pending events are never serialized.
    """

    name: str
    index: int
    cadence_days: float
    next_due: float
    ticks: int = 0
    paused: bool = False
    max_attempts: int = 3
    retry: RetryState | None = None

    @property
    def retries_remaining(self) -> int:
        """Attempts left for the stage currently (or next) executing."""
        if self.retry is None:
            return self.max_attempts
        return max(0, self.max_attempts - (self.retry.attempt - 1))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "cadence_days": self.cadence_days,
            "next_due": self.next_due,
            "ticks": self.ticks,
            "paused": self.paused,
            "max_attempts": self.max_attempts,
            "retries_remaining": self.retries_remaining,
            "retry": self.retry.to_dict() if self.retry else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScheduleRecord":
        retry = payload.get("retry")
        return cls(
            name=payload["name"],
            index=payload["index"],
            cadence_days=payload["cadence_days"],
            next_due=payload["next_due"],
            ticks=payload.get("ticks", 0),
            paused=payload.get("paused", False),
            max_attempts=payload.get("max_attempts", 3),
            retry=RetryState.from_dict(retry) if retry else None,
        )


# ---------------------------------------------------------------------------
# shared-reference pickling
# ---------------------------------------------------------------------------


class _SharedRefPickler(pickle.Pickler):
    """Pickle a driver, replacing shared core objects with tokens."""

    def __init__(self, buffer: io.BytesIO, shared: dict[int, str]) -> None:
        super().__init__(buffer, protocol=4)
        self._shared = shared

    def persistent_id(self, obj: object) -> str | None:  # noqa: D102
        return self._shared.get(id(obj))


class _SharedRefUnpickler(pickle.Unpickler):
    """Unpickle a driver, resolving tokens to the restored core objects."""

    def __init__(self, buffer: io.BytesIO, objects: dict[str, object]) -> None:
        super().__init__(buffer)
        self._objects = objects

    def persistent_load(self, pid: str) -> object:  # noqa: D102
        try:
            return self._objects[pid]
        except KeyError:
            raise pickle.UnpicklingError(f"unknown shared ref {pid!r}") from None


def _dumps_shared(obj: object, shared: dict[int, str]) -> bytes:
    buffer = io.BytesIO()
    _SharedRefPickler(buffer, shared).dump(obj)
    return buffer.getvalue()


def _loads_shared(data: bytes, objects: dict[str, object]) -> object:
    return _SharedRefUnpickler(io.BytesIO(data), objects).load()


#: Types never worth a persistent-id token (cheap to re-pickle, and
#: interning/caching makes their identity meaningless anyway).
_ATOMIC = (type(None), bool, int, float, complex, str, bytes)


def _frozen_entries(driver: "PipelineDriver") -> list[tuple[str, object]]:
    """Deterministic ``(token, object)`` pairs for a driver's frozen attrs.

    Walks the declared
    :attr:`~repro.fabric.pipeline.PipelineDriver.frozen_attrs` values,
    descending only through list/tuple/dict containers and addressing
    each node by attribute name, index, or key — never by hash or
    traversal order — so the identical walk over a *pickled copy* of the
    structure (the base frame's, in another process) yields the same
    token for the same logical object.  Delta frames tokenize every
    reference to these objects; load resolves the tokens against the
    base frame.
    """
    entries: list[tuple[str, object]] = []

    def walk(path: str, value: object) -> None:
        if isinstance(value, _ATOMIC):
            return
        entries.append((path, value))
        if isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                walk(f"{path}[{i}]", item)
        elif isinstance(value, dict):
            for key, item in value.items():
                if key is None or isinstance(key, (str, int, bool, float)):
                    walk(f"{path}[{key!r}]", item)

    for attr in type(driver).frozen_attrs:
        if attr in driver.__dict__:
            walk(f"@frozen:{attr}", driver.__dict__[attr])
    return entries


def _blob_hash(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# the checkpoint store
# ---------------------------------------------------------------------------


@dataclass
class SaveResult:
    """What one :meth:`CheckpointStore.save` wrote."""

    kind: str  # "full" (@1) | "base" | "delta"
    path: Path
    bytes_written: int
    saved: list[str] = field(default_factory=list)
    clean: list[str] = field(default_factory=list)


class CheckpointStore:
    """Save/load fabric checkpoints with format-version negotiation.

    ``CheckpointStore(path)`` writes the ``@2`` base+delta chain (the
    first :meth:`save` writes the base, later saves append deltas);
    ``CheckpointStore(path, version=1)`` writes the legacy ``@1`` full
    pickle.  :meth:`load` reads either format from a file or a store
    directory.  ``path`` may be a directory (the chain lives at
    ``<path>/fabric.ckpt`` with ``schedule.json`` beside it) or a file
    (the sidecar gains a ``.schedule.json`` suffix).
    """

    def __init__(self, path, version: int = 2) -> None:
        if version not in (1, 2):
            raise ValueError(f"unknown checkpoint version {version!r}")
        self.version = version
        self.path = self._resolve(Path(path))
        self._seq = 0
        self._has_base = False
        self._hashes: dict[str, str] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._adopt_chain()

    # -- paths -----------------------------------------------------------------
    @staticmethod
    def _resolve(path: Path) -> Path:
        if path.is_dir() or path.suffix == "":
            path.mkdir(parents=True, exist_ok=True)
            return path / CHAIN_FILENAME
        return path

    @property
    def schedule_path(self) -> Path:
        if self.path.name == CHAIN_FILENAME:
            return self.path.with_name(SCHEDULE_FILENAME)
        return self.path.with_name(self.path.name + ".schedule.json")

    # -- chain bookkeeping -------------------------------------------------------
    def _adopt_chain(self) -> None:
        """Continue an existing chain: pick up seq/hashes from its frames."""
        try:
            frames = self.frames()
        except (pickle.UnpicklingError, EOFError, ValueError):
            return  # a @1 file or corrupt chain: save() will refuse below
        for frame in frames:
            self._seq = frame["seq"] + 1
            if frame["kind"] == "base":
                self._has_base = True
                self._hashes = dict(frame["hashes"])
            else:
                self._hashes.update(frame["hashes"])

    def frames(self) -> list[dict]:
        """Every frame in the @2 chain, oldest first (introspection)."""
        frames: list[dict] = []
        with self.path.open("rb") as fh:
            while True:
                try:
                    frame = pickle.load(fh)
                except EOFError:
                    break
                if not isinstance(frame, dict) or frame.get("format") != FORMAT_V2:
                    raise ValueError(
                        f"{self.path} is not a {FORMAT_V2} chain"
                    )
                frames.append(frame)
        return frames

    def schedule(self) -> list[ScheduleRecord]:
        """The latest schedule records, from the JSON sidecar."""
        payload = json.loads(self.schedule_path.read_text())
        return [ScheduleRecord.from_dict(entry) for entry in payload["services"]]

    # -- saving ------------------------------------------------------------------
    def save(self, plane: "ControlPlane") -> SaveResult:
        """Persist ``plane``: @1 full pickle, or @2 base-then-deltas."""
        if self.version == 1:
            return self._save_v1(plane)
        if not self._has_base:
            return self.snapshot(plane)
        return self.delta(plane)

    def snapshot(self, plane: "ControlPlane") -> SaveResult:
        """Append a full base frame (every service, dirty or not)."""
        return self._append_frame(plane, kind="base")

    def delta(self, plane: "ControlPlane") -> SaveResult:
        """Append a delta frame holding only the changed services."""
        if self.version == 1:
            raise ValueError("@1 checkpoints are full pickles; deltas need version=2")
        if not self._has_base:
            raise ValueError(
                "no base snapshot in the chain yet: call save() or snapshot() first"
            )
        return self._append_frame(plane, kind="delta")

    def compact(self) -> int:
        """Collapse the chain to one base frame; returns frames removed.

        Restores the merged plane and writes it back as a single fresh
        base (so frozen attrs stripped from delta frames are re-inflated
        into full blobs), then atomically replaces the chain file.
        """
        frames = self.frames()
        if len(frames) <= 1:
            return 0
        plane = self._restore_v2()
        staging = CheckpointStore(self.path.with_name(self.path.name + ".tmp"))
        staging._seq = frames[-1]["seq"]
        staging.snapshot(plane)
        staging.schedule_path.replace(self.schedule_path)
        staging.path.replace(self.path)
        self._seq = staging._seq
        self._has_base = True
        self._hashes = dict(staging._hashes)
        return len(frames) - 1

    def _append_frame(self, plane: "ControlPlane", kind: str) -> SaveResult:
        obs = plane._obs
        plane.bind(None)
        try:
            shared = {
                id(plane.registry): "@registry",
                id(plane.lifecycle): "@lifecycle",
            }
            core = pickle.dumps(self._core_state(plane), protocol=4)
            services: dict[str, bytes] = {}
            hashes: dict[str, str] = {}
            clean: list[str] = []
            for binding in plane.bindings:
                driver = binding.driver
                if kind != "base" and type(driver).dirty_aware:
                    if not driver.dirty:
                        clean.append(binding.name)
                        continue
                    # Delta blobs tokenize references into the driver's
                    # frozen input worlds; load resolves them from the
                    # base frame's copy.
                    refs = dict(shared)
                    for token, obj in _frozen_entries(driver):
                        refs.setdefault(id(obj), token)
                    blob = _serialize_driver(driver, refs)
                else:
                    blob = _serialize_driver(driver, shared)
                    digest = _blob_hash(blob)
                    if kind != "base" and self._hashes.get(binding.name) == digest:
                        clean.append(binding.name)
                        continue
                    hashes[binding.name] = digest
                services[binding.name] = blob
            frame = {
                "format": FORMAT_V2,
                "kind": kind,
                "seq": self._seq,
                "day": plane.day,
                "core": core,
                "services": services,
                "hashes": hashes,
                "schedule": [b.record.to_dict() for b in plane.bindings],
                "clean": clean,
            }
            data = pickle.dumps(frame, protocol=4)
            # A fresh base supersedes the whole chain; deltas append.
            mode = "wb" if kind == "base" else "ab"
            with self.path.open(mode) as fh:
                fh.write(data)
            self._write_schedule(plane)
            self._seq += 1
            self._has_base = True
            self._hashes.update(hashes)
            for binding in plane.bindings:
                binding.driver.clear_dirty()
        finally:
            plane.bind(obs)
        self._emit_saved(plane, kind, len(data), list(services), clean)
        return SaveResult(
            kind=kind,
            path=self.path,
            bytes_written=len(data),
            saved=sorted(services),
            clean=sorted(clean),
        )

    def _save_v1(self, plane: "ControlPlane") -> SaveResult:
        data = checkpoint_bytes_v1(plane)
        self.path.write_bytes(data)
        self._write_schedule(plane)
        self._emit_saved(plane, "full", len(data), [b.name for b in plane.bindings], [])
        return SaveResult(
            kind="full",
            path=self.path,
            bytes_written=len(data),
            saved=sorted(b.name for b in plane.bindings),
        )

    def _write_schedule(self, plane: "ControlPlane") -> None:
        payload = {
            "format": FORMAT_V2 if self.version == 2 else FORMAT_V1,
            "day": plane.day,
            "now": plane.queue.now,
            "services": [b.record.to_dict() for b in plane.bindings],
        }
        tmp = self.schedule_path.with_name(self.schedule_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(self.schedule_path)

    @staticmethod
    def _core_state(plane: "ControlPlane") -> dict:
        from repro.parallel import get_tuner

        return {
            "day": plane.day,
            "now": plane.queue.now,
            "registry": plane.registry,
            "lifecycle": plane.lifecycle,
            "retry": plane.retry,
            "injector": plane.injector,
            "health": plane.health,
            "mirrored": plane._lifecycle_mirrored,
            "total_ticks": plane.total_ticks,
            # The process-wide granularity tuner rides every frame so a
            # killed-and-restored fleet resumes with its trained cost
            # model instead of re-exploring dispatch granularity.
            "tuner": get_tuner().state_dict(),
        }

    def _emit_saved(
        self,
        plane: "ControlPlane",
        kind: str,
        n_bytes: int,
        saved: list[str],
        clean: list[str],
    ) -> None:
        if plane._obs is None:
            return
        plane._obs.emit(
            "fabric",
            "fabric",
            "checkpoint_delta" if kind == "delta" else "checkpoint",
            value=float(n_bytes),
            timestamp=plane.queue.now,
            day=plane.day,
            kind_of_save=kind,
            saved=len(saved),
            clean=len(clean),
        )

    # -- loading -----------------------------------------------------------------
    @classmethod
    def load(
        cls, path, obs: "ObservabilityRuntime | None" = None
    ) -> "ControlPlane":
        """Rebuild a plane from ``path`` — @1 file, @2 chain, or store dir."""
        chain = cls._resolve(Path(path))
        with chain.open("rb") as fh:
            first = pickle.load(fh)
        if not isinstance(first, dict):
            raise ValueError(f"{chain} is not a fabric checkpoint")
        fmt = first.get("format")
        if fmt == FORMAT_V1:
            plane = restore_v1(first)
        elif fmt == FORMAT_V2:
            plane = cls(chain)._restore_v2()
        else:
            raise ValueError(
                f"not a fabric checkpoint (expected format {FORMAT_V1!r}"
                f" or {FORMAT_V2!r}, got {fmt!r})"
            )
        if obs is not None:
            with obs.span("fabric.checkpoint.load", layer="fabric", day=plane.day):
                plane.bind(obs)
                plane._emit("restore", value=float(plane.day))
        return plane

    def _restore_v2(self) -> "ControlPlane":
        frames = self.frames()
        if not frames:
            raise ValueError(f"{self.path} holds no checkpoint frames")
        core_bytes, blobs, _, schedule, _, base_blobs = self._merge(frames)
        core = pickle.loads(core_bytes)
        plane = _plane_from_core(core)
        objects = {"@registry": plane.registry, "@lifecycle": plane.lifecycle}
        records = sorted(
            (ScheduleRecord.from_dict(entry) for entry in schedule),
            key=lambda r: r.index,
        )
        from repro.fabric.plane import ServiceBinding

        for record in records:
            if record.name not in blobs:
                raise ValueError(
                    f"checkpoint chain is missing service {record.name!r}"
                )
            blob = blobs[record.name]
            base_blob = base_blobs.get(record.name)
            if base_blob is not None and blob is not base_blob:
                # The newest blob came from a delta frame, which may
                # reference the driver's frozen input worlds by token:
                # unpickle the base frame's copy and resolve against it.
                donor = _loads_shared(base_blob, objects)
                refs = dict(objects)
                for token, obj in _frozen_entries(donor):
                    refs[token] = obj
                driver = _loads_shared(blob, refs)
            else:
                driver = _loads_shared(blob, objects)
            plane.bindings.append(ServiceBinding(driver=driver, record=record))
        plane.rebuild_schedule()
        return plane

    @staticmethod
    def _merge(frames: list[dict]):
        """Fold a chain: newest core/schedule, newest blob per service."""
        base_at = max(
            (i for i, f in enumerate(frames) if f["kind"] == "base"), default=None
        )
        if base_at is None:
            raise ValueError("checkpoint chain has no base frame")
        live = frames[base_at:]
        services: dict[str, bytes] = {}
        hashes: dict[str, str] = {}
        for frame in live:
            services.update(frame["services"])
            hashes.update(frame["hashes"])
        last = live[-1]
        return (
            last["core"],
            services,
            hashes,
            last["schedule"],
            last["day"],
            live[0]["services"],
        )


def _serialize_driver(driver: "PipelineDriver", shared: dict[int, str]) -> bytes:
    """Pickle one driver with shared refs tokenized and dirty flag stripped."""
    had_flag = "_fabric_dirty" in driver.__dict__
    flag = driver.__dict__.pop("_fabric_dirty", None)
    try:
        return _dumps_shared(driver, shared)
    finally:
        if had_flag:
            driver.__dict__["_fabric_dirty"] = flag


def _plane_from_core(core: dict) -> "ControlPlane":
    from repro.fabric.plane import ControlPlane

    tuner_state = core.get("tuner")  # absent in pre-tuner checkpoints
    if tuner_state is not None:
        from repro.parallel import get_tuner

        get_tuner().load_state_dict(tuner_state)
    plane = ControlPlane(
        registry=core["registry"],
        retry=core["retry"],
        injector=core["injector"],
    )
    plane.lifecycle = core["lifecycle"]
    plane.health = core["health"]
    plane.day = core["day"]
    plane._lifecycle_mirrored = core["mirrored"]
    plane.total_ticks = core.get("total_ticks", 0)
    plane.queue.now = core["now"]
    return plane


# ---------------------------------------------------------------------------
# the @1 format (kept bit-compatible with the original module functions)
# ---------------------------------------------------------------------------


def checkpoint_bytes_v1(plane: "ControlPlane") -> bytes:
    """Serialize ``plane`` to a @1 single-pickle snapshot."""
    obs = plane._obs
    plane.bind(None)
    try:
        state = {
            "day": plane.day,
            "now": plane.queue.now,
            "registry": plane.registry,
            "lifecycle": plane.lifecycle,
            "retry": plane.retry,
            "injector": plane.injector,
            "health": plane.health,
            "mirrored": plane._lifecycle_mirrored,
            "total_ticks": plane.total_ticks,
            "bindings": [
                {
                    "name": b.name,
                    "cadence_days": b.cadence_days,
                    "next_due": b.next_due,
                    "ticks": b.ticks,
                    "paused": b.record.paused,
                    "retry_state": (
                        b.record.retry.to_dict() if b.record.retry else None
                    ),
                    "max_attempts": b.record.max_attempts,
                    "driver": b.driver,
                }
                for b in plane.bindings
            ],
        }
        return pickle.dumps({"format": FORMAT_V1, "state": state}, protocol=4)
    finally:
        plane.bind(obs)


def restore_v1(payload: dict) -> "ControlPlane":
    """Rebuild a plane from an unpickled @1 envelope."""
    from repro.fabric.plane import ServiceBinding

    if not isinstance(payload, dict) or payload.get("format") != FORMAT_V1:
        raise ValueError(
            f"not a fabric checkpoint (expected format {FORMAT_V1!r})"
        )
    state = payload["state"]
    plane = _plane_from_core(
        {
            "registry": state["registry"],
            "retry": state["retry"],
            "injector": state["injector"],
            "lifecycle": state["lifecycle"],
            "health": state["health"],
            "day": state["day"],
            "mirrored": state["mirrored"],
            "total_ticks": state.get("total_ticks", 0),
            "now": state["now"],
        }
    )
    for index, saved in enumerate(state["bindings"]):
        retry_state = saved.get("retry_state")
        record = ScheduleRecord(
            name=saved["name"],
            index=index,
            cadence_days=saved["cadence_days"],
            next_due=saved["next_due"],
            ticks=saved["ticks"],
            paused=saved.get("paused", False),
            max_attempts=saved.get("max_attempts", plane.retry.max_attempts),
            retry=RetryState.from_dict(retry_state) if retry_state else None,
        )
        plane.bindings.append(
            ServiceBinding(driver=saved["driver"], record=record)
        )
    plane.rebuild_schedule()
    return plane


def records_for(plane: "ControlPlane") -> "Iterable[ScheduleRecord]":
    """The plane's live schedule records, in registration order."""
    return [b.record for b in plane.bindings]
