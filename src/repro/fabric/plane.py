"""The control plane: every autonomous service on one shared fabric.

:class:`ControlPlane` hosts :class:`~repro.fabric.pipeline.PipelineDriver`
instances as scheduled feedback pipelines:

- **one scheduler** — ticks run on the DES
  :class:`~repro.infra.des.EventQueue` at per-service cadences
  (simulated days), so multi-service scenarios interleave exactly as a
  shared production fleet would.  The heap is only a *cache*: every
  binding's durable :class:`~repro.fabric.store.ScheduleRecord`
  (next-due time, tick count, paused flag, pending retry) is the
  source of truth, and :meth:`ControlPlane.rebuild_schedule` re-derives
  the heap from the records — which is what lets a killed process
  resume exactly, mid-backoff retries included;
- **one model path** — learned models flow through the plane's
  :class:`~repro.fabric.lifecycle.ModelLifecycle` (one
  :class:`~repro.ml.registry.ModelRegistry`, guardrail-gated
  shadow/flight/promote/rollback);
- **one failure story** — every stage execution is wrapped in
  retry-with-backoff and a degrade-to-default fallback
  (:mod:`repro.fabric.faults`).  Retry backoffs are *scheduled*: a
  failing stage suspends its tick, persists a
  :class:`~repro.fabric.store.RetryState` on the schedule record, and
  resumes as a real DES event ``backoff`` days later — so a crash
  during a backoff window restarts at the pending attempt, never at
  attempt one;
- **one telemetry substrate** — stage spans, health events, and
  lifecycle transitions all land in the bound
  :class:`~repro.obs.runtime.ObservabilityRuntime`.

State between ticks is fully picklable, which is what makes
:mod:`repro.fabric.store` possible: snapshot at any tick boundary,
restore in a fresh process, and the remaining days replay
byte-identically.  Attach a :class:`~repro.fabric.store.CheckpointStore`
with :meth:`ControlPlane.attach_store` and the plane persists a delta
frame after every tick — the durability mode the ``repro chaos``
harness kills and resumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.guardrails import RegressionGuardrail
from repro.fabric.faults import FaultInjector, RetryPolicy
from repro.fabric.lifecycle import ModelLifecycle
from repro.fabric.pipeline import PipelineDriver, StageOutcome, TickContext
from repro.fabric.store import RetryState, ScheduleRecord
from repro.infra.des import EventQueue
from repro.ml.registry import ModelRegistry
from repro.parallel import get_pool

if TYPE_CHECKING:
    from repro.fabric.store import CheckpointStore
    from repro.obs.runtime import ObservabilityRuntime

#: One simulated day in DES clock units.
DAY = 1.0
#: Per-service scheduling offset: keeps concurrent ticks at distinct
#: timestamps (registration order), so resumed runs re-arm into exactly
#: the original execution order without relying on heap tie-breaking.
TICK_EPS = 1e-6
#: Margin keeping next-day ticks out of the current run window.
_RUN_MARGIN = 1e-9


@dataclass
class ServiceBinding:
    """One hosted pipeline: the driver plus its durable schedule record.

    Scheduling state lives entirely on :attr:`record` (a
    :class:`~repro.fabric.store.ScheduleRecord`); the read-only
    properties below are views onto it, so checkpoints that persist the
    record persist everything the scheduler knows.
    """

    driver: PipelineDriver
    record: ScheduleRecord

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def index(self) -> int:
        return self.record.index

    @property
    def cadence_days(self) -> float:
        return self.record.cadence_days

    @property
    def next_due(self) -> float:
        return self.record.next_due

    @property
    def ticks(self) -> int:
        return self.record.ticks

    @property
    def paused(self) -> bool:
        return self.record.paused

    def due_day(self) -> int:
        return int(self.record.next_due)


@dataclass
class FabricHealth:
    """Per-(service, stage) stage-execution counters."""

    counters: dict[tuple[str, str], dict[str, int]] = field(default_factory=dict)
    outcomes: list[StageOutcome] = field(default_factory=list)

    def record(self, outcome: StageOutcome) -> None:
        bucket = self.counters.setdefault(
            (outcome.service, outcome.stage),
            {"ok": 0, "retried": 0, "degraded": 0, "attempts": 0},
        )
        bucket[outcome.status] += 1
        bucket["attempts"] += outcome.attempts
        self.outcomes.append(outcome)

    def total(self, status: str) -> int:
        return sum(bucket[status] for bucket in self.counters.values())

    def summary(self) -> dict:
        """JSON-able rollup keyed ``service.stage`` (sorted)."""
        return {
            "stages": {
                f"{service}.{stage}": dict(bucket)
                for (service, stage), bucket in sorted(self.counters.items())
            },
            "ok": self.total("ok"),
            "retried": self.total("retried"),
            "degraded": self.total("degraded"),
        }


class ControlPlane:
    """Host, schedule, guard, and checkpoint a fleet of pipelines."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        guardrail: RegressionGuardrail | None = None,
        retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry(rng=0)
        self.lifecycle = ModelLifecycle(self.registry, guardrail)
        self.retry = retry or RetryPolicy()
        self.injector = injector or FaultInjector()
        self.health = FabricHealth()
        self.bindings: list[ServiceBinding] = []
        self.queue = EventQueue()
        self.day = 0
        #: Completed ticks across every service — the deterministic
        #: global counter the chaos harness keys its kill point on.
        self.total_ticks = 0
        #: Called after every completed tick as ``hook(plane, binding,
        #: ctx)``.  Process-local (never checkpointed); the chaos
        #: harness installs its SIGKILL trigger here.
        self.tick_hook: Callable[["ControlPlane", ServiceBinding, TickContext], None] | None = None
        # The fabric owns the persistent worker pool's lifecycle: the
        # handle is cheap (workers start lazily on the first parallel
        # dispatch), is reused across every tick and simulated day,
        # is never checkpointed (see fabric.store — restore gets a
        # fresh handle here, re-armed on next use), and is shut down by
        # ``close()``.
        self.pool = get_pool()
        self._obs: "ObservabilityRuntime | None" = None
        self._store: "CheckpointStore | None" = None
        self._lifecycle_mirrored = 0
        if obs is not None:
            self.bind(obs)

    # -- observability ---------------------------------------------------------
    def bind(self, obs: "ObservabilityRuntime | None") -> "ControlPlane":
        """Attach (or detach, with ``None``) the observability runtime."""
        self._obs = obs
        self.queue.bind(obs)
        self.pool.bind(obs)
        for binding in self.bindings:
            binding.driver.bind_obs(obs)
        return self

    def _span(self, name: str, **attributes: object):
        if self._obs is None:
            from contextlib import nullcontext

            return nullcontext()
        return self._obs.span(name, layer="fabric", **attributes)

    def _emit(self, kind: str, value: float = 1.0, **attributes: object) -> None:
        if self._obs is not None:
            self._obs.emit(
                "fabric",
                "fabric",
                kind,
                value=value,
                timestamp=self.queue.now,
                **attributes,
            )

    def _mirror_lifecycle(self) -> None:
        """Replay lifecycle transitions recorded since the last tick."""
        fresh = self.lifecycle.actions[self._lifecycle_mirrored :]
        self._lifecycle_mirrored = len(self.lifecycle.actions)
        if fresh and self._obs is not None:
            self._obs.replay(fresh)

    # -- registration ----------------------------------------------------------
    def register(
        self,
        driver: PipelineDriver,
        cadence_days: float = 1.0,
        start_day: int = 0,
    ) -> ServiceBinding:
        """Host ``driver`` as a pipeline ticking every ``cadence_days``."""
        if cadence_days <= 0:
            raise ValueError("cadence_days must be positive")
        if start_day < self.day:
            raise ValueError(
                f"start_day {start_day} is before fabric day {self.day}"
            )
        if any(b.name == driver.name for b in self.bindings):
            raise ValueError(f"service {driver.name!r} already registered")
        driver.stages()  # validates the driver declares at least one stage
        index = len(self.bindings)
        record = ScheduleRecord(
            name=driver.name,
            index=index,
            cadence_days=float(cadence_days),
            next_due=start_day * DAY + index * TICK_EPS,
            max_attempts=self.retry.max_attempts,
        )
        binding = ServiceBinding(driver=driver, record=record)
        self.bindings.append(binding)
        driver.bind_obs(self._obs)
        self._arm(binding)
        return binding

    def service_names(self) -> list[str]:
        return [b.name for b in self.bindings]

    def _binding_for(self, name: str) -> ServiceBinding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise KeyError(f"no service {name!r} on the fabric")

    # -- pause / resume ----------------------------------------------------------
    def pause(self, name: str) -> None:
        """Stop ``name`` ticking: schedule slots pass without stages.

        The paused flag lives on the durable schedule record, so a
        fleet checkpointed (or killed) while paused resumes paused.  A
        pending retry is abandoned — the suspended tick never completes.
        """
        self._binding_for(name).record.paused = True
        self._emit("service_paused", service=name)

    def unpause(self, name: str) -> None:
        """Let ``name`` tick again from its next schedule slot."""
        self._binding_for(name).record.paused = False
        self._emit("service_unpaused", service=name)

    # -- scheduling ------------------------------------------------------------
    def _arm(self, binding: ServiceBinding) -> None:
        self.queue.schedule(
            binding.record.next_due,
            lambda: self._tick(binding),
            label=f"fabric.{binding.name}.tick",
        )

    def _arm_retry(self, binding: ServiceBinding) -> None:
        self.queue.schedule(
            binding.record.retry.resume_at,
            lambda: self._tick(binding),
            label=f"fabric.{binding.name}.retry",
        )

    def rebuild_schedule(self) -> int:
        """Re-derive the DES heap from the durable schedule records.

        The heap is a cache; this is its miss path.  Every binding is
        re-armed at its record's ``next_due`` — or, when a retry was
        pending, at the retry's ``resume_at`` — in registration order,
        reproducing the original execution order exactly.  Returns the
        number of stale events dropped.
        """
        dropped = self.queue.clear()
        for binding in self.bindings:
            if binding.record.retry is not None:
                self._arm_retry(binding)
            else:
                self._arm(binding)
        return dropped

    def _advance(self, record: ScheduleRecord) -> None:
        """Move ``next_due`` to the next cadence slot after ``now``.

        When a long backoff pushed a tick's completion past one or more
        cadence slots, the missed slots are skipped (the Pipelit rule:
        reschedule relative to *now*, never replay a backlog).
        """
        record.next_due += record.cadence_days * DAY
        while record.next_due < self.queue.now:
            record.next_due += record.cadence_days * DAY

    def _tick(self, binding: ServiceBinding) -> None:
        record = binding.record
        if record.paused:
            record.retry = None
            self._emit(
                "tick_skipped", service=binding.name, day=int(self.queue.now)
            )
            self._advance(record)
            self._arm(binding)
            self._persist()
            return
        retry = record.retry
        if retry is None:
            ctx = TickContext(
                day=int(self.queue.now),
                tick=record.ticks,
                now=self.queue.now,
                lifecycle=self.lifecycle,
            )
            start_index, attempt = 0, 1
        else:
            # Resuming a suspended tick: the context is pinned to the
            # tick's original day/tick so stage behaviour (and reports)
            # match the uninterrupted execution.
            ctx = TickContext(
                day=retry.day,
                tick=retry.tick,
                now=self.queue.now,
                lifecycle=self.lifecycle,
                degraded=retry.degraded,
            )
            start_index, attempt = retry.stage_index, retry.attempt
        stages = binding.driver.stages()
        suspended = False
        with self._span(
            f"fabric.{binding.name}.tick", day=ctx.day, tick=ctx.tick
        ):
            for index in range(start_index, len(stages)):
                stage, fn = stages[index]
                first_attempt = attempt if index == start_index else 1
                if not self._run_stage(
                    binding, stage, index, fn, ctx, first_attempt
                ):
                    suspended = True
                    break
        self._mirror_lifecycle()
        if suspended:
            self._persist()
            return
        record.ticks += 1
        self.total_ticks += 1
        self._advance(record)
        self._arm(binding)
        self._persist()
        if self.tick_hook is not None:
            self.tick_hook(self, binding, ctx)

    def _run_stage(self, binding, stage, stage_index, fn, ctx, attempt) -> bool:
        """Run one attempt of ``stage``; False means the tick suspended.

        A failure below ``max_attempts`` persists a
        :class:`~repro.fabric.store.RetryState` on the schedule record
        and arms a resume event ``backoff(attempt)`` days out — the
        retry survives checkpoints and crashes.  Exhaustion degrades the
        stage (driver fallback) and the tick continues.
        """
        record = binding.record
        error: Exception | None = None
        try:
            with self._span(
                f"fabric.{binding.name}.{stage}", day=ctx.day, attempt=attempt
            ):
                self.injector.check(binding.name, stage, ctx.day)
                fn(ctx)
        except Exception as exc:  # noqa: BLE001 — fault boundary
            error = exc
        if error is None:
            record.retry = None
            status = "ok" if attempt == 1 else "retried"
            if status == "ok":
                self._emit("stage_ok", service=binding.name, stage=stage)
            else:
                self._emit(
                    "stage_recovered",
                    value=float(attempt),
                    service=binding.name,
                    stage=stage,
                )
            self.health.record(
                StageOutcome(
                    service=binding.name,
                    stage=stage,
                    day=ctx.day,
                    attempts=attempt,
                    status=status,
                )
            )
            return True
        # The stage body may have partially executed before raising, so
        # the driver's next delta must include it regardless of flags.
        binding.driver.mark_dirty()
        if attempt < self.retry.max_attempts:
            backoff = self.retry.backoff(attempt)
            self._emit(
                "stage_retry",
                value=backoff,
                service=binding.name,
                stage=stage,
                attempt=attempt,
            )
            record.retry = RetryState(
                stage=stage,
                stage_index=stage_index,
                attempt=attempt + 1,
                resume_at=self.queue.now + backoff,
                day=ctx.day,
                tick=ctx.tick,
                degraded=ctx.degraded,
            )
            self._arm_retry(binding)
            return False
        record.retry = None
        ctx.degraded = True
        binding.driver.degrade(stage, ctx)
        self._emit(
            "stage_degraded",
            service=binding.name,
            stage=stage,
            error=type(error).__name__,
        )
        self.health.record(
            StageOutcome(
                service=binding.name,
                stage=stage,
                day=ctx.day,
                attempts=attempt,
                status="degraded",
                error=str(error),
            )
        )
        return True

    def run_days(self, n_days: int) -> "ControlPlane":
        """Advance the fabric ``n_days`` simulated days."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        horizon = (self.day + n_days) * DAY
        with self._span(
            "fabric.run", from_day=self.day, to_day=self.day + n_days
        ):
            self.queue.run(until=horizon - _RUN_MARGIN)
        self.day += n_days
        self._emit("run_complete", value=float(n_days))
        return self

    # -- resources -------------------------------------------------------------
    def close(self) -> None:
        """Release fabric-owned resources: shut the worker pool down.

        Safe at any point — a later ``run_days`` simply re-arms a fresh
        pool on its first parallel dispatch.  Also runs on ``with``
        exit.
        """
        self.pool.shutdown()

    def __enter__(self) -> "ControlPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoint ------------------------------------------------------------
    def attach_store(self, store: "CheckpointStore | None") -> "ControlPlane":
        """Persist a checkpoint frame after every tick (durability mode).

        The attached store is process-local state (never pickled);
        re-attach after a restore to keep appending to the same chain.
        """
        self._store = store
        return self

    def _persist(self) -> None:
        if self._store is not None:
            self._store.save(self)

    def checkpoint(self, path, version: int = 2) -> None:
        """Snapshot fabric state to ``path`` (see :mod:`repro.fabric.store`)."""
        from repro.fabric.store import CheckpointStore

        CheckpointStore(path, version=version).save(self)

    @classmethod
    def restore(cls, path, obs: "ObservabilityRuntime | None" = None) -> "ControlPlane":
        """Rebuild a plane from a checkpoint and re-arm its schedule."""
        from repro.fabric.store import CheckpointStore

        return CheckpointStore.load(path, obs=obs)

    # -- reporting -------------------------------------------------------------
    def final_report(self) -> dict:
        """Deterministic whole-run summary (services + lifecycle + health)."""
        return {
            "days": self.day,
            "services": {
                b.name: {
                    "ticks": b.ticks,
                    "cadence_days": b.cadence_days,
                    "report": b.driver.final_report(),
                }
                for b in self.bindings
            },
            "lifecycle": self.lifecycle.summary(),
            "health": self.health.summary(),
        }

    def report_bytes(self) -> bytes:
        """The final report as canonical JSON bytes (equivalence gates)."""
        return json.dumps(
            self.final_report(), sort_keys=True, separators=(",", ":")
        ).encode()

    def render_health(self) -> str:
        """Printable health table (the CLI's fabric view)."""
        lines = [
            f"{'service.stage':<34} {'ok':>5} {'retried':>8} {'degraded':>9}"
        ]
        summary = self.health.summary()
        for key, bucket in summary["stages"].items():
            lines.append(
                f"{key:<34} {bucket['ok']:>5d} {bucket['retried']:>8d}"
                f" {bucket['degraded']:>9d}"
            )
        lines.append(
            f"{'total':<34} {summary['ok']:>5d} {summary['retried']:>8d}"
            f" {summary['degraded']:>9d}"
        )
        return "\n".join(lines)
