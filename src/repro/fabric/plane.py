"""The control plane: every autonomous service on one shared fabric.

:class:`ControlPlane` hosts :class:`~repro.fabric.pipeline.PipelineDriver`
instances as scheduled feedback pipelines:

- **one scheduler** — ticks run on the DES
  :class:`~repro.infra.des.EventQueue` at per-service cadences
  (simulated days), so multi-service scenarios interleave exactly as a
  shared production fleet would;
- **one model path** — learned models flow through the plane's
  :class:`~repro.fabric.lifecycle.ModelLifecycle` (one
  :class:`~repro.ml.registry.ModelRegistry`, guardrail-gated
  shadow/flight/promote/rollback);
- **one failure story** — every stage execution is wrapped in
  retry-with-backoff and a degrade-to-default fallback
  (:mod:`repro.fabric.faults`), so a failing stage never aborts the run;
- **one telemetry substrate** — stage spans, health events, and
  lifecycle transitions all land in the bound
  :class:`~repro.obs.runtime.ObservabilityRuntime`.

State between ticks is fully picklable, which is what makes
:mod:`repro.fabric.checkpoint` possible: snapshot at a day boundary,
restore in a fresh process, and the remaining days replay
byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.guardrails import RegressionGuardrail
from repro.fabric.faults import FaultInjector, RetryPolicy
from repro.fabric.lifecycle import ModelLifecycle
from repro.fabric.pipeline import PipelineDriver, StageOutcome, TickContext
from repro.infra.des import EventQueue
from repro.ml.registry import ModelRegistry
from repro.parallel import get_pool

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime

#: One simulated day in DES clock units.
DAY = 1.0
#: Per-service scheduling offset: keeps concurrent ticks at distinct
#: timestamps (registration order), so resumed runs re-arm into exactly
#: the original execution order without relying on heap tie-breaking.
TICK_EPS = 1e-6
#: Margin keeping next-day ticks out of the current run window.
_RUN_MARGIN = 1e-9


@dataclass
class ServiceBinding:
    """One hosted pipeline: driver + cadence + scheduling state."""

    name: str
    driver: PipelineDriver
    cadence_days: float
    index: int
    next_due: float
    ticks: int = 0

    def due_day(self) -> int:
        return int(self.next_due)


@dataclass
class FabricHealth:
    """Per-(service, stage) stage-execution counters."""

    counters: dict[tuple[str, str], dict[str, int]] = field(default_factory=dict)
    outcomes: list[StageOutcome] = field(default_factory=list)

    def record(self, outcome: StageOutcome) -> None:
        bucket = self.counters.setdefault(
            (outcome.service, outcome.stage),
            {"ok": 0, "retried": 0, "degraded": 0, "attempts": 0},
        )
        bucket[outcome.status] += 1
        bucket["attempts"] += outcome.attempts
        self.outcomes.append(outcome)

    def total(self, status: str) -> int:
        return sum(bucket[status] for bucket in self.counters.values())

    def summary(self) -> dict:
        """JSON-able rollup keyed ``service.stage`` (sorted)."""
        return {
            "stages": {
                f"{service}.{stage}": dict(bucket)
                for (service, stage), bucket in sorted(self.counters.items())
            },
            "ok": self.total("ok"),
            "retried": self.total("retried"),
            "degraded": self.total("degraded"),
        }


class ControlPlane:
    """Host, schedule, guard, and checkpoint a fleet of pipelines."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        guardrail: RegressionGuardrail | None = None,
        retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry(rng=0)
        self.lifecycle = ModelLifecycle(self.registry, guardrail)
        self.retry = retry or RetryPolicy()
        self.injector = injector or FaultInjector()
        self.health = FabricHealth()
        self.bindings: list[ServiceBinding] = []
        self.queue = EventQueue()
        self.day = 0
        # The fabric owns the persistent worker pool's lifecycle: the
        # handle is cheap (workers start lazily on the first parallel
        # dispatch), is reused across every tick and simulated day,
        # is never checkpointed (see fabric.checkpoint — restore gets a
        # fresh handle here, re-armed on next use), and is shut down by
        # ``close()``.
        self.pool = get_pool()
        self._obs: "ObservabilityRuntime | None" = None
        self._lifecycle_mirrored = 0
        if obs is not None:
            self.bind(obs)

    # -- observability ---------------------------------------------------------
    def bind(self, obs: "ObservabilityRuntime | None") -> "ControlPlane":
        """Attach (or detach, with ``None``) the observability runtime."""
        self._obs = obs
        self.queue.bind(obs)
        self.pool.bind(obs)
        for binding in self.bindings:
            binding.driver.bind_obs(obs)
        return self

    def _span(self, name: str, **attributes: object):
        if self._obs is None:
            from contextlib import nullcontext

            return nullcontext()
        return self._obs.span(name, layer="fabric", **attributes)

    def _emit(self, kind: str, value: float = 1.0, **attributes: object) -> None:
        if self._obs is not None:
            self._obs.emit(
                "fabric",
                "fabric",
                kind,
                value=value,
                timestamp=self.queue.now,
                **attributes,
            )

    def _mirror_lifecycle(self) -> None:
        """Replay lifecycle transitions recorded since the last tick."""
        fresh = self.lifecycle.actions[self._lifecycle_mirrored :]
        self._lifecycle_mirrored = len(self.lifecycle.actions)
        if fresh and self._obs is not None:
            self._obs.replay(fresh)

    # -- registration ----------------------------------------------------------
    def register(
        self,
        driver: PipelineDriver,
        cadence_days: float = 1.0,
        start_day: int = 0,
    ) -> ServiceBinding:
        """Host ``driver`` as a pipeline ticking every ``cadence_days``."""
        if cadence_days <= 0:
            raise ValueError("cadence_days must be positive")
        if start_day < self.day:
            raise ValueError(
                f"start_day {start_day} is before fabric day {self.day}"
            )
        if any(b.name == driver.name for b in self.bindings):
            raise ValueError(f"service {driver.name!r} already registered")
        driver.stages()  # validates the driver declares at least one stage
        index = len(self.bindings)
        binding = ServiceBinding(
            name=driver.name,
            driver=driver,
            cadence_days=float(cadence_days),
            index=index,
            next_due=start_day * DAY + index * TICK_EPS,
        )
        self.bindings.append(binding)
        driver.bind_obs(self._obs)
        self._arm(binding)
        return binding

    def service_names(self) -> list[str]:
        return [b.name for b in self.bindings]

    # -- scheduling ------------------------------------------------------------
    def _arm(self, binding: ServiceBinding) -> None:
        self.queue.schedule(
            binding.next_due,
            lambda: self._tick(binding),
            label=f"fabric.{binding.name}.tick",
        )

    def _tick(self, binding: ServiceBinding) -> None:
        ctx = TickContext(
            day=int(self.queue.now),
            tick=binding.ticks,
            now=self.queue.now,
            lifecycle=self.lifecycle,
        )
        with self._span(
            f"fabric.{binding.name}.tick", day=ctx.day, tick=ctx.tick
        ):
            for stage, fn in binding.driver.stages():
                self._run_stage(binding, stage, fn, ctx)
        self._mirror_lifecycle()
        binding.ticks += 1
        binding.next_due += binding.cadence_days * DAY
        self._arm(binding)

    def _run_stage(self, binding, stage, fn, ctx) -> StageOutcome:
        attempts = 0
        error: Exception | None = None
        status = "degraded"
        with self._span(f"fabric.{binding.name}.{stage}", day=ctx.day):
            while attempts < self.retry.max_attempts:
                attempts += 1
                try:
                    self.injector.check(binding.name, stage, ctx.day)
                    fn(ctx)
                    status = "ok" if attempts == 1 else "retried"
                    break
                except Exception as exc:  # noqa: BLE001 — fault boundary
                    error = exc
                    if attempts < self.retry.max_attempts:
                        self._emit(
                            "stage_retry",
                            value=self.retry.backoff(attempts),
                            service=binding.name,
                            stage=stage,
                            attempt=attempts,
                        )
            else:
                ctx.degraded = True
                binding.driver.degrade(stage, ctx)
                self._emit(
                    "stage_degraded",
                    service=binding.name,
                    stage=stage,
                    error=type(error).__name__ if error else "",
                )
        if status == "ok":
            self._emit("stage_ok", service=binding.name, stage=stage)
        elif status == "retried":
            self._emit(
                "stage_recovered",
                value=float(attempts),
                service=binding.name,
                stage=stage,
            )
        outcome = StageOutcome(
            service=binding.name,
            stage=stage,
            day=ctx.day,
            attempts=attempts,
            status=status,
            error=str(error) if status == "degraded" and error else "",
        )
        self.health.record(outcome)
        return outcome

    def run_days(self, n_days: int) -> "ControlPlane":
        """Advance the fabric ``n_days`` simulated days."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        horizon = (self.day + n_days) * DAY
        with self._span(
            "fabric.run", from_day=self.day, to_day=self.day + n_days
        ):
            self.queue.run(until=horizon - _RUN_MARGIN)
        self.day += n_days
        self._emit("run_complete", value=float(n_days))
        return self

    # -- resources -------------------------------------------------------------
    def close(self) -> None:
        """Release fabric-owned resources: shut the worker pool down.

        Safe at any point — a later ``run_days`` simply re-arms a fresh
        pool on its first parallel dispatch.  Also runs on ``with``
        exit.
        """
        self.pool.shutdown()

    def __enter__(self) -> "ControlPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoint ------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Snapshot full fabric state to ``path`` (see fabric.checkpoint)."""
        from repro.fabric.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def restore(cls, path, obs: "ObservabilityRuntime | None" = None) -> "ControlPlane":
        """Rebuild a plane from a checkpoint and re-arm its schedule."""
        from repro.fabric.checkpoint import load_checkpoint

        return load_checkpoint(path, obs=obs)

    # -- reporting -------------------------------------------------------------
    def final_report(self) -> dict:
        """Deterministic whole-run summary (services + lifecycle + health)."""
        return {
            "days": self.day,
            "services": {
                b.name: {
                    "ticks": b.ticks,
                    "cadence_days": b.cadence_days,
                    "report": b.driver.final_report(),
                }
                for b in self.bindings
            },
            "lifecycle": self.lifecycle.summary(),
            "health": self.health.summary(),
        }

    def report_bytes(self) -> bytes:
        """The final report as canonical JSON bytes (equivalence gates)."""
        return json.dumps(
            self.final_report(), sort_keys=True, separators=(",", ":")
        ).encode()

    def render_health(self) -> str:
        """Printable health table (the CLI's fabric view)."""
        lines = [
            f"{'service.stage':<34} {'ok':>5} {'retried':>8} {'degraded':>9}"
        ]
        summary = self.health.summary()
        for key, bucket in summary["stages"].items():
            lines.append(
                f"{key:<34} {bucket['ok']:>5d} {bucket['retried']:>8d}"
                f" {bucket['degraded']:>9d}"
            )
        lines.append(
            f"{'total':<34} {summary['ok']:>5d} {summary['retried']:>8d}"
            f" {summary['degraded']:>9d}"
        )
        return "\n".join(lines)
