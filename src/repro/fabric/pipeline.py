"""Feedback pipelines: the one shape every fabric-hosted service runs as.

The paper's Section 5 argument is that autonomy stays affordable only
when every service runs the *same* feedback loop on shared
infrastructure.  A :class:`PipelineDriver` declares that loop as up to
five named stages::

    observe -> learn -> recommend -> act -> validate

Each stage is an ordinary method taking a :class:`TickContext`; a driver
defines only the stages its service needs (a pure monitoring pipeline
may declare just ``observe``/``validate``).  The
:class:`~repro.fabric.plane.ControlPlane` executes the declared stages
in canonical order on every tick, wraps each in retry/degrade fault
handling, and emits one span plus health events per stage.

Drivers must be **picklable**: the fabric checkpoints full state (driver
objects included) between ticks, so stage methods are bound methods of
the driver — never closures — and any callables a driver holds (cost
functions, retrainers) are module-level classes or functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.service import ServeRequest, ServeResponse

if TYPE_CHECKING:
    from repro.core.service import AutonomousService
    from repro.fabric.lifecycle import ModelLifecycle

#: Canonical stage order; drivers implement any subset.
STAGES = ("observe", "learn", "recommend", "act", "validate")


@dataclass
class TickContext:
    """What one pipeline tick knows about its place in the run.

    ``day`` is the simulated day the tick fires on, ``tick`` the
    per-service tick counter, ``now`` the DES clock in days.
    ``lifecycle`` is the fabric's single model-deployment path — any
    stage that produces a learned model publishes it here rather than
    owning its own rollout logic.  ``degraded`` flips to True once any
    stage of the current tick exhausted its retries, so later stages can
    choose conservative behaviour.
    """

    day: int
    tick: int
    now: float
    lifecycle: "ModelLifecycle"
    degraded: bool = False


@dataclass
class StageOutcome:
    """How one stage execution went (the fabric's health unit)."""

    service: str
    stage: str
    day: int
    attempts: int
    status: str  # "ok" | "retried" | "degraded"
    error: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status != "degraded"


class PipelineDriver:
    """Base adapter turning one service into a declared feedback pipeline.

    Subclasses set :attr:`name` and implement any of the
    :data:`STAGES` as methods ``def observe(self, ctx): ...``.  The
    plane discovers stages by name, so there is no registration
    boilerplate; :meth:`stages` returns them in canonical order.
    """

    #: Unique service name on the fabric (span prefix, event source).
    name: str = "driver"
    #: Architectural layer for span/event tagging.
    layer: str = "service"
    #: Set True on subclasses that call :meth:`mark_dirty` at every
    #: state-mutation point.  The checkpoint store then trusts the flag
    #: when deciding whether a delta frame must re-serialize this
    #: driver; drivers that leave it False get a content-hash fallback
    #: (always correct, costs one serialization per save).
    dirty_aware: bool = False
    #: Instance attributes that are immutable once the driver is
    #: registered (input worlds: trace lists, arrival schedules,
    #: observation streams).  Delta checkpoint frames replace every
    #: reference *into* these structures with a symbolic token resolved
    #: against the base frame on load — wherever the object is reachable
    #: from, including through the wrapped service — so a long-running
    #: service's delta carries only genuinely mutable state.  Honored
    #: only on ``dirty_aware`` drivers; the values (and their contents)
    #: must never be mutated after registration, or restores silently
    #: revert them to their base-frame state.
    frozen_attrs: tuple[str, ...] = ()

    def mark_dirty(self) -> None:
        """Flag that checkpoint-relevant state changed since the last save."""
        self._fabric_dirty = True

    def clear_dirty(self) -> None:
        """Reset the dirty flag (the checkpoint store calls this on save)."""
        self._fabric_dirty = False

    @property
    def dirty(self) -> bool:
        """Whether this driver changed since the last checkpoint save.

        Defaults to True when never saved — unknown means dirty.  The
        flag itself is transient bookkeeping: the store strips it from
        serialized driver state, so it never affects checkpoint bytes
        or content hashes.
        """
        return self.__dict__.get("_fabric_dirty", True)

    def stages(self) -> list[tuple[str, Callable[[TickContext], object]]]:
        """The declared stages, in canonical pipeline order."""
        found = []
        for stage in STAGES:
            fn = getattr(self, stage, None)
            if callable(fn):
                found.append((stage, fn))
        if not found:
            raise TypeError(
                f"{type(self).__name__} declares no pipeline stages "
                f"(implement one of {', '.join(STAGES)})"
            )
        return found

    def services(self) -> "list[AutonomousService]":
        """The AutonomousService instances this driver wraps.

        The plane binds/unbinds the observability runtime through this
        list, so a checkpoint never pickles a live runtime.
        """
        return []

    def bind_obs(self, obs) -> None:
        """Attach (or with ``None`` detach) an observability runtime."""
        for service in self.services():
            service.bind(obs)

    def serve(self, request: ServeRequest) -> ServeResponse:
        """Route ``request`` to the wrapped service that declares the op.

        This is the driver half of the serve contract: the fabric's
        ticked stages and the query plane's endpoints both enter the
        service through here, so there is exactly one implementation of
        every recommend/observe path.  Drivers whose queryable state
        lives outside an :class:`~repro.core.service.AutonomousService`
        (e.g. the workload repository) override this and answer
        directly.
        """
        for service in self.services():
            if callable(getattr(service, f"serve_{request.op}", None)):
                return service.serve(request)
        return ServeResponse(
            status=404,
            error=f"{self.name} has no op {request.op!r}",
            served_by=self.name,
            op=request.op,
        )

    def serve_many(self, requests: "list[ServeRequest]") -> "list[ServeResponse]":
        """Batch counterpart of :meth:`serve` (one service, one batch).

        When every request resolves to the same wrapped service the
        whole batch is handed to that service's ``serve_many`` (which
        may vectorize); otherwise requests are served one by one.
        """
        services = self.services()
        if len(services) == 1 and requests:
            return services[0].serve_many(list(requests))
        return [self.serve(request) for request in requests]

    def degrade(self, stage: str, ctx: TickContext) -> None:
        """Fallback when ``stage`` exhausted its retries this tick.

        The default policy is "hold position": skip the stage's effect
        and keep serving yesterday's decisions — the paper's
        degrade-to-default behaviour.  Drivers override this to install
        an explicit heuristic fallback.
        """

    def final_report(self) -> dict:
        """Deterministic, JSON-serializable summary of the whole run.

        Must depend only on simulated state (never wall clocks), so an
        interrupted-and-resumed run reports byte-identically to an
        uninterrupted one.
        """
        return {}


@dataclass
class RecordingDriver(PipelineDriver):
    """Minimal driver for tests: records every stage call it receives."""

    name: str = "recorder"
    calls: list[tuple[str, int]] = field(default_factory=list)
    fail_stage: str = ""
    fail_times: int = 0

    def _touch(self, stage: str, ctx: TickContext) -> None:
        if stage == self.fail_stage and self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError(f"synthetic {stage} failure")
        self.calls.append((stage, ctx.day))

    def observe(self, ctx: TickContext) -> None:
        self._touch("observe", ctx)

    def recommend(self, ctx: TickContext) -> None:
        self._touch("recommend", ctx)

    def validate(self, ctx: TickContext) -> None:
        self._touch("validate", ctx)

    def final_report(self) -> dict:
        return {"calls": len(self.calls)}
