"""Chaos harness: SIGKILL a fabric mid-day, resume it, compare reports.

The durability claim of :mod:`repro.fabric.store` is falsifiable, so
this module tests it the hard way: run the fleet in a subprocess that
persists a delta checkpoint after **every tick**, kill it with
``SIGKILL`` (no atexit, no flush, no mercy) at a deterministic global
tick, restore a fresh process from the durable chain, run the remaining
days, and require the final report to be **byte-identical** to an
uninterrupted run.

Three processes per experiment:

1. **baseline** — ``repro fabric --days N`` with no store; writes its
   canonical report bytes.
2. **victim** — same run with ``--store DIR --chaos-kill-tick K``; the
   tick hook SIGKILLs the victim's own process group the moment the
   K-th tick completes (the group kill also reaps any worker-pool
   children).  The harness requires the victim to die by signal — a
   clean exit means the kill point was never reached.
3. **resumed** — ``repro fabric --resume DIR``; restores from the
   chain's durable schedule records (mid-backoff retries included) and
   runs to the same horizon.

``run_chaos`` drives all three and returns a :class:`ChaosResult`;
``repro chaos`` is its CLI face.  Everything is deterministic given the
seed, so the experiment doubles as a regression gate in CI — serial,
with ``--workers 2``, and with injected faults.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.fabric.plane import ControlPlane, ServiceBinding
    from repro.fabric.pipeline import TickContext


def kill_self() -> None:
    """SIGKILL this process — and its group, when it leads one.

    Killing the whole group reaps worker-pool children the instant the
    victim dies; the group kill only happens when the process leads its
    own group (``run_chaos`` starts victims with ``start_new_session``),
    so calling this from a shared group can never take the caller's
    parent down.
    """
    try:
        if os.getpgid(0) == os.getpid():
            os.killpg(os.getpid(), signal.SIGKILL)
    except OSError:
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def make_kill_hook(
    kill_tick: int,
) -> "Callable[[ControlPlane, ServiceBinding, TickContext], None]":
    """A tick hook that SIGKILLs the process after ``kill_tick`` ticks.

    The hook fires *after* the plane persisted the completed tick to its
    attached store, so the durable chain always covers the kill point.
    """
    if kill_tick < 1:
        raise ValueError("kill_tick must be >= 1")

    def hook(plane, binding, ctx) -> None:
        if plane.total_ticks >= kill_tick:
            kill_self()

    return hook


@dataclass
class ChaosResult:
    """One kill-and-resume experiment, ready to assert on."""

    days: int
    kill_tick: int
    victim_returncode: int
    frames: int
    baseline: bytes
    resumed: bytes
    store_path: Path

    @property
    def identical(self) -> bool:
        """Whether the resumed run reported byte-identically."""
        return self.baseline == self.resumed

    def summary(self) -> str:
        verdict = "byte-identical" if self.identical else "REPORTS DIVERGED"
        return (
            f"chaos: killed at tick {self.kill_tick}"
            f" (signal {-self.victim_returncode}),"
            f" resumed from {self.frames} checkpoint frame(s)"
            f" over {self.days} days -> {verdict}"
        )


def _cli(python: str, *args: str) -> list[str]:
    return [python, "-m", "repro.cli", "fabric", *args]


def _run(cmd: list[str], timeout: float, **popen: object) -> subprocess.CompletedProcess:
    return subprocess.run(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=timeout,
        **popen,
    )


def run_chaos(
    days: int = 5,
    kill_tick: int = 12,
    services: Sequence[str] | None = None,
    workers: int = 1,
    faults: Sequence[str] = (),
    seed: int = 0,
    workdir: "Path | str | None" = None,
    python: str = sys.executable,
    timeout: float = 600.0,
) -> ChaosResult:
    """Run the baseline / victim / resumed experiment end to end.

    ``kill_tick`` counts completed ticks across *all* services, so a
    seven-service fleet killed at tick 12 dies mid-day-1 with some
    services ticked and some not — exactly the state a naive
    end-of-day checkpoint cannot represent.  Raises ``RuntimeError``
    when any leg misbehaves (baseline fails, victim survives, resume
    fails); returns a :class:`ChaosResult` otherwise — asserting
    ``result.identical`` is the caller's job.
    """
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "store"
    baseline_out = workdir / "baseline.report"
    victim_out = workdir / "victim.report"
    resumed_out = workdir / "resumed.report"

    common = ["--days", str(days), "--seed", str(seed)]
    if services:
        common += ["--services", ",".join(services)]
    if workers != 1:
        common += ["--workers", str(workers)]
    fault_args = [arg for spec in faults for arg in ("--inject-fault", spec)]

    baseline = _run(
        _cli(python, *common, *fault_args, "--report-out", str(baseline_out)),
        timeout,
    )
    if baseline.returncode != 0:
        raise RuntimeError(
            f"chaos baseline run failed ({baseline.returncode}):\n"
            f"{baseline.stdout.decode(errors='replace')}"
        )

    # The victim leads its own session so the kill hook's group kill
    # cannot reach this process.
    victim = _run(
        _cli(
            python,
            *common,
            *fault_args,
            "--store",
            str(store),
            "--chaos-kill-tick",
            str(kill_tick),
            "--report-out",
            str(victim_out),
        ),
        timeout,
        start_new_session=True,
    )
    if victim.returncode >= 0:
        raise RuntimeError(
            f"chaos victim was not killed (exit {victim.returncode}) — "
            f"kill_tick {kill_tick} may exceed the run's total ticks:\n"
            f"{victim.stdout.decode(errors='replace')}"
        )
    if victim_out.exists():
        raise RuntimeError("chaos victim wrote a final report despite the kill")

    resumed = _run(
        _cli(
            python,
            "--resume",
            str(store),
            "--store",
            str(store),
            "--days",
            str(days),
            "--report-out",
            str(resumed_out),
        ),
        timeout,
    )
    if resumed.returncode != 0:
        raise RuntimeError(
            f"chaos resume run failed ({resumed.returncode}):\n"
            f"{resumed.stdout.decode(errors='replace')}"
        )

    from repro.fabric.store import CheckpointStore

    frames = len(CheckpointStore(store).frames())
    return ChaosResult(
        days=days,
        kill_tick=kill_tick,
        victim_returncode=victim.returncode,
        frames=frames,
        baseline=baseline_out.read_bytes(),
        resumed=resumed_out.read_bytes(),
        store_path=store,
    )
