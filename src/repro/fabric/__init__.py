"""The fabric: one control plane for every autonomous service.

Section 5's destination — the services of Sections 2-4 stop being
separately-driven scripts and become declared feedback pipelines
(observe -> learn -> recommend -> act -> validate) hosted on one
:class:`ControlPlane`: one DES scheduler, one guardrail-gated model
registry, one retry/degrade failure story, one checkpoint format, one
telemetry substrate.
"""

from repro.fabric.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_bytes,
    load_checkpoint,
    restore_from_bytes,
    save_checkpoint,
)
from repro.fabric.chaos import ChaosResult, run_chaos
from repro.fabric.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    parse_fault_spec,
    parse_fault_specs,
)
from repro.fabric.fleet import (
    CORE_FLEET,
    FULL_FLEET,
    FleetConfig,
    build_fleet,
)
from repro.fabric.lifecycle import LifecycleAction, ModelLifecycle
from repro.fabric.pipeline import (
    STAGES,
    PipelineDriver,
    RecordingDriver,
    StageOutcome,
    TickContext,
)
from repro.fabric.plane import (
    ControlPlane,
    FabricHealth,
    ServiceBinding,
)
from repro.fabric.store import (
    FORMAT_V1,
    FORMAT_V2,
    CheckpointStore,
    RetryState,
    ScheduleRecord,
)
from repro.fabric.streams import (
    STREAMING_THRESHOLD,
    JobPairsView,
    StreamingJobSource,
)

__all__ = [
    "STAGES",
    "PipelineDriver",
    "RecordingDriver",
    "TickContext",
    "StageOutcome",
    "ControlPlane",
    "ServiceBinding",
    "FabricHealth",
    "ModelLifecycle",
    "LifecycleAction",
    "RetryPolicy",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "parse_fault_spec",
    "parse_fault_specs",
    "CheckpointStore",
    "ScheduleRecord",
    "RetryState",
    "FORMAT_V1",
    "FORMAT_V2",
    "ChaosResult",
    "run_chaos",
    # deprecated module-function checkpoint API (one release of shims)
    "CHECKPOINT_FORMAT",
    "checkpoint_bytes",
    "save_checkpoint",
    "load_checkpoint",
    "restore_from_bytes",
    "FleetConfig",
    "CORE_FLEET",
    "FULL_FLEET",
    "build_fleet",
    "StreamingJobSource",
    "JobPairsView",
    "STREAMING_THRESHOLD",
]
