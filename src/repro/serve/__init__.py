"""``repro.serve`` — the async query plane over the autonomous fleet.

The fabric (:mod:`repro.fabric`) runs services as *ticked* feedback
pipelines; this package serves the same services as *queried*
endpoints.  Both paths enter a service through the one
``serve(request)`` contract on
:class:`~repro.core.service.AutonomousService`, so a recommendation
returned to a query is the same code path — and the same bytes — as
one made inside a pipeline tick.

Front-end pieces, composable and individually testable:

- :class:`~repro.serve.session.SessionManager` — per-tenant sessions;
- :class:`~repro.serve.cache.RecommendationCache` — signature-keyed
  response cache with lifecycle-aware (promote/rollback) eviction;
- :class:`~repro.serve.admission.AdmissionController` — token-bucket
  rate limits, queue-depth shedding, deadline enforcement;
- :class:`~repro.serve.batching.MicroBatcher` — bounded-delay request
  coalescing into vectorized ``serve_many`` calls;
- :class:`~repro.serve.plane.QueryPlane` — the asyncio front end tying
  them together over a live or checkpoint-restored fabric;
- :class:`~repro.serve.traffic.TrafficGenerator` — seeded, replayable
  request streams for benchmarks and tests.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.batching import MicroBatcher
from repro.serve.cache import RecommendationCache, subject_key
from repro.serve.plane import QueryPlane
from repro.serve.session import Session, SessionManager
from repro.serve.traffic import TrafficGenerator

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "MicroBatcher",
    "QueryPlane",
    "RecommendationCache",
    "Session",
    "SessionManager",
    "TokenBucket",
    "TrafficGenerator",
    "subject_key",
]
