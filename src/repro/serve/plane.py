"""The async query plane: every fabric service as a served endpoint.

:class:`QueryPlane` fronts a live (or checkpoint-restored)
:class:`~repro.fabric.plane.ControlPlane` with an asyncio request path.
Each fabric binding becomes an endpoint named after its service;
requests enter through :meth:`handle` and flow through the same
``serve()`` contract the ticked pipelines use — there is exactly one
implementation of every recommend/observe path, queried or ticked.

Per request, in order:

1. **Session** — the tenant's session is found-or-created and metered.
2. **Admission** — deadline, per-tenant token bucket, queue-depth shed
   (:mod:`repro.serve.admission`); rejections return 429/503/504
   responses without touching the service.
3. **Cache** — recommend-style ops consult the signature-keyed
   :class:`~repro.serve.cache.RecommendationCache`; a hit returns the
   cached response object itself, so cached and uncached results are
   byte-identical by construction.  Lifecycle promote/rollback evicts.
4. **Dispatch** — batchable ops coalesce through the
   :class:`~repro.serve.batching.MicroBatcher`; everything else calls
   the driver inline.

Every request emits a ``serve.<endpoint>.<op>`` span (layer ``serve``)
and ``serve.*`` metrics — latency, throughput, queue depth, active
sessions — into the bound runtime's TelemetryStore via registered
metric aliases.

Background ticking is **cooperative**: :meth:`tick_background` runs
``fabric.run_days(1)`` directly on the event loop between awaits, so a
tick is atomic with respect to queries (no threads, no locks) and the
cache's epoch key — the binding's tick count — makes any state change
visible immediately.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.core.service import ServeRequest, ServeResponse
from repro.serve.admission import AdmissionController
from repro.serve.batching import MicroBatcher
from repro.serve.cache import RecommendationCache
from repro.serve.session import SessionManager
from repro.telemetry.schema import Metric

if TYPE_CHECKING:
    from repro.fabric.plane import ControlPlane, ServiceBinding
    from repro.obs.runtime import ObservabilityRuntime

#: Raw metric names the plane registers as store aliases.
SERVE_ALIASES = {
    "serve.latency.seconds": Metric.REQUEST_LATENCY_SECONDS,
    "serve.requests": Metric.THROUGHPUT_OPS,
    "serve.queue.depth": Metric.QUEUE_LENGTH,
    "serve.sessions.active": Metric.ACTIVE_SESSIONS,
}

#: Ops whose responses are pure functions of (model state, subject) —
#: safe to cache and to coalesce into batches.
DEFAULT_CACHEABLE_OPS = frozenset({"recommend"})
DEFAULT_BATCHABLE_OPS = frozenset({"recommend"})


class QueryPlane:
    """Sessions + admission + cache + batching around a fabric's services."""

    def __init__(
        self,
        fabric: "ControlPlane",
        obs: "ObservabilityRuntime | None" = None,
        rate_per_tenant: float = 500.0,
        burst: float = 100.0,
        max_queue_depth: int = 64,
        max_batch: int = 16,
        max_batch_delay: float = 0.002,
        cache_entries: int = 4096,
        cacheable_ops: frozenset[str] = DEFAULT_CACHEABLE_OPS,
        batchable_ops: frozenset[str] = DEFAULT_BATCHABLE_OPS,
    ) -> None:
        self.fabric = fabric
        self.obs = obs
        self.sessions = SessionManager()
        self.cache = RecommendationCache(
            lifecycle=fabric.lifecycle, max_entries=cache_entries
        )
        self.admission = AdmissionController(
            rate_per_tenant=rate_per_tenant,
            burst=burst,
            max_queue_depth=max_queue_depth,
        )
        self.batcher = MicroBatcher(
            max_batch=max_batch, max_delay=max_batch_delay, clock=self.now
        )
        self.cacheable_ops = frozenset(cacheable_ops)
        self.batchable_ops = frozenset(batchable_ops)
        self.requests = 0
        self.responses_by_status: dict[int, int] = {}
        self.latencies: list[float] = []
        self.ticked_days = 0
        self._inflight = 0
        self._clock_origin: float | None = None
        if obs is not None:
            for raw, metric in SERVE_ALIASES.items():
                obs.store.aliases.add_alias(raw, metric)

    # -- clock -----------------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since the plane first looked at the clock.

        Admission buckets and deadlines all run on this one clock; it is
        the loop's monotonic time (never the wall clock), rebased so the
        first request lands at ~0.
        """
        try:
            raw = asyncio.get_running_loop().time()
        except RuntimeError:
            import time

            raw = time.monotonic()
        if self._clock_origin is None:
            self._clock_origin = raw
        return raw - self._clock_origin

    # -- endpoints -------------------------------------------------------------
    def endpoints(self) -> list[str]:
        return self.fabric.service_names()

    def binding(self, endpoint: str) -> "ServiceBinding":
        for candidate in self.fabric.bindings:
            if candidate.name == endpoint:
                return candidate
        raise KeyError(f"no endpoint {endpoint!r}")

    def model_for(self, endpoint: str) -> str:
        """The lifecycle model name an endpoint serves from ('' if none)."""
        driver = self.binding(endpoint).driver
        return str(
            getattr(driver, "model_name", "")
            or getattr(driver, "MODEL_NAME", "")
        )

    # -- request path ----------------------------------------------------------
    async def handle(self, endpoint: str, request: ServeRequest) -> ServeResponse:
        """Serve one request through admission, cache, and dispatch."""
        now = self.now()
        self.requests += 1
        session = self.sessions.get(request.tenant or "anonymous", now)
        session.note(request.op, now)
        try:
            binding = self.binding(endpoint)
        except KeyError:
            response = ServeResponse(
                status=404, error=f"no endpoint {endpoint!r}", op=request.op
            )
            return self._finish(endpoint, request, session, response, now)
        decision = self.admission.admit(
            session.tenant,
            now,
            queue_depth=self.batcher.depth + self._inflight,
            deadline=request.deadline,
        )
        if not decision.admitted:
            session.rejected += 1
            response = ServeResponse(
                status=decision.status,
                error=decision.reason,
                served_by=endpoint,
                op=request.op,
            )
            return self._finish(endpoint, request, session, response, now)
        cache_key = None
        if request.op in self.cacheable_ops:
            cache_key = self.cache.key(
                session.tenant,
                endpoint,
                request.op,
                request.subject,
                params=request.params,
                model_version=self.cache.model_version(self.model_for(endpoint)),
                epoch=binding.record.ticks,
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                session.cache_hits += 1
                session.ok += 1
                return self._finish(
                    endpoint, request, session, cached, now, cached_hit=True
                )
        self._inflight += 1
        try:
            with self._span(endpoint, request):
                if request.op in self.batchable_ops:
                    response = await self.batcher.submit(
                        endpoint, binding.driver, request
                    )
                else:
                    response = binding.driver.serve(request)
        finally:
            self._inflight -= 1
        if response.ok:
            session.ok += 1
            if cache_key is not None:
                self.cache.put(
                    cache_key, response, model=self.model_for(endpoint)
                )
        else:
            session.errors += 1
        return self._finish(endpoint, request, session, response, now)

    async def handle_many(
        self, endpoint: str, requests: "list[ServeRequest]"
    ) -> "list[ServeResponse]":
        """Serve a burst concurrently (what a load balancer fan-in does)."""
        return list(
            await asyncio.gather(
                *(self.handle(endpoint, request) for request in requests)
            )
        )

    def _span(self, endpoint: str, request: ServeRequest):
        if self.obs is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.obs.span(
            f"serve.{endpoint}.{request.op}",
            layer="serve",
            tenant=request.tenant,
        )

    def _finish(
        self,
        endpoint: str,
        request: ServeRequest,
        session,
        response: ServeResponse,
        started: float,
        cached_hit: bool = False,
    ) -> ServeResponse:
        latency = max(0.0, self.now() - started)
        self.latencies.append(latency)
        self.responses_by_status[response.status] = (
            self.responses_by_status.get(response.status, 0) + 1
        )
        if self.obs is not None:
            now = self.now()
            dimensions = {
                "endpoint": endpoint,
                "op": request.op,
                "status": str(response.status),
                "cached": "1" if cached_hit else "0",
            }
            store = self.obs.store
            store.record("serve.latency.seconds", now, latency, dimensions)
            store.record("serve.requests", now, 1.0, dimensions)
            store.record(
                "serve.queue.depth",
                now,
                float(self.batcher.depth + self._inflight),
                {"endpoint": endpoint},
            )
            store.record(
                "serve.sessions.active", now, float(self.sessions.active), {}
            )
            self.obs.emit(
                "serve",
                endpoint,
                "request",
                value=latency,
                op=request.op,
                status=response.status,
                cached=cached_hit,
            )
        return response

    # -- background ticking ----------------------------------------------------
    async def tick_background(self, days: int, pause: float = 0.0) -> None:
        """Advance the fabric ``days`` days, yielding between each.

        Runs directly on the event loop: each ``run_days(1)`` is atomic
        with respect to in-flight queries, and the awaited pause lets
        queued requests drain between days.
        """
        for _ in range(days):
            with self._tick_span():
                self.fabric.run_days(1)
            self.ticked_days += 1
            await asyncio.sleep(pause)

    def _tick_span(self):
        if self.obs is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.obs.span(
            "serve.background_tick", layer="serve", day=self.fabric.day
        )

    # -- shutdown / stats ------------------------------------------------------
    def drain(self) -> None:
        """Flush pending batches (call before the loop shuts down)."""
        self.batcher.drain()

    @staticmethod
    def _percentile(values: "list[float]", q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def stats(self) -> dict:
        """JSON-able rollup of everything the plane did."""
        return {
            "requests": self.requests,
            "by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "latency": {
                "p50": self._percentile(self.latencies, 0.50),
                "p99": self._percentile(self.latencies, 0.99),
                "max": max(self.latencies) if self.latencies else 0.0,
            },
            "ticked_days": self.ticked_days,
            "sessions": self.sessions.summary(),
            "cache": self.cache.summary(),
            "admission": self.admission.summary(),
            "batching": self.batcher.summary(),
        }
