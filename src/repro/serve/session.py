"""Per-tenant sessions for the query plane.

A :class:`Session` is the unit the front-end meters: every request is
attributed to one tenant's session, which carries the counters the
admission controller and the operator dashboards read (requests, cache
hits, rejections).  Sessions are created lazily on a tenant's first
request and live until :meth:`SessionManager.close` — the active count
is exported as the ``sessions.active`` gauge.

Session identity is deterministic (``<tenant>#<ordinal>``): nothing
here reads a wall clock, so a replayed request stream produces the
same session table byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Session:
    """One tenant's live conversation with the query plane."""

    tenant: str
    session_id: str
    opened_at: float
    requests: int = 0
    ok: int = 0
    errors: int = 0
    cache_hits: int = 0
    rejected: int = 0
    last_seen: float = 0.0
    ops: dict[str, int] = field(default_factory=dict)

    def note(self, op: str, now: float) -> None:
        """Count one request landing on this session."""
        self.requests += 1
        self.last_seen = now
        self.ops[op] = self.ops.get(op, 0) + 1

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "session_id": self.session_id,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "rejected": self.rejected,
            "ops": dict(sorted(self.ops.items())),
        }


class SessionManager:
    """Lazily-created, explicitly-closed per-tenant sessions."""

    def __init__(self) -> None:
        self._sessions: dict[str, Session] = {}
        self._opened = 0
        self.closed = 0

    def get(self, tenant: str, now: float = 0.0) -> Session:
        """The tenant's live session, created on first use."""
        session = self._sessions.get(tenant)
        if session is None:
            self._opened += 1
            session = Session(
                tenant=tenant,
                session_id=f"{tenant}#{self._opened}",
                opened_at=now,
                last_seen=now,
            )
            self._sessions[tenant] = session
        return session

    def peek(self, tenant: str) -> Session | None:
        """The tenant's session without creating one."""
        return self._sessions.get(tenant)

    def close(self, tenant: str) -> Session | None:
        """End the tenant's session; a later request opens a fresh one."""
        session = self._sessions.pop(tenant, None)
        if session is not None:
            self.closed += 1
        return session

    @property
    def active(self) -> int:
        return len(self._sessions)

    @property
    def opened(self) -> int:
        return self._opened

    def sessions(self) -> list[Session]:
        """Live sessions in creation order (deterministic)."""
        return list(self._sessions.values())

    def summary(self) -> dict:
        return {
            "active": self.active,
            "opened": self.opened,
            "closed": self.closed,
            "tenants": {
                tenant: session.to_dict()
                for tenant, session in sorted(self._sessions.items())
            },
        }
