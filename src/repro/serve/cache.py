"""Signature-keyed recommendation cache with lifecycle-aware eviction.

The cache key reuses the engine's plan-signature machinery: an
:class:`~repro.engine.expr.Expression` subject is keyed by its *strict*
signature (two structurally identical plans share an entry; any
structural difference misses), strings and ints key as themselves, and
anything else by a content digest of its canonical pickle.  The full
entry key is::

    (tenant, endpoint, op, subject_key, model_version, epoch)

``model_version`` is the production version of the model the endpoint
serves from and ``epoch`` the endpoint's fabric tick count — so a
background tick that retrains state, or a lifecycle promote/rollback
that changes the serving model, can never serve a stale recommendation.

Invalidation is **scan-based**, not listener-based: the cache remembers
how much of the :class:`~repro.fabric.lifecycle.ModelLifecycle` action
log it has seen and, on every lookup, folds in the fresh tail —
``promote`` and ``rollback`` actions evict every entry tagged with the
affected model name.  The lifecycle object itself is never mutated or
subscribed to, which keeps fabric checkpoints (which pickle the
lifecycle) oblivious to the serving tier.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.service import ServeResponse
    from repro.fabric.lifecycle import ModelLifecycle

#: Lifecycle transitions that change which model version serves.
_EVICTING_ACTIONS = frozenset({"promote", "rollback"})


def subject_key(subject: Any) -> str:
    """A stable cache key component for one request subject.

    Expressions key by strict plan signature (the whole point of the
    signature machinery: structural identity, not object identity);
    primitives by value; everything else by canonical-pickle digest.
    """
    from repro.engine import Expression, signatures

    if subject is None:
        return "none"
    if isinstance(subject, Expression):
        return f"strict:{signatures(subject).strict}"
    if isinstance(subject, str):
        return f"str:{subject}"
    if isinstance(subject, (int, bool)):
        return f"int:{subject}"
    blob = pickle.dumps(subject, protocol=4)
    return f"blob:{hashlib.blake2b(blob, digest_size=16).hexdigest()}"


def params_key(params: Any) -> str:
    """Canonical key component for an op's keyword arguments."""
    if not params:
        return ""
    return repr(tuple(sorted(dict(params).items())))


class RecommendationCache:
    """LRU response cache keyed on signatures, model versions, and epochs."""

    def __init__(
        self,
        lifecycle: "ModelLifecycle | None" = None,
        max_entries: int = 4096,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.lifecycle = lifecycle
        self.max_entries = max_entries
        #: key -> (response, model name tag)
        self._entries: "OrderedDict[tuple, tuple[ServeResponse, str]]" = OrderedDict()
        #: Prefix of the lifecycle action log already folded in.
        self._seen_actions = len(lifecycle.actions) if lifecycle else 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- keys ------------------------------------------------------------------
    def key(
        self,
        tenant: str,
        endpoint: str,
        op: str,
        subject: Any,
        params: Any = None,
        model_version: int | None = None,
        epoch: int = 0,
    ) -> tuple:
        return (
            tenant,
            endpoint,
            op,
            subject_key(subject),
            params_key(params),
            model_version,
            epoch,
        )

    def model_version(self, model: str) -> int | None:
        """The production version of ``model``, or None when unmanaged."""
        if not model or self.lifecycle is None:
            return None
        record = self.lifecycle.registry.production(model)
        return record.version if record is not None else None

    # -- lookups ---------------------------------------------------------------
    def get(self, key: tuple) -> "ServeResponse | None":
        """The cached response for ``key`` (after lifecycle sync), or None."""
        self.sync_lifecycle()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, response: "ServeResponse", model: str = "") -> None:
        """Cache one successful response, tagged with its model name."""
        if not response.ok:
            return
        self._entries[key] = (response, model)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- invalidation ----------------------------------------------------------
    def sync_lifecycle(self) -> int:
        """Fold in lifecycle actions recorded since the last sync.

        Every ``promote``/``rollback`` evicts all entries tagged with
        the affected model name.  Returns entries evicted.
        """
        if self.lifecycle is None:
            return 0
        fresh = self.lifecycle.actions[self._seen_actions :]
        self._seen_actions = len(self.lifecycle.actions)
        evicted = 0
        for action in fresh:
            if action.action in _EVICTING_ACTIONS:
                evicted += self.evict_model(action.name)
        return evicted

    def evict_model(self, model: str) -> int:
        """Drop every entry tagged with ``model``; returns entries dropped."""
        stale = [
            key for key, (_, tag) in self._entries.items() if tag == model
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
