"""Micro-batching dispatcher: coalesce compatible requests into one call.

Requests land on per-``(endpoint, op)`` buckets.  A bucket flushes when
it reaches ``max_batch`` or when the oldest request has waited
``max_delay`` seconds, whichever comes first — the classic
latency/throughput knob.  A flush hands the whole bucket to the
driver's ``serve_many``, which a service may vectorize (Doppler turns N
recommend requests into one stacked scaler + k-means call) under the
contract that batched results are **bit-identical** to a serial loop.

Each submitter awaits a future resolved at flush time; requests whose
deadline lapsed while queued resolve to a 504 response without ever
touching the model.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.core.service import ServeRequest, ServeResponse


class MicroBatcher:
    """Bounded-delay request coalescing over driver ``serve_many`` calls."""

    def __init__(
        self,
        max_batch: int = 16,
        max_delay: float = 0.002,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._clock = clock
        #: (endpoint, op) -> [(driver, request, future), ...]
        self._pending: dict[tuple[str, str], list[tuple]] = {}
        self._timers: dict[tuple[str, str], asyncio.TimerHandle] = {}
        self.batches = 0
        self.coalesced = 0
        self.largest_batch = 0
        self.expired_in_queue = 0

    @property
    def depth(self) -> int:
        """Requests currently queued across all buckets."""
        return sum(len(bucket) for bucket in self._pending.values())

    async def submit(
        self, endpoint: str, driver: Any, request: ServeRequest
    ) -> ServeResponse:
        """Enqueue one request; resolves when its bucket flushes."""
        loop = asyncio.get_running_loop()
        key = (endpoint, request.op)
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append((driver, request, future))
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif key not in self._timers:
            self._timers[key] = loop.call_later(
                self.max_delay, self._flush, key
            )
        return await future

    def _flush(self, key: tuple[str, str]) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(key, None)
        if not bucket:
            return
        now = self._clock() if self._clock is not None else None
        live: list[tuple] = []
        for driver, request, future in bucket:
            if (
                now is not None
                and request.deadline is not None
                and now > request.deadline
            ):
                self.expired_in_queue += 1
                if not future.done():
                    future.set_result(
                        ServeResponse(
                            status=504,
                            error="deadline expired in queue",
                            op=request.op,
                        )
                    )
            else:
                live.append((driver, request, future))
        if not live:
            return
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(live))
        if len(live) > 1:
            self.coalesced += len(live)
        driver = live[0][0]
        requests = [request for _, request, _ in live]
        try:
            responses = driver.serve_many(requests)
        except Exception as exc:  # pragma: no cover — drivers return, not raise
            for _, _, future in live:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, _, future), response in zip(live, responses):
            if not future.done():
                future.set_result(response)

    def drain(self) -> None:
        """Flush every pending bucket immediately (shutdown path)."""
        for key in list(self._pending):
            self._flush(key)

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "coalesced": self.coalesced,
            "largest_batch": self.largest_batch,
            "expired_in_queue": self.expired_in_queue,
        }
