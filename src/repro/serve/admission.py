"""Admission control: rate limits, load shedding, deadline enforcement.

Three gates run in order on every request, each mapping to a distinct
HTTP-style rejection the client can act on:

* **Deadline** (504) — a request whose deadline already passed is dead
  on arrival; executing it would waste a model call nobody reads.
* **Token bucket** (429) — per-tenant rate limiting.  Buckets refill
  continuously at ``rate`` tokens per second of plane-clock time, so a
  tenant bursting above its share is throttled while an idle tenant
  accumulates (bounded) credit.
* **Queue depth** (503) — global load shedding.  When the dispatcher's
  backlog exceeds ``max_queue_depth`` the plane sheds instead of
  queueing: under sustained overload a bounded queue keeps admitted
  latency flat where an unbounded one melts down (the classic
  goodput-over-throughput trade).

All clocks are the caller's — nothing here reads wall time, so traffic
replays admit and reject identically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    status: int = 200
    reason: str = ""


class TokenBucket:
    """Continuous-refill token bucket (capacity-bounded burst credit)."""

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self._last = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means throttled."""
        self._refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            return True
        return False


class AdmissionController:
    """Per-tenant rate limits plus global queue-depth shedding."""

    def __init__(
        self,
        rate_per_tenant: float = 200.0,
        burst: float = 50.0,
        max_queue_depth: int = 64,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.rate_per_tenant = rate_per_tenant
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.throttled = 0
        self.shed = 0
        self.expired = 0

    def bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_tenant, self.burst, now=now)
            self._buckets[tenant] = bucket
        return bucket

    def admit(
        self,
        tenant: str,
        now: float,
        queue_depth: int,
        deadline: float | None = None,
    ) -> AdmissionDecision:
        """Run the three gates; the first to fail wins."""
        if deadline is not None and now > deadline:
            self.expired += 1
            return AdmissionDecision(
                admitted=False, status=504, reason="deadline expired"
            )
        if not self.bucket(tenant, now).try_take(now):
            self.throttled += 1
            return AdmissionDecision(
                admitted=False,
                status=429,
                reason=f"tenant {tenant!r} over rate limit",
            )
        if queue_depth >= self.max_queue_depth:
            self.shed += 1
            return AdmissionDecision(
                admitted=False,
                status=503,
                reason=f"queue depth {queue_depth} at limit",
            )
        self.admitted += 1
        return AdmissionDecision(admitted=True)

    @property
    def rejected(self) -> int:
        return self.throttled + self.shed + self.expired

    @property
    def shed_fraction(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0

    def summary(self) -> dict:
        return {
            "admitted": self.admitted,
            "throttled": self.throttled,
            "shed": self.shed,
            "expired": self.expired,
            "shed_fraction": self.shed_fraction,
            "tenants": len(self._buckets),
        }
