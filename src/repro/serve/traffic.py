"""Deterministic query traffic against a fleet's endpoints.

The generator inspects the fabric's drivers and builds a subject pool
per endpoint — Doppler queries draw from the historical customer
population, Seagull from the observed server fleet, Moneyball from the
tenant trace arrivals, steering rule-config lookups from the job
templates, Peregrine from the (subject-free) ``stats`` op.  Requests
are drawn from those pools with a seeded RNG, so the same seed always
produces the same request stream — which is what lets the benchmark
and the serve tests replay identical load.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.core.service import ServeRequest

if TYPE_CHECKING:
    from repro.fabric.plane import ControlPlane

#: Default endpoint mix (weights, not probabilities): recommendation
#: lookups dominate, matching a serving tier's read-heavy profile.
DEFAULT_MIX = {
    "doppler": 6.0,
    "seagull": 3.0,
    "moneyball": 2.0,
    "steering": 2.0,
    "peregrine": 1.0,
}

DEFAULT_TENANTS = ("contoso", "fabrikam", "adventure-works", "tailwind")


class TrafficGenerator:
    """Seeded, replayable request streams over a fabric's endpoints."""

    def __init__(
        self,
        fabric: "ControlPlane",
        seed: int = 0,
        tenants: tuple[str, ...] = DEFAULT_TENANTS,
        mix: dict[str, float] | None = None,
        max_subjects: int = 256,
    ) -> None:
        self.fabric = fabric
        self.seed = seed
        self.tenants = tuple(tenants) or ("anonymous",)
        self.max_subjects = max_subjects
        #: endpoint -> (op, subject pool, params)
        self.pools: dict[str, tuple[str, list[Any], dict]] = {}
        for binding in fabric.bindings:
            pool = self._pool_for(binding)
            if pool is not None:
                self.pools[binding.name] = pool
        wanted = mix if mix is not None else DEFAULT_MIX
        self.mix = {
            endpoint: weight
            for endpoint, weight in wanted.items()
            if endpoint in self.pools and weight > 0
        }
        if not self.mix:
            raise ValueError("no generatable endpoints on this fabric")
        self._rng = random.Random(seed)

    def _pool_for(self, binding) -> "tuple[str, list[Any], dict] | None":
        driver = binding.driver
        name = binding.name
        if name == "doppler":
            subjects = list(getattr(driver, "historical", []))
            return ("recommend", subjects, {}) if subjects else None
        if name == "seagull":
            servers = [t.tenant_id for t in getattr(driver, "traces", [])]
            day = int(getattr(driver, "first_day", 0))
            return ("recommend", servers, {"day": day}) if servers else None
        if name == "moneyball":
            arrivals = getattr(driver, "arrivals_by_day", {})
            traces = [t for day in sorted(arrivals) for t in arrivals[day]]
            return ("recommend", traces[: self.max_subjects], {}) if traces else None
        if name == "steering":
            from repro.engine import signatures

            jobs = getattr(driver, "jobs_by_day", {})
            templates: list[str] = []
            seen: set[str] = set()
            for day in sorted(jobs):
                for _, plan in jobs[day]:
                    template = signatures(plan).template
                    if template not in seen:
                        seen.add(template)
                        templates.append(template)
                if len(templates) >= self.max_subjects:
                    break
            return ("recommend", templates, {}) if templates else None
        if name == "peregrine":
            return ("stats", [None], {})
        return None

    def endpoints(self) -> list[str]:
        return sorted(self.mix)

    def request(
        self, deadline: float | None = None
    ) -> tuple[str, ServeRequest]:
        """Draw one (endpoint, request) pair from the seeded stream."""
        endpoints = sorted(self.mix)
        weights = [self.mix[e] for e in endpoints]
        endpoint = self._rng.choices(endpoints, weights=weights, k=1)[0]
        op, subjects, params = self.pools[endpoint]
        subject = self._rng.choice(subjects)
        tenant = self._rng.choice(self.tenants)
        return endpoint, ServeRequest(
            op=op,
            subject=subject,
            params=params,
            tenant=tenant,
            deadline=deadline,
        )

    def stream(
        self, n: int, deadline: float | None = None
    ) -> list[tuple[str, ServeRequest]]:
        """``n`` requests; same seed, same stream, every time."""
        return [self.request(deadline=deadline) for _ in range(n)]
