"""repro: a reproduction of "Towards Building Autonomous Data Services on
Azure" (SIGMOD-Companion 2023).

The package mirrors the paper's structure:

- substrates: :mod:`repro.ml` (from-scratch ML), :mod:`repro.telemetry`,
  :mod:`repro.workloads` (synthetic trace generators),
  :mod:`repro.infra` (cluster simulation), :mod:`repro.engine`
  (SCOPE/Spark-flavoured query engine);
- the contribution: :mod:`repro.core`, one subpackage per autonomous
  service across the cloud-infrastructure, query-engine, and service
  layers;
- the shared runtime: :mod:`repro.obs` (tracing/metrics),
  :mod:`repro.parallel` (deterministic process fan-out), and
  :mod:`repro.fabric` — the control plane hosting every service as a
  checkpointable, fault-tolerant feedback pipeline.

Quickstart::

    from repro.workloads import ScopeWorkloadGenerator
    from repro.core.peregrine import WorkloadRepository, analyze

    workload = ScopeWorkloadGenerator(rng=0).generate(n_days=7)
    stats = analyze(WorkloadRepository().ingest(workload))
    print(stats.summary_rows())
"""

__version__ = "1.0.0"

__all__ = [
    "ml",
    "telemetry",
    "workloads",
    "infra",
    "engine",
    "core",
    "obs",
    "parallel",
    "fabric",
]
