"""Serverless database pause/resume billing simulator (Moneyball's world).

Moneyball [41] pauses and resumes Azure SQL serverless databases
proactively from ML forecasts.  The tension (Figure 2's Pareto curve):
pausing aggressively saves billed compute hours but risks *cold starts* —
a customer request arriving while paused waits out the resume.  The
simulator replays a tenant's hourly activity trace against a
:class:`PausePolicy` and reports both sides of the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.workloads.usage import TenantTrace


class PausePolicy(Protocol):
    """Hourly pause/resume decisions from history only (no peeking)."""

    def should_pause(self, hour: int, history: np.ndarray) -> bool:
        """Called while running and idle: pause now?"""
        ...

    def should_resume(self, hour: int, history: np.ndarray) -> bool:
        """Called while paused: resume proactively before any request?"""
        ...


@dataclass
class BillingReport:
    """Cost/QoS outcome of one tenant under one policy."""

    billed_hours: float
    cold_starts: int
    active_hours: int
    cold_start_seconds: float

    @property
    def cold_start_rate(self) -> float:
        """Fraction of active hours that began with a resume stall."""
        if self.active_hours == 0:
            return 0.0
        return self.cold_starts / self.active_hours

    @property
    def total_delay_seconds(self) -> float:
        return self.cold_starts * self.cold_start_seconds

    def cost(self, dollars_per_hour: float = 1.0) -> float:
        return self.billed_hours * dollars_per_hour


class ServerlessSimulator:
    """Hour-stepped replay of a tenant trace under a pause policy."""

    def __init__(
        self,
        activity_threshold: float = 0.05,
        cold_start_seconds: float = 60.0,
    ) -> None:
        if cold_start_seconds < 0:
            raise ValueError("cold_start_seconds must be non-negative")
        self.activity_threshold = activity_threshold
        self.cold_start_seconds = cold_start_seconds

    def run(self, trace: TenantTrace, policy: PausePolicy) -> BillingReport:
        values = trace.values
        active = values >= self.activity_threshold
        running = True
        billed = 0.0
        cold_starts = 0
        for hour in range(values.size):
            history = values[:hour]
            if running:
                if active[hour]:
                    billed += 1.0
                else:
                    if policy.should_pause(hour, history):
                        running = False
                    else:
                        billed += 1.0  # idle but kept warm: still billed
            else:
                # Proactive resume happens at the top of the hour, before
                # any request arrives; the policy still sees history only.
                if policy.should_resume(hour, history):
                    running = True
                    billed += 1.0  # resumed early (warm whether used or not)
                elif active[hour]:
                    # Demand arrived while paused: forced resume, stall.
                    cold_starts += 1
                    running = True
                    billed += 1.0
        return BillingReport(
            billed_hours=billed,
            cold_starts=cold_starts,
            active_hours=int(active.sum()),
            cold_start_seconds=self.cold_start_seconds,
        )

    def run_population(
        self, traces: list[TenantTrace], policy_for: "PolicyFactory"
    ) -> list[BillingReport]:
        """Run every tenant with a per-tenant policy."""
        return [self.run(t, policy_for(t)) for t in traces]


class PolicyFactory(Protocol):
    def __call__(self, trace: TenantTrace) -> PausePolicy:
        ...


@dataclass
class AlwaysOnPolicy:
    """Never pause: zero cold starts, maximum cost."""

    def should_pause(self, hour: int, history: np.ndarray) -> bool:
        return False

    def should_resume(self, hour: int, history: np.ndarray) -> bool:
        return True


@dataclass
class ReactiveIdlePolicy:
    """Pause after ``idle_hours`` consecutive idle hours; resume on demand.

    The production default Moneyball improves on: the only knob is the
    idle timeout, and every resume is a cold start.
    """

    idle_hours: int = 1
    activity_threshold: float = 0.05

    def should_pause(self, hour: int, history: np.ndarray) -> bool:
        if history.size < self.idle_hours:
            return False
        recent = history[-self.idle_hours :]
        return bool(np.all(recent < self.activity_threshold))

    def should_resume(self, hour: int, history: np.ndarray) -> bool:
        return False
