"""Cluster pool with cold/warm starts (Synapse Spark provisioning).

Section 4.1: "For Azure Synapse Spark, we developed a simulator to mimic
the cluster initialization process and derived the optimal policy for
sending requests, reducing its tail latency" and "proactive cluster
provisioning based on expected user cluster creation demand to reduce
wait time for cluster initialization ... optimizing both COGS and
performance".

The simulator serves a :class:`~repro.workloads.demand.DemandTrace`: a
request grabs a warm cluster instantly (warm latency) if one is
available, otherwise waits out a cold start.  A :class:`PoolPolicy`
decides the warm-pool target at every hour boundary; warm clusters cost
machine-hours while they sit idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.workloads.demand import DemandTrace


class PoolPolicy(Protocol):
    """Decides how many warm clusters to keep ready for the coming hour."""

    def target(self, hour: int, recent_counts: np.ndarray) -> int:
        """Warm-pool size wanted at ``hour``; sees past hourly counts only."""
        ...


@dataclass
class PoolReport:
    """Latency and cost outcome of serving a demand trace."""

    latencies: np.ndarray        # per-request wait, seconds
    warm_hits: int
    cold_starts: int
    warm_idle_hours: float       # COGS: hours warm clusters sat unused

    @property
    def n_requests(self) -> int:
        return int(self.latencies.size)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies.size else 0.0

    def percentile(self, p: float) -> float:
        if not self.latencies.size:
            return 0.0
        return float(np.percentile(self.latencies, p))

    @property
    def hit_rate(self) -> float:
        total = self.warm_hits + self.cold_starts
        return self.warm_hits / total if total else 0.0


class ClusterPoolSimulator:
    """Hour-stepped pool simulation over a demand trace."""

    def __init__(
        self,
        cold_start_seconds: float = 180.0,
        warm_latency_seconds: float = 5.0,
        warmup_lead_hours: float = 0.0,
    ) -> None:
        if cold_start_seconds <= warm_latency_seconds:
            raise ValueError("cold start must be slower than a warm hit")
        self.cold_start_seconds = cold_start_seconds
        self.warm_latency_seconds = warm_latency_seconds
        self.warmup_lead_hours = warmup_lead_hours

    def run(self, trace: DemandTrace, policy: PoolPolicy) -> PoolReport:
        """Serve every arrival; the policy retargets the pool hourly.

        Warm clusters spun up at hour h become usable immediately (the
        policy is assumed to have issued the request one cold-start ahead
        — that lead time is the whole point of *proactive* provisioning).
        Unused warm clusters are retired at the end of the hour and their
        idle time is billed.
        """
        n_hours = trace.hourly_rate.size
        counts = trace.counts_per_hour()
        latencies: list[float] = []
        warm_hits = 0
        cold_starts = 0
        idle_hours = 0.0
        arrivals_by_hour: dict[int, int] = {}
        for t in trace.arrival_hours:
            hour = int(t)
            arrivals_by_hour[hour] = arrivals_by_hour.get(hour, 0) + 1
        for hour in range(n_hours):
            history = counts[:hour]
            warm_available = max(0, int(policy.target(hour, history)))
            demand = arrivals_by_hour.get(hour, 0)
            hits = min(demand, warm_available)
            misses = demand - hits
            warm_hits += hits
            cold_starts += misses
            latencies.extend([self.warm_latency_seconds] * hits)
            latencies.extend([self.cold_start_seconds] * misses)
            # Each unused warm cluster idles for roughly the whole hour;
            # used ones idle for half on average (uniform arrivals).
            idle_hours += (warm_available - hits) * 1.0 + hits * 0.5
        return PoolReport(
            latencies=np.array(latencies),
            warm_hits=warm_hits,
            cold_starts=cold_starts,
            warm_idle_hours=idle_hours,
        )


@dataclass
class StaticPoolPolicy:
    """Always keep the same number of warm clusters (the manual baseline)."""

    size: int

    def target(self, hour: int, recent_counts: np.ndarray) -> int:
        return self.size


@dataclass
class NoPoolPolicy:
    """Pure on-demand: every request pays the cold start."""

    def target(self, hour: int, recent_counts: np.ndarray) -> int:
        return 0
