"""A minimal discrete-event simulation core (priority-queue driven)."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback; ties break by insertion order."""

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Run callbacks in time order; actions may schedule further events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        event = Event(time, next(self._sequence), action, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, action, label)

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.action()
            self.processed += 1
        if until is not None:
            self.now = max(self.now, until)

    def __len__(self) -> int:
        return len(self._heap)
