"""A minimal discrete-event simulation core (priority-queue driven)."""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.obs.events import ObsEvent
    from repro.obs.runtime import ObservabilityRuntime


@dataclass(order=True)
class Event:
    """A scheduled callback; ties break by insertion order."""

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")

    def to_events(self) -> "list[ObsEvent]":
        """This DES event as the shared observability event shape.

        The timestamp is *simulated* time — replaying a simulation into
        an :class:`~repro.obs.events.EventLog` reconstructs its timeline.
        """
        from repro.obs.events import ObsEvent

        return [
            ObsEvent(
                timestamp=self.time,
                layer="infra",
                source="des",
                kind=self.label or "event",
            )
        ]


class EventQueue:
    """Run callbacks in time order; actions may schedule further events.

    Pass an :class:`~repro.obs.runtime.ObservabilityRuntime` as ``obs``
    to get a span around each :meth:`run` plus one layer-tagged event
    per processed DES event (stamped with simulated time).
    """

    def __init__(self, obs: "ObservabilityRuntime | None" = None) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.processed = 0
        self._obs = obs

    def bind(self, obs: "ObservabilityRuntime | None") -> "EventQueue":
        self._obs = obs
        return self

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        # NaN comparisons are all False, so a NaN time would sail past the
        # past-check and silently corrupt heap ordering — reject it here.
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        event = Event(time, next(self._sequence), action, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        if not math.isfinite(delay):
            raise ValueError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, action, label)

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        if self._obs is None:
            self._run(until)
            return
        with self._obs.span("infra.des.run", layer="infra") as span:
            before = self.processed
            self._run(until)
            span.attributes["processed"] = self.processed - before
            span.attributes["sim_now"] = round(self.now, 6)

    def _run(self, until: float | None) -> None:
        obs = self._obs
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.action()
            self.processed += 1
            if obs is not None:
                obs.replay(event)
        if until is not None:
            self.now = max(self.now, until)

    def clear(self) -> int:
        """Drop every pending event; returns how many were dropped.

        The rebuild hook for schedulers that treat the heap as a cache
        over durable schedule state (see
        :meth:`repro.fabric.plane.ControlPlane.rebuild_schedule`): clear,
        then re-arm from the records.  ``now`` and ``processed`` are
        untouched so re-armed events keep a consistent clock.
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._heap)
