"""Cloud infrastructure substrate: discrete-event cluster simulation.

The infrastructure layer (Section 4.1) "manages all hardware and software
resources for the life cycle of data services".  This subpackage provides
the simulated environments the infrastructure-layer autonomous services
are trained and evaluated in:

- :mod:`repro.infra.des` — a minimal discrete-event simulation core,
- :mod:`repro.infra.scheduler` — a container scheduler over a
  heterogeneous machine fleet with per-SKU container caps (KEA's knobs),
- :mod:`repro.infra.pool` — a cluster pool with cold/warm starts serving
  a cluster-creation demand stream (Synapse Spark provisioning),
- :mod:`repro.infra.serverless` — a pause/resume billing simulator for
  serverless databases (Moneyball's environment).
"""

from repro.infra.autoscale import (
    AutoscaleReport,
    AutoscaleSimulator,
    PredictiveScalingPolicy,
    ReactiveScalingPolicy,
)
from repro.infra.des import Event, EventQueue
from repro.infra.pool import (
    ClusterPoolSimulator,
    NoPoolPolicy,
    PoolPolicy,
    PoolReport,
    StaticPoolPolicy,
)
from repro.infra.scheduler import (
    ClusterLoadReport,
    ContainerScheduler,
    SkuFleetConfig,
)
from repro.infra.serverless import (
    AlwaysOnPolicy,
    BillingReport,
    PausePolicy,
    ReactiveIdlePolicy,
    ServerlessSimulator,
)

__all__ = [
    "Event",
    "EventQueue",
    "AutoscaleSimulator",
    "AutoscaleReport",
    "ReactiveScalingPolicy",
    "PredictiveScalingPolicy",
    "ContainerScheduler",
    "SkuFleetConfig",
    "ClusterLoadReport",
    "ClusterPoolSimulator",
    "PoolPolicy",
    "PoolReport",
    "StaticPoolPolicy",
    "NoPoolPolicy",
    "ServerlessSimulator",
    "PausePolicy",
    "BillingReport",
    "AlwaysOnPolicy",
    "ReactiveIdlePolicy",
]
