"""Service autoscaling: reactive thresholds vs demand forecasts (§4.1).

"Significant technical and research efforts have been made to enhance
[the cloud infrastructure], including resource provisioning, job
scheduling, container imaging, and autoscaling.  However, these
components heavily depend on the manual adjustments by experts."

The simulator serves an hourly request stream with a replica fleet;
each replica handles ``capacity`` requests/hour.  Excess requests are
SLO violations (dropped/queued past deadline).  Scaling decisions take
one hour to materialize (VM boot), which is what makes *reactive*
scaling chase demand and *predictive* scaling lead it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

HOURS_PER_WEEK = 168
HOURS_PER_DAY = 24


class ScalingPolicy(Protocol):
    """Decide the replica target from history only."""

    def target(
        self, hour: int, demand_history: np.ndarray, current_replicas: int
    ) -> int:
        ...


@dataclass
class ReactiveScalingPolicy:
    """Classic threshold rules on the last observed utilization.

    Scale out when utilization exceeded ``high``; scale in below ``low``.
    The expert-tuned defaults every service starts with.
    """

    capacity: float
    high: float = 0.8
    low: float = 0.3
    step: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.low < self.high <= 1.0:
            raise ValueError("need 0 < low < high <= 1")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def target(
        self, hour: int, demand_history: np.ndarray, current_replicas: int
    ) -> int:
        if demand_history.size == 0:
            return current_replicas
        utilization = demand_history[-1] / max(
            current_replicas * self.capacity, 1e-9
        )
        if utilization > self.high:
            return current_replicas + self.step
        if utilization < self.low:
            return max(1, current_replicas - self.step)
        return current_replicas


@dataclass
class PredictiveScalingPolicy:
    """Seasonal forecast of next hour's demand plus headroom."""

    capacity: float
    headroom: float = 1.4

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")

    def target(
        self, hour: int, demand_history: np.ndarray, current_replicas: int
    ) -> int:
        forecast = None
        for period in (HOURS_PER_WEEK, HOURS_PER_DAY):
            if demand_history.size >= period:
                forecast = demand_history[-period]
                break
        if forecast is None:
            forecast = (
                float(demand_history[-1]) if demand_history.size else 0.0
            )
        return max(1, int(np.ceil(self.headroom * forecast / self.capacity)))


@dataclass
class AutoscaleReport:
    """Outcome of one policy over one demand trace."""

    replicas: np.ndarray        # replicas serving each hour
    demand: np.ndarray
    capacity: float

    @property
    def violation_fraction(self) -> float:
        """Share of requests arriving beyond the hour's serving capacity."""
        served_capacity = self.replicas * self.capacity
        dropped = np.maximum(0.0, self.demand - served_capacity)
        total = self.demand.sum()
        return float(dropped.sum() / total) if total > 0 else 0.0

    @property
    def replica_hours(self) -> float:
        return float(self.replicas.sum())

    @property
    def mean_utilization(self) -> float:
        cap = self.replicas * self.capacity
        return float(np.mean(np.minimum(1.0, self.demand / np.maximum(cap, 1e-9))))


class AutoscaleSimulator:
    """Hour-stepped fleet simulation with one-hour scaling latency."""

    def __init__(self, capacity: float = 100.0, initial_replicas: int = 2) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if initial_replicas < 1:
            raise ValueError("initial_replicas must be >= 1")
        self.capacity = capacity
        self.initial_replicas = initial_replicas

    def run(self, demand: np.ndarray, policy: ScalingPolicy) -> AutoscaleReport:
        demand = np.asarray(demand, dtype=float)
        if demand.size == 0:
            raise ValueError("demand trace is empty")
        serving = np.zeros(demand.size)
        replicas = self.initial_replicas
        pending = replicas  # target decided last hour, live this hour
        for hour in range(demand.size):
            replicas = pending  # last hour's decision materializes
            serving[hour] = replicas
            decision = policy.target(hour, demand[:hour + 1], replicas)
            pending = max(1, int(decision))
        return AutoscaleReport(
            replicas=serving, demand=demand, capacity=self.capacity
        )
