"""Container scheduler over a heterogeneous fleet (KEA's environment).

KEA [53] tunes "Cosmos scheduler configurations, such as the maximum
running containers for each SKU" to balance workloads.  This scheduler
places a container demand onto a fleet whose machines differ in hardware
generation; the per-SKU container caps are the knobs, and the resulting
per-machine CPU utilization (via the fleet's linear ground truth) is the
outcome the balancing optimizer cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.workloads.machines import MachineFleetSimulator, MachineSku

if TYPE_CHECKING:
    from repro.obs.runtime import ObservabilityRuntime


@dataclass(frozen=True)
class SkuFleetConfig:
    """How many machines of a SKU exist and its container cap knob."""

    sku: MachineSku
    n_machines: int
    max_containers: int

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.max_containers < 0:
            raise ValueError("max_containers must be non-negative")


@dataclass
class ClusterLoadReport:
    """Outcome of placing one demand snapshot."""

    cpu_by_machine: dict[str, float]
    containers_by_machine: dict[str, int]
    placed: int
    queued: int

    @property
    def mean_cpu(self) -> float:
        return float(np.mean(list(self.cpu_by_machine.values())))

    @property
    def cpu_imbalance(self) -> float:
        """Standard deviation of CPU utilization across machines."""
        return float(np.std(list(self.cpu_by_machine.values())))

    def overload_fraction(self, threshold: float = 90.0) -> float:
        cpus = np.array(list(self.cpu_by_machine.values()))
        return float(np.mean(cpus > threshold))


class ContainerScheduler:
    """Water-filling placement respecting per-SKU container caps."""

    def __init__(
        self,
        fleet: list[SkuFleetConfig],
        noise: float = 1.5,
        rng: np.random.Generator | int | None = None,
        obs: "ObservabilityRuntime | None" = None,
    ) -> None:
        if not fleet:
            raise ValueError("fleet must not be empty")
        self.fleet = fleet
        self.noise = noise
        self._obs = obs
        self._rng = np.random.default_rng(rng)
        self._machines: list[tuple[str, MachineSku, int]] = []
        for config in fleet:
            for i in range(config.n_machines):
                self._machines.append(
                    (
                        f"{config.sku.name}-m{i:03d}",
                        config.sku,
                        config.max_containers,
                    )
                )

    @property
    def capacity(self) -> int:
        return sum(cap for _, _, cap in self._machines)

    def bind(self, obs: "ObservabilityRuntime | None") -> "ContainerScheduler":
        self._obs = obs
        return self

    def place(self, demand: int) -> ClusterLoadReport:
        """Distribute ``demand`` containers, least-loaded machine first."""
        if demand < 0:
            raise ValueError("demand must be non-negative")
        if self._obs is None:
            return self._place(demand)
        with self._obs.span(
            "infra.scheduler.place", layer="infra", demand=demand
        ) as span:
            report = self._place(demand)
            span.attributes["placed"] = report.placed
            span.attributes["queued"] = report.queued
            self._obs.emit(
                "infra", "scheduler", "place", value=report.placed,
                queued=report.queued,
            )
            return report

    def _place(self, demand: int) -> ClusterLoadReport:
        load = {machine_id: 0 for machine_id, _, _ in self._machines}
        caps = {machine_id: cap for machine_id, _, cap in self._machines}
        placed = 0
        # Water-filling: repeatedly give one container to the machine with
        # the most remaining headroom (ties broken by id for determinism).
        remaining = demand
        order = sorted(load)
        while remaining > 0:
            candidates = [m for m in order if load[m] < caps[m]]
            if not candidates:
                break
            target = min(candidates, key=lambda m: (load[m] / max(caps[m], 1), m))
            load[target] += 1
            placed += 1
            remaining -= 1
        cpu = {}
        for machine_id, sku, _ in self._machines:
            ideal = MachineFleetSimulator.cpu_for_containers(
                sku, load[machine_id]
            )
            cpu[machine_id] = float(
                np.clip(ideal + self._rng.normal(scale=self.noise), 0.0, 100.0)
            )
        return ClusterLoadReport(
            cpu_by_machine=cpu,
            containers_by_machine=load,
            placed=placed,
            queued=remaining,
        )

    def sweep(self, demands: list[int]) -> list[ClusterLoadReport]:
        """Place a sequence of demand snapshots (e.g. hourly)."""
        return [self.place(d) for d in demands]
