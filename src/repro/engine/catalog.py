"""Catalog: synthetic base tables with per-column statistics.

The engine never materializes rows; "data" is statistics.  Each column
carries a distinct count, a value range, and a skew coefficient that the
*true* cardinality model uses but the default estimator does not — this
asymmetry is the controllable estimation error that gives the learned
cardinality/cost services something real to improve (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of a synthetic table."""

    name: str
    distinct: int
    low: float = 0.0
    high: float = 1000.0
    skew: float = 0.0  # 0 = uniform; higher = more mass near ``low``

    def __post_init__(self) -> None:
        if self.distinct < 1:
            raise ValueError("distinct must be >= 1")
        if self.high <= self.low:
            raise ValueError("high must exceed low")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")


@dataclass(frozen=True)
class TableDef:
    """A synthetic base table: a row count plus column statistics."""

    name: str
    n_rows: int
    columns: tuple[ColumnStats, ...]
    row_bytes: int = 100

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        if not self.columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in {self.name}")

    def column(self, name: str) -> ColumnStats:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)


class Catalog:
    """Name -> table registry shared by optimizer, executor, and generators."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}

    def add(self, table: TableDef) -> None:
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def get(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def clone(self) -> "Catalog":
        """Shallow copy: same (immutable) table defs, independent registry.

        Used by services that register transient tables — e.g. CloudViews
        materializing one day's views — without polluting the shared
        catalog.
        """
        out = Catalog()
        out._tables = dict(self._tables)
        return out

    def owner_of_column(self, column: str, among: set[str]) -> str | None:
        """Which of the tables in ``among`` owns ``column`` (None if absent).

        Ties (several tables carrying the column) break alphabetically.
        Iterating the raw set here would let the interpreter's hash salt
        pick the owner, making estimates — and everything downstream of
        them — differ between runs and between pool workers.
        """
        for name in sorted(among):
            if name in self._tables and self._tables[name].has_column(column):
                return name
        return None

    @classmethod
    def synthetic(
        cls,
        n_tables: int = 8,
        rng: np.random.Generator | int | None = None,
    ) -> "Catalog":
        """A random star-ish catalog: big fact tables, small dimensions.

        Every table gets a shared join key column (``key``) plus a few
        filterable attribute columns with varied skew.
        """
        generator = np.random.default_rng(rng)
        catalog = cls()
        for i in range(n_tables):
            is_fact = i < max(1, n_tables // 4)
            n_rows = int(
                generator.integers(1_000_000, 50_000_000)
                if is_fact
                else generator.integers(1_000, 500_000)
            )
            # Near-unique join keys give foreign-key join semantics: the
            # output of a key join stays on the order of its inputs
            # instead of exploding quadratically.
            columns = [ColumnStats("key", distinct=max(10, n_rows // 2))]
            for j in range(int(generator.integers(2, 5))):
                columns.append(
                    ColumnStats(
                        name=f"a{j}",
                        distinct=int(generator.integers(2, 10_000)),
                        low=0.0,
                        high=float(generator.integers(100, 10_000)),
                        skew=float(generator.uniform(0.0, 2.0)),
                    )
                )
            catalog.add(
                TableDef(
                    name=f"t{i}",
                    n_rows=n_rows,
                    columns=tuple(columns),
                    row_bytes=int(generator.integers(50, 500)),
                )
            )
        return catalog
